#!/usr/bin/env python3
"""Regenerates the miniature real-format fixtures in tests/fixtures/.

The fixtures are ~1k-vertex cuts shaped like the paper's three real
datasets (docs/FORMATS.md specifies the formats). Attribute values are
correlated across edges — communities share regions/venues/traffic
levels — so mining them yields a compression ratio < 1, which the
real-data CI leg asserts. Deterministic: fixed seed, stable iteration
order; re-running this script must be a no-op unless it was edited.

Usage: python3 tools/gen_fixtures.py
"""

import random
import os

OUT = os.path.join(os.path.dirname(__file__), "..", "tests", "fixtures")

REGIONS = [
    "bratislavsky kraj, bratislava",
    "zilinsky kraj, zilina",
    "kosicky kraj, kosice",
    "presovsky kraj, presov",
    "nitriansky kraj, nitra",
    "trnavsky kraj, trnava",
    "banskobystricky kraj, banska bystrica",
    "trenciansky kraj, trencin",
]

VENUE_COMMUNITIES = [
    ["ICDE", "VLDB", "SIGMOD", "EDBT", "PODS"],
    ["NeurIPS", "ICML", "KDD", "ICDM", "ECML"],
    ["SIGCOMM", "INFOCOM", "NSDI", "IMC"],
    ["STOC", "FOCS", "SODA", "ICALP"],
]

SURNAMES = [
    "Liu", "Zhou", "Fournier-Viger", "Yang", "Pan", "Nouioua", "Smith",
    "Garcia", "Kim", "Novak", "Muller", "Rossi", "Tanaka", "Kowalski",
]

STATES = [
    "AL AK AZ AR CA CO CT DE FL GA HI ID IL IN IA KS KY LA ME MD MA MI MN"
    " MS MO MT NE NV NH NJ NM NY NC ND OH OK OR PA RI SC SD TN TX UT VT VA"
    " WA WV WI WY"
][0].split()

AIRLINES = ["AA", "DL", "UA", "WN", "B6"]


def pokec(rng):
    n = 1000
    # Region communities: region index = community. Some regions skew
    # young, some old, so region/age/gender co-occur across friendships.
    lines = []
    region_of = {}
    for uid in range(1, n + 1):
        region_i = (uid * 7) % len(REGIONS)
        region_of[uid] = region_i
        young_region = region_i < 4
        if rng.random() < 0.05:
            region = "null"
        else:
            region = REGIONS[region_i]
        if rng.random() < 0.05:
            gender = "null"
        else:
            # Slight gender skew per community, like the planted rules.
            gender = "1" if rng.random() < (0.6 if young_region else 0.4) else "0"
        if rng.random() < 0.08:
            age = "0"  # unset marker used by the real dump
        elif young_region:
            age = str(rng.randint(16, 29))
        else:
            age = str(rng.randint(30, 59))
        public = "1" if rng.random() < 0.7 else "0"
        completion = str(rng.randint(0, 100))
        lines.append(f"{uid}\t{public}\t{completion}\t{gender}\t{region}\t{age}")
    with open(os.path.join(OUT, "pokec_small.profiles.txt"), "w") as f:
        f.write("\n".join(lines) + "\n")

    edges = set()
    for uid in range(1, n + 1):  # ring keeps the graph connected
        edges.add((uid, uid % n + 1))
    while len(edges) < 3500:
        u = rng.randint(1, n)
        # 85% of friendships stay in the region community.
        if rng.random() < 0.85:
            v = rng.randint(1, n)
            for _ in range(10):
                if region_of[v] == region_of[u] and v != u:
                    break
                v = rng.randint(1, n)
        else:
            v = rng.randint(1, n)
        if u != v:
            edges.add((u, v))
    with open(os.path.join(OUT, "pokec_small.txt"), "w") as f:
        f.write("# SNAP-style Pokec cut: user_id<TAB>friend_id\n")
        for u, v in sorted(edges):
            f.write(f"{u}\t{v}\n")
    return n, len(edges)


def dblp(rng):
    n = 1000
    community = {a: (a * 3) % len(VENUE_COMMUNITIES) for a in range(1, n + 1)}
    coauthors = {a: set() for a in range(1, n + 1)}
    for a in range(1, n):  # chain keeps the graph connected
        coauthors[a].add(a + 1)
    pairs = set((a, a + 1) for a in range(1, n))
    while len(pairs) < 3000:
        a = rng.randint(1, n)
        b = rng.randint(1, n)
        if rng.random() < 0.85:
            for _ in range(10):
                if community[b] == community[a] and b != a:
                    break
                b = rng.randint(1, n)
        if a != b and (a, b) not in pairs and (b, a) not in pairs:
            pairs.add((a, b))
            coauthors[a].add(b)
    rows = ["id,name,venues,coauthors"]
    for a in range(1, n + 1):
        venues = set()
        pool = VENUE_COMMUNITIES[community[a]]
        for _ in range(rng.randint(1, 3)):
            venues.add(rng.choice(pool))
        if rng.random() < 0.1:  # cross-area publication noise
            venues.add(rng.choice(rng.choice(VENUE_COMMUNITIES)))
        surname = SURNAMES[a % len(SURNAMES)]
        name = f'"{surname}, A{a:04d}."'  # quoted: embedded comma
        rows.append(
            f"{a},{name},{';'.join(sorted(venues))},"
            f"{';'.join(str(c) for c in sorted(coauthors[a]))}"
        )
    with open(os.path.join(OUT, "dblp_small.csv"), "w") as f:
        f.write("\n".join(rows) + "\n")
    return n, len(pairs)


def usflight(rng):
    n = 800
    n_hubs = 40
    codes = []
    seen = set()
    while len(codes) < n:
        c = "".join(rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ") for _ in range(3))
        if c not in seen:
            seen.add(c)
            codes.append(c)
    hubs = codes[:n_hubs]
    state_of = {c: STATES[i % len(STATES)] for i, c in enumerate(codes)}
    rows = ["code,state,nb_depart,nb_arrive,delay"]
    for i, c in enumerate(codes):
        if i < n_hubs:  # hubs: heavy traffic, congested
            nb_depart, nb_arrive = "+", "+"
            delay = "+" if rng.random() < 0.8 else "="
        else:
            nb_depart = "-" if rng.random() < 0.8 else "="
            nb_arrive = "-" if rng.random() < 0.8 else "="
            delay = "-" if rng.random() < 0.7 else "="
        rows.append(f"{c},{state_of[c]},{nb_depart},{nb_arrive},{delay}")
    with open(os.path.join(OUT, "usflight_small.airports.csv"), "w") as f:
        f.write("\n".join(rows) + "\n")

    routes = set()
    for i in range(n_hubs):  # hub backbone ring + cross links
        routes.add((hubs[i], hubs[(i + 1) % n_hubs]))
        routes.add((hubs[i], hubs[(i + 7) % n_hubs]))
    for c in codes[n_hubs:]:  # every spoke reaches 2-4 hubs
        for _ in range(rng.randint(2, 4)):
            routes.add((c, rng.choice(hubs)))
    while len(routes) < 2500:  # a few point-to-point routes
        a, b = rng.choice(codes), rng.choice(codes)
        if a != b:
            routes.add((a, b))
    with open(os.path.join(OUT, "usflight_small.csv"), "w") as f:
        f.write("src,dst,airline\n")
        for a, b in sorted(routes):
            f.write(f"{a},{b},{rng.choice(AIRLINES)}\n")
    return n, len(routes)


def main():
    os.makedirs(OUT, exist_ok=True)
    rng = random.Random(2022)
    for name, gen in [("pokec", pokec), ("dblp", dblp), ("usflight", usflight)]:
        n, m = gen(rng)
        print(f"{name}: {n} vertices, {m} records")


if __name__ == "__main__":
    main()
