//! Equivalence tests for the unified mining engine: CSPM-Basic and
//! CSPM-Partial are two scheduling policies of the same merge loop, and
//! the flat posting-list store must behave exactly like the reference
//! sorted-slice algebra.

use cspm::core::engine::run_on_db;
use cspm::core::positions::{difference_inplace, intersect, intersect_count, union};
use cspm::core::{
    cspm_basic, cspm_partial, mine, verify_lossless, CoresetMode, CspmConfig, GainPolicy,
    InvertedDb, PostingPolicy, PostingStore, SchedulePolicy, Variant,
};
use cspm::datasets::{planted_astars, PlantedConfig};
use cspm::graph::fixtures::paper_example;
use proptest::prelude::*;

/// Data-only pricing: the setting under which both policies provably
/// take the same greedy path (under `Total`, Algorithm 3's candidate
/// restriction may legitimately stop earlier; see `engine` docs).
fn equiv_config() -> CspmConfig {
    CspmConfig {
        gain_policy: GainPolicy::DataOnly,
        ..Default::default()
    }
}

#[test]
fn variants_dispatch_through_the_shared_engine() {
    assert_eq!(Variant::Basic.policy(), SchedulePolicy::FullRegeneration);
    assert_eq!(Variant::Partial.policy(), SchedulePolicy::Incremental);
}

#[test]
fn engine_policies_reach_identical_dl_on_paper_example() {
    let (g, _) = paper_example();
    let basic = cspm_basic(&g, equiv_config());
    let partial = cspm_partial(&g, equiv_config());
    assert!(
        (basic.final_dl - partial.final_dl).abs() < 1e-9,
        "basic {} vs partial {}",
        basic.final_dl,
        partial.final_dl
    );
    assert_eq!(basic.merges, partial.merges);
    // Both converged databases still decode the graph losslessly.
    assert!(verify_lossless(&g, &basic.db).is_empty());
    assert!(verify_lossless(&g, &partial.db).is_empty());
}

#[test]
fn engine_policies_reach_identical_dl_on_planted_patterns() {
    // Seeded, noise-free planted instance on which the two policies'
    // greedy paths coincide exactly (verified over a seed sweep; under
    // attribute noise the paths may legitimately diverge by a fraction
    // of a percent — see `both_variants_compress` in tests/properties.rs
    // and the §V discussion in the engine docs).
    let (g, _) = planted_astars(
        &[
            (&["doctor"], &["flu", "fever"]),
            (&["airport"], &["delay", "storm"]),
        ],
        PlantedConfig {
            occurrences_per_pattern: 20,
            background_vertices: 30,
            background_attrs: 6,
            noise_labels_per_vertex: 0.0,
            seed: 3,
        },
    );
    let basic = mine(&g, Variant::Basic, equiv_config());
    let partial = mine(&g, Variant::Partial, equiv_config());
    assert!(
        (basic.final_dl - partial.final_dl).abs() < 1e-6,
        "basic {} vs partial {}",
        basic.final_dl,
        partial.final_dl
    );
    assert_eq!(basic.merges, partial.merges);
    assert!(
        basic.merges >= 30,
        "planted patterns should trigger many merges"
    );
    assert!(verify_lossless(&g, &basic.db).is_empty());
    assert!(verify_lossless(&g, &partial.db).is_empty());
}

/// Parallel incremental scoring must be exact, not approximately
/// deterministic: at threads ∈ {1, 2, 8} both policies produce
/// bit-identical final description lengths, merge counts, and
/// evaluation totals on a planted instance large enough to fan out.
#[test]
fn mining_is_bit_identical_at_threads_1_2_8() {
    let (g, _) = planted_astars(
        &[
            (&["doctor"], &["flu", "fever"]),
            (&["airport"], &["delay", "storm"]),
            (&["server"], &["alarm", "restart"]),
        ],
        PlantedConfig {
            occurrences_per_pattern: 25,
            background_vertices: 60,
            background_attrs: 12,
            noise_labels_per_vertex: 0.5,
            seed: 11,
        },
    );
    for policy in [GainPolicy::Total, GainPolicy::DataOnly] {
        for variant in [Variant::Basic, Variant::Partial] {
            let config = |threads| {
                CspmConfig {
                    gain_policy: policy,
                    ..Default::default()
                }
                .with_threads(threads)
            };
            let base = mine(&g, variant, config(1));
            for threads in [2usize, 8] {
                let run = mine(&g, variant, config(threads));
                assert_eq!(
                    base.final_dl, run.final_dl,
                    "{variant:?}/{policy:?} diverged at {threads} threads"
                );
                assert_eq!(base.merges, run.merges);
                assert_eq!(base.stats.total_gain_evals, run.stats.total_gain_evals);
                assert_eq!(base.stats.pruned_pairs, run.stats.pruned_pairs);
            }
        }
    }
}

/// The full-regeneration scale escape hatch: past the candidate-pair
/// threshold the run delegates to the incremental policy and matches it
/// exactly; with delegation disabled the policy is honoured.
#[test]
fn full_regeneration_delegates_and_matches_incremental() {
    let (g, _) = planted_astars(
        &[(&["doctor"], &["flu", "fever"])],
        PlantedConfig {
            occurrences_per_pattern: 15,
            background_vertices: 40,
            background_attrs: 8,
            noise_labels_per_vertex: 0.0,
            seed: 7,
        },
    );
    let delegated = mine(
        &g,
        Variant::Basic,
        CspmConfig {
            full_regen_max_pairs: Some(1),
            ..equiv_config()
        },
    );
    assert!(delegated.stats.delegated);
    let incremental = mine(&g, Variant::Partial, equiv_config());
    assert_eq!(delegated.final_dl, incremental.final_dl);
    assert_eq!(delegated.merges, incremental.merges);
    let honoured = mine(
        &g,
        Variant::Basic,
        CspmConfig {
            full_regen_max_pairs: None,
            ..equiv_config()
        },
    );
    assert!(!honoured.stats.delegated);
    assert!(verify_lossless(&g, &delegated.db).is_empty());
}

/// Strategy: a sorted, duplicate-free position list.
fn arb_positions() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..300, 0..48).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// Strategy: a sorted, duplicate-free row whose shape straddles the
/// adaptive store's representation thresholds. Three regimes:
/// short sparse rows (empty / singleton included), long-but-diffuse
/// rows below the 1/8 flip-in density, and tight dense rows that the
/// store lays out as bitmaps. Lengths cross `BITMAP_MIN_LEN` (128) in
/// every regime, so cases land on both sides of the flip.
fn arb_mixed_row() -> impl Strategy<Value = Vec<u32>> {
    (
        0u32..3,
        0u32..3,
        proptest::collection::vec(0u32..600, 0..400),
    )
        .prop_map(|(kind, base_block, mut v)| {
            match kind {
                // Sparse by length: at most a handful of ids.
                0 => v.truncate(5),
                // Sparse by density: spread the ids far apart.
                1 => v.iter_mut().for_each(|x| *x *= 64),
                // Dense: ids stay packed in 0..600 — past ~128 elements
                // this crosses the flip-in threshold.
                _ => {}
            }
            // Vary the block base so bitmap windows do not all start
            // at word 0 (exercises base-relative word addressing).
            v.iter_mut().for_each(|x| *x += base_block * 512);
            v.sort_unstable();
            v.dedup();
            v
        })
}

/// A planted instance whose initial rows are long and tightly packed
/// (pattern occurrences get consecutive vertex ids), so the adaptive
/// store lays some of them out as bitmaps from the first insert.
fn dense_planted() -> cspm::graph::AttributedGraph {
    let (g, _) = planted_astars(
        &[
            (&["doctor"], &["flu", "fever"]),
            (&["airport"], &["delay", "storm"]),
        ],
        PlantedConfig {
            occurrences_per_pattern: 150,
            background_vertices: 60,
            background_attrs: 10,
            noise_labels_per_vertex: 0.3,
            seed: 19,
        },
    );
    g
}

/// The adaptive posting layout is a pure representation change: mining
/// on a `SparseOnly` store and on the default `Adaptive` store must be
/// bit-identical — same merges, same final DL, same evaluation and
/// pruning counts — at every thread count and under both policies.
#[test]
fn adaptive_and_sparse_only_stores_mine_bit_identically() {
    let g = dense_planted();
    // The fixture must actually exercise the bitmap kernels, not just
    // trivially agree sparse-vs-sparse.
    let probe = InvertedDb::build_with_posting(
        &g,
        CoresetMode::SingleValue,
        GainPolicy::Total,
        PostingPolicy::Adaptive,
    );
    assert!(
        probe.posting_store().repr_stats().bitmap_rows > 0,
        "fixture too diffuse: no bitmap rows in the initial database"
    );
    for variant in [Variant::Basic, Variant::Partial] {
        for gain_policy in [GainPolicy::Total, GainPolicy::DataOnly] {
            for threads in [1usize, 4] {
                let config = CspmConfig {
                    gain_policy,
                    ..Default::default()
                }
                .with_threads(threads);
                let run = |posting| {
                    run_on_db(
                        InvertedDb::build_with_posting(
                            &g,
                            config.coreset_mode,
                            config.gain_policy,
                            posting,
                        ),
                        variant.policy(),
                        config,
                    )
                };
                let sparse = run(PostingPolicy::SparseOnly);
                let adaptive = run(PostingPolicy::Adaptive);
                assert_eq!(
                    sparse.final_dl, adaptive.final_dl,
                    "{variant:?}/{gain_policy:?} DL diverged at {threads} threads"
                );
                assert_eq!(sparse.merges, adaptive.merges);
                assert_eq!(
                    sparse.stats.total_gain_evals,
                    adaptive.stats.total_gain_evals
                );
                assert_eq!(sparse.stats.pruned_pairs, adaptive.stats.pruned_pairs);
                assert_eq!(sparse.stats.posting.bitmap_rows, 0);
                assert_eq!(sparse.stats.posting.flips_to_bitmap, 0);
                assert!(verify_lossless(&g, &adaptive.db).is_empty());
            }
        }
    }
}

proptest! {
    /// `PostingStore` intersection agrees with the reference slice
    /// algebra of `positions.rs`.
    #[test]
    fn store_intersection_matches_reference(a in arb_positions(), b in arb_positions()) {
        let mut store = PostingStore::new();
        let ra = store.insert(&a);
        let rb = store.insert(&b);
        let mut out = Vec::new();
        store.intersect_into(ra, rb, &mut out);
        prop_assert_eq!(&out, &intersect(&a, &b));
        prop_assert_eq!(store.intersect_count(ra, rb), intersect_count(&a, &b));
    }

    /// In-place difference over a span agrees with the reference.
    #[test]
    fn store_difference_matches_reference(a in arb_positions(), b in arb_positions()) {
        let mut store = PostingStore::new();
        let ra = store.insert(&a);
        let mut reference = a.clone();
        difference_inplace(&mut reference, &b);
        let new_len = store.difference(ra, &b);
        prop_assert_eq!(store.get(ra), reference.as_slice());
        prop_assert_eq!(new_len, reference.len());
    }

    /// In-place union over a span agrees with the reference, both when
    /// it fits the span's capacity and when the row must relocate.
    #[test]
    fn store_union_matches_reference(
        a in arb_positions(),
        b in arb_positions(),
        shrink in arb_positions(),
    ) {
        let mut store = PostingStore::new();
        let ra = store.insert(&a);
        // Randomly shrink first so some cases exercise the in-place
        // (slack-capacity) path and others the relocation path.
        let mut reference = a.clone();
        difference_inplace(&mut reference, &shrink);
        store.difference(ra, &shrink);
        let expected = union(&reference, &b);
        let new_len = store.union_in_place(ra, &b);
        prop_assert_eq!(store.get(ra), expected.as_slice());
        prop_assert_eq!(new_len, expected.len());
        prop_assert!(store.live_len() >= expected.len());
    }

    /// Rows keep their identity and content under interleaved shrink /
    /// grow / release traffic on a shared arena.
    #[test]
    fn store_rows_are_isolated(
        a in arb_positions(),
        b in arb_positions(),
        c in arb_positions(),
        cut in arb_positions(),
    ) {
        let mut store = PostingStore::new();
        let ra = store.insert(&a);
        let rb = store.insert(&b);
        let rc = store.insert(&c);
        // Mutate b heavily; a and c must be unaffected.
        store.difference(rb, &cut);
        store.union_in_place(rb, &cut);
        prop_assert_eq!(store.get(ra), a.as_slice());
        prop_assert_eq!(store.get(rc), c.as_slice());
        let expected_b = union(&{ let mut t = b.clone(); difference_inplace(&mut t, &cut); t }, &cut);
        prop_assert_eq!(store.get(rb), expected_b.as_slice());
        // Releasing a row recycles its span without disturbing others.
        store.release(ra);
        let rd = store.insert(&cut);
        prop_assert_eq!(store.get(rd), cut.as_slice());
        prop_assert_eq!(store.get(rc), c.as_slice());
    }

    /// Every adaptive kernel pairing — sparse×sparse (galloping and
    /// two-pointer), sparse×bitmap on either side, bitmap×bitmap —
    /// agrees with the reference sorted-slice algebra. Rows come from
    /// [`arb_mixed_row`], which straddles the flip thresholds and
    /// includes empty rows and singletons; read-only probes run first,
    /// then the mutating ops (difference may demote a bitmap, union may
    /// flip a sparse row in or regrow a bitmap window).
    #[test]
    fn adaptive_kernels_match_reference_algebra(
        a in arb_mixed_row(),
        b in arb_mixed_row(),
        c in arb_mixed_row(),
    ) {
        let mut store = PostingStore::new();
        let ra = store.insert(&a);
        let rb = store.insert(&b);
        // Read-only kernels against pristine rows.
        let mut out = Vec::new();
        store.intersect_into(ra, rb, &mut out);
        prop_assert_eq!(&out, &intersect(&a, &b));
        prop_assert_eq!(store.intersect_count(ra, rb), intersect_count(&a, &b));
        prop_assert_eq!(store.intersect(ra, rb), intersect(&a, &b));
        prop_assert_eq!(store.intersect_count_slice(ra, &b), intersect_count(&a, &b));
        let got_a = store.positions(ra).into_owned();
        prop_assert_eq!(&got_a, &a);
        let absent: Vec<u32> =
            c.iter().copied().filter(|x| a.binary_search(x).is_err()).collect();
        prop_assert_eq!(store.filter_missing(ra, &c), absent);
        // Mutating kernels: difference on a, union on b, both vs c.
        let mut ref_a = a.clone();
        difference_inplace(&mut ref_a, &c);
        prop_assert_eq!(store.difference(ra, &c), ref_a.len());
        let shrunk_a = store.positions(ra).into_owned();
        prop_assert_eq!(&shrunk_a, &ref_a);
        let ref_b = union(&b, &c);
        prop_assert_eq!(store.union_in_place(rb, &c), ref_b.len());
        let grown_b = store.positions(rb).into_owned();
        prop_assert_eq!(&grown_b, &ref_b);
        prop_assert_eq!(store.live_len(), ref_a.len() + ref_b.len());
    }

    /// The same traffic on a `SparseOnly` store yields identical
    /// contents — the policy changes layout, never results — and never
    /// allocates a bitmap row.
    #[test]
    fn sparse_only_policy_matches_adaptive_contents(
        a in arb_mixed_row(),
        b in arb_mixed_row(),
    ) {
        let mut adaptive = PostingStore::new();
        let mut sparse = PostingStore::with_capacity_and_policy(2, PostingPolicy::SparseOnly);
        let (aa, ab) = (adaptive.insert(&a), adaptive.insert(&b));
        let (sa, sb) = (sparse.insert(&a), sparse.insert(&b));
        prop_assert_eq!(adaptive.union_in_place(aa, &b), sparse.union_in_place(sa, &b));
        prop_assert_eq!(adaptive.difference(ab, &a), sparse.difference(sb, &a));
        let (ua, ub) = (adaptive.positions(aa).into_owned(), adaptive.positions(ab).into_owned());
        prop_assert_eq!(ua.as_slice(), sparse.get(sa));
        prop_assert_eq!(ub.as_slice(), sparse.get(sb));
        let stats = sparse.repr_stats();
        prop_assert_eq!(stats.bitmap_rows, 0);
        prop_assert_eq!(stats.flips_to_bitmap, 0);
    }

    /// Per-policy engine guarantees on small random graphs: runs are
    /// deterministic (bit-identical DL when repeated), the
    /// full-regeneration policy truly converges (no positive-gain pair
    /// survives in its final database), and both policies compress.
    /// Cross-policy *equality* is deliberately not asserted here — the
    /// greedy paths may differ on noisy inputs (§V).
    #[test]
    fn engine_guarantees_on_random_graphs(n in 4usize..16, k in 2usize..5, seed in 0u64..5000) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = cspm::graph::GraphBuilder::new();
        for _ in 0..n {
            b.add_vertex([format!("a{}", next() as usize % k)]);
        }
        for v in 1..n {
            b.add_edge(v as u32 - 1, v as u32).unwrap();
        }
        for _ in 0..n {
            let (u, w) = (next() as usize % n, next() as usize % n);
            if u != w {
                let _ = b.add_edge(u as u32, w as u32);
            }
        }
        let g = b.build().unwrap();
        let basic = cspm_basic(&g, equiv_config());
        let partial = cspm_partial(&g, equiv_config());
        prop_assert_eq!(cspm_basic(&g, equiv_config()).final_dl, basic.final_dl);
        prop_assert_eq!(cspm_partial(&g, equiv_config()).final_dl, partial.final_dl);
        // (Total-DL compression under GainPolicy::Total is asserted in
        // tests/properties.rs; under DataOnly only the data cost is
        // monotone, so no compression claim is made here.)
        // Full regeneration converged: no remaining positive pair.
        for &(x, y) in basic.db.sharing_pairs().iter() {
            prop_assert!(
                basic.db.pair_gain(x, y) <= 1e-9,
                "unconverged pair ({}, {}) with gain {}",
                x, y, basic.db.pair_gain(x, y)
            );
        }
    }
}
