//! Integration tests of the extension layers (paper §VII future work):
//! dynamic attributed graphs and graph classification.

use cspm::classify::{labeled_graph_collection, train_classifier, CollectionConfig};
use cspm::core::{mine_dynamic, verify_lossless, CspmConfig, Variant};
use cspm::datasets::{usflight_like, Scale};
use cspm::graph::dynamic::SnapshotSequence;
use cspm::nn::NetConfig;

#[test]
fn dynamic_mining_finds_persistent_patterns() {
    // Four seasons of a flight network: the planted departure/delay
    // correlation recurs in every snapshot.
    let seq: SnapshotSequence = (0..4)
        .map(|season| usflight_like(Scale::Tiny, 50 + season).graph)
        .collect();
    let result = mine_dynamic(&seq, Variant::Partial, CspmConfig::default());
    assert!(result.result.merges >= 1);
    let persistent: Vec<_> = result.persistent(3).collect();
    assert!(
        !persistent.is_empty(),
        "a recurring planted pattern must persist across snapshots"
    );
    // Temporal bookkeeping is complete: every occurrence is mapped.
    for t in &result.temporal {
        let m = &result.result.model.astars()[t.astar_index];
        assert_eq!(t.occurrences.len(), m.positions.len());
        assert!(t.snapshot_support <= seq.len());
    }
}

#[test]
fn dynamic_union_mining_is_lossless() {
    let seq: SnapshotSequence = (0..3)
        .map(|s| usflight_like(Scale::Tiny, 60 + s).graph)
        .collect();
    let union = seq.union_graph();
    let result = mine_dynamic(&seq, Variant::Partial, CspmConfig::default());
    let errors = verify_lossless(&union, &result.result.db);
    assert!(
        errors.is_empty(),
        "union mining lost information: {errors:?}"
    );
}

#[test]
fn classification_end_to_end() {
    let data = labeled_graph_collection(
        2,
        CollectionConfig {
            graphs_per_class: 16,
            ..Default::default()
        },
    );
    let cfg = NetConfig {
        hidden: 16,
        epochs: 200,
        ..Default::default()
    };
    let report = train_classifier(&data, 0.3, 16, &cfg, 11);
    // Structural classes: a-star features must clearly beat both chance
    // and the structure-blind histogram baseline.
    assert!(
        report.astar_accuracy >= 0.8,
        "accuracy {}",
        report.astar_accuracy
    );
    assert!(
        report.astar_accuracy > report.histogram_accuracy + 0.2,
        "a-star {} vs histogram {}",
        report.astar_accuracy,
        report.histogram_accuracy
    );
}

#[test]
fn lossless_verification_on_every_benchmark() {
    // The §IV-A losslessness claim, end to end, on all four (tiny)
    // benchmark generators.
    for d in cspm::datasets::benchmark_suite(Scale::Tiny, 1234) {
        let result = cspm::core::cspm_partial(&d.graph, CspmConfig::default());
        let errors = verify_lossless(&d.graph, &result.db);
        assert!(
            errors.is_empty(),
            "{}: {} decode errors",
            d.name,
            errors.len()
        );
    }
}
