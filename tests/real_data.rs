//! End-to-end mining of the checked-in real-format fixtures.
//!
//! The CI `real-data` leg runs these: every fixture under
//! `tests/fixtures/` must ingest, mine, and actually compress
//! (ratio < 1), and the mined model must stay lossless. Snapshots are
//! disabled so the tests exercise the parsers, not the cache;
//! `tests/cli.rs` covers the snapshot path.
#![cfg(feature = "real-data")]

use std::path::PathBuf;

use cspm::core::{verify_lossless, CspmConfig, Variant};
use cspm::datasets::ingest::{ingest, Format, SnapshotPolicy};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn mine_fixture(name: &str, expect: Format) -> f64 {
    let report =
        ingest(&fixture(name), None, SnapshotPolicy::Off).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(report.format, expect, "{name}: auto-detection");
    let g = &report.dataset.graph;
    assert!(
        (500..=1500).contains(&g.vertex_count()),
        "{name}: fixtures are ~1k-vertex cuts, got {}",
        g.vertex_count()
    );
    assert!(g.edge_count() > g.vertex_count(), "{name}: too sparse");

    let result = cspm::core::mine(g, Variant::Partial, CspmConfig::default());
    let ratio = result.compression_ratio();
    assert!(
        ratio > 0.0 && ratio < 1.0,
        "{name}: expected real compression, got ratio {ratio}"
    );
    assert!(
        verify_lossless(g, &result.db).is_empty(),
        "{name}: mined model must decode losslessly"
    );
    ratio
}

#[test]
fn pokec_fixture_mines_and_compresses() {
    mine_fixture("pokec_small.txt", Format::Pokec);
}

#[test]
fn dblp_fixture_mines_and_compresses() {
    mine_fixture("dblp_small.csv", Format::Dblp);
}

#[test]
fn usflight_fixture_mines_and_compresses() {
    mine_fixture("usflight_small.csv", Format::UsFlight);
}

#[test]
fn explicit_format_overrides_sniffing() {
    // Forcing the wrong format on a fixture is a typed error, not a
    // panic (the DBLP parser rejects the Pokec edge list's header).
    let err = ingest(
        &fixture("pokec_small.txt"),
        Some(Format::Dblp),
        SnapshotPolicy::Off,
    )
    .unwrap_err();
    assert!(
        matches!(err, cspm::datasets::ingest::IngestError::Parse { .. }),
        "got {err}"
    );
}
