//! Differential churn property suite: random graphs × random
//! add/remove/change delta sequences. A warm, patched session must be
//! bit-identical to a cold mine of the resulting graph — same model
//! digest, same `final_dl` bits — at threads {1, 4} and under both
//! [`PostingPolicy`] values. The fixtures derive from
//! `CSPM_CHURN_SEED` (CI pins a seed matrix); a fixed seed reproduces
//! the exact sweep.

use cspm::core::engine::{run_on_db, CspmResult};
use cspm::core::{
    CoresetMode, CspmConfig, GainPolicy, InvertedDb, Miner, MiningSession, PostingPolicy,
    ProgressObserver, Variant,
};
use cspm::graph::dynamic::{DeltaVertex, GraphDelta};
use cspm::graph::{AttributedGraph, GraphBuilder};

fn seed() -> u64 {
    std::env::var("CSPM_CHURN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A9)
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const POOL: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

/// Seed-derived base graph: a ring (connectivity) plus random chords,
/// 1–2 attribute values per vertex from a small pool so stars repeat.
fn random_graph(state: &mut u64) -> AttributedGraph {
    let n = 12 + (xorshift(state) % 8) as u32;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let first = POOL[(xorshift(state) % 6) as usize];
        let second = POOL[(xorshift(state) % 6) as usize];
        if first == second {
            b.add_vertex([first]);
        } else {
            b.add_vertex([first, second]);
        }
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).unwrap();
    }
    for _ in 0..n {
        let u = (xorshift(state) % n as u64) as u32;
        let v = (xorshift(state) % n as u64) as u32;
        if u != v {
            let _ = b.add_edge(u, v);
        }
    }
    b.build().unwrap()
}

/// Seed-derived churn delta over `base`: new wired vertices, label
/// attachment, and always at least one removal (a ring edge of the
/// *original* base survives often enough to make removals real work,
/// and absent targets are apply-time no-ops). Every delta stages
/// cleanly: added edges only wire new vertices to base ids, label
/// changes skip `old == new`.
fn random_churn_delta(state: &mut u64, base: &AttributedGraph) -> GraphDelta {
    let base_n = base.vertex_count() as u32;
    let mut d = GraphDelta::new();
    for _ in 0..xorshift(state) % 3 {
        let attr = POOL[(xorshift(state) % 6) as usize];
        let v = d.add_vertex([attr]);
        d.add_edge(
            v,
            DeltaVertex::Existing((xorshift(state) % base_n as u64) as u32),
        );
    }
    for _ in 0..=xorshift(state) % 2 {
        let u = (xorshift(state) % base_n as u64) as u32;
        d.remove_edge(u, (u + 1) % base_n);
    }
    if xorshift(state).is_multiple_of(2) {
        d.remove_label(
            (xorshift(state) % base_n as u64) as u32,
            POOL[(xorshift(state) % 6) as usize],
        );
    }
    if xorshift(state).is_multiple_of(2) {
        let old = POOL[(xorshift(state) % 6) as usize];
        let new = POOL[(xorshift(state) % 6) as usize];
        if old != new {
            d.change_label((xorshift(state) % base_n as u64) as u32, old, new);
        }
    }
    if xorshift(state).is_multiple_of(4) {
        d.remove_vertex((xorshift(state) % base_n as u64) as u32);
    }
    d
}

/// Mined-model digest with floats as bits: the bit-identity yardstick.
type AstarDigest = (Vec<u32>, Vec<u32>, Vec<u32>, u64, u64);

fn digest(res: &CspmResult) -> Vec<AstarDigest> {
    res.model
        .astars()
        .iter()
        .map(|m| {
            (
                m.astar.coreset().to_vec(),
                m.astar.leafset().to_vec(),
                m.positions.clone(),
                m.frequency,
                m.code_len.to_bits(),
            )
        })
        .collect()
}

struct RunToEnd;
impl ProgressObserver for RunToEnd {
    fn on_iteration(&mut self, _: &cspm::core::IterationStat) -> std::ops::ControlFlow<()> {
        std::ops::ControlFlow::Continue(())
    }
}

fn assert_bit_identical(warm: &CspmResult, cold: &CspmResult, label: &str) {
    assert_eq!(
        warm.final_dl.to_bits(),
        cold.final_dl.to_bits(),
        "{label}: final DL diverged (warm {} vs cold {})",
        warm.final_dl,
        cold.final_dl
    );
    assert_eq!(digest(warm), digest(cold), "{label}: mined model diverged");
}

/// Session-level property: a warm session fed a random churn sequence
/// mines bit-identically to a cold mine of the final graph, at 1 and
/// 4 threads. The sequence is staged delta by delta, so every stage
/// takes either the patch path or the rebuild fallback — both must
/// land on the same bits.
#[test]
fn churned_sessions_mine_bit_identically_to_cold_at_threads_1_and_4() {
    let mut churn_was_patched = false;
    for round in 0..6u64 {
        let mut state = seed().wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let graph = random_graph(&mut state);
        let mut deltas = Vec::new();
        let mut rolling = graph.clone();
        for _ in 0..4 {
            let d = random_churn_delta(&mut state, &rolling);
            assert!(d.has_churn(), "fixture must exercise churn");
            rolling = d.apply(&rolling).expect("fixture delta applies").graph;
            deltas.push(d);
        }
        for threads in [1usize, 4] {
            let mut warm = Miner::new().threads(threads).build();
            warm.mine(&graph);
            for d in &deltas {
                let stats = warm.stage_delta(d).expect("staged churn delta");
                if stats.rebuilt.is_none() && stats.patch.positions_removed > 0 {
                    churn_was_patched = true;
                }
            }
            let warm_res = warm.run_with(&mut RunToEnd).unwrap();
            let cold_res = Miner::new().threads(threads).build().mine(&rolling);
            assert_bit_identical(
                &warm_res,
                &cold_res,
                &format!("round {round}, {threads} threads"),
            );
        }
    }
    assert!(
        churn_was_patched,
        "no round took the patch path for removals — fixture too degenerate"
    );
}

/// Database-level property: the patched [`InvertedDb`] mines
/// bit-identically to a fresh build of the evolved graph under both
/// posting policies × both gain policies × 1 and 4 threads. A
/// [`PatchError`] (e.g. a vanished attribute) is the documented
/// rebuild signal, not a failure — those rounds are skipped here and
/// covered by the session-level test above.
#[test]
fn patched_databases_mine_bit_identically_under_both_posting_policies() {
    let mut patched_rounds = 0;
    for round in 0..6u64 {
        let mut state = seed() ^ round.wrapping_mul(0xA24B_AED4_963E_E407);
        let graph = random_graph(&mut state);
        let mut rolling = graph.clone();
        let mut dirty_log = Vec::new();
        for _ in 0..3 {
            let d = random_churn_delta(&mut state, &rolling);
            let applied = d.apply(&rolling).expect("fixture delta applies");
            rolling = applied.graph;
            dirty_log.push(applied.dirty_centers);
        }
        for posting in [PostingPolicy::SparseOnly, PostingPolicy::Adaptive] {
            for gain_policy in [GainPolicy::Total, GainPolicy::DataOnly] {
                // Replay the dirty sets against a db built on the base
                // graph; each step patches toward the next graph state.
                let mut db = InvertedDb::build_with_posting(
                    &graph,
                    CoresetMode::SingleValue,
                    gain_policy,
                    posting,
                );
                // Re-derive the per-step graphs (the patch needs the
                // evolved graph at each step, not just the final one).
                let mut step_graph = graph.clone();
                let mut step_state = seed() ^ round.wrapping_mul(0xA24B_AED4_963E_E407);
                // Skip the graph-construction draws so the delta draws
                // replay identically.
                let _ = random_graph(&mut step_state);
                let mut ok = true;
                for dirty in &dirty_log {
                    let d = random_churn_delta(&mut step_state, &step_graph);
                    step_graph = d.apply(&step_graph).unwrap().graph;
                    match db.apply_delta(&step_graph, dirty) {
                        Ok(_) => {}
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                patched_rounds += 1;
                assert_eq!(step_graph, rolling, "fixture replay drifted");
                for threads in [1usize, 4] {
                    let config = CspmConfig {
                        gain_policy,
                        ..Default::default()
                    }
                    .with_threads(threads);
                    let warm = run_on_db(db.clone(), Variant::Partial.policy(), config);
                    let fresh = InvertedDb::build_with_posting(
                        &rolling,
                        CoresetMode::SingleValue,
                        gain_policy,
                        posting,
                    );
                    let cold = run_on_db(fresh, Variant::Partial.policy(), config);
                    assert_bit_identical(
                        &warm,
                        &cold,
                        &format!("round {round}, {posting:?}/{gain_policy:?}, {threads} threads"),
                    );
                }
            }
        }
    }
    assert!(
        patched_rounds > 0,
        "every round hit the rebuild fallback — fixture too degenerate"
    );
}

/// Sustained churn through a session with an aggressive compaction
/// threshold: fragmentation stays bounded, compactions actually fire,
/// and the session still mines bit-identically to cold at the end.
#[test]
fn sustained_session_churn_stays_compact_and_bit_identical() {
    let mut state = seed().wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    let graph = random_graph(&mut state);
    let mut session: MiningSession = Miner::new().threads(1).compact_above(1.2).build();
    session.mine(&graph);
    let mut rolling = graph;
    for _ in 0..12 {
        let d = random_churn_delta(&mut state, &rolling);
        rolling = d.apply(&rolling).expect("fixture delta applies").graph;
        let stats = session.stage_delta(&d).expect("staged churn delta");
        assert!(
            stats.fragmentation <= 1.2 || stats.fragmentation.is_infinite(),
            "fragmentation {} above the compaction threshold",
            stats.fragmentation
        );
    }
    let warm = session.run_with(&mut RunToEnd).unwrap();
    let cold = Miner::new().threads(1).build().mine(&rolling);
    assert_bit_identical(&warm, &cold, "sustained churn");
}
