//! Property-based tests of the core invariants, on random attributed
//! graphs and random transaction databases.

use cspm::core::{
    cspm_basic, cspm_partial, CoresetMode, CspmConfig, GainPolicy, InvertedDb, Miner,
};
use cspm::graph::dynamic::{DeltaVertex, GraphDelta};
use cspm::graph::{AttributedGraph, GraphBuilder};
use cspm::itemset::{eclat, krimp, slim, KrimpConfig, SlimConfig, TransactionDb};
use cspm::store::Durable;
use proptest::prelude::*;

/// Strategy: a connected attributed graph with `n` vertices, `k`
/// attribute values, 1–2 values per vertex, and a chain backbone plus
/// random extra edges.
fn arb_graph() -> impl Strategy<Value = AttributedGraph> {
    (4usize..24, 2usize..6, any::<u64>()).prop_map(|(n, k, seed)| {
        // Deterministic pseudo-random construction from the seed.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new();
        for _ in 0..n {
            let a1 = (next() as usize) % k;
            b.add_vertex([format!("a{a1}")]);
        }
        for v in 0..n {
            if next() % 2 == 0 {
                b.add_label(v as u32, &format!("a{}", (next() as usize) % k))
                    .unwrap();
            }
        }
        for v in 1..n {
            b.add_edge(v as u32 - 1, v as u32).unwrap();
        }
        for _ in 0..n / 2 {
            let u = (next() as usize) % n;
            let w = (next() as usize) % n;
            if u != w {
                let _ = b.add_edge(u as u32, w as u32);
            }
        }
        b.build().expect("chain backbone keeps the graph connected")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every accepted merge strictly decreases the policy's objective:
    /// total DL under `Total`, the Eq. 8 data cost under `DataOnly` —
    /// in both algorithm variants.
    #[test]
    fn dl_decreases_monotonically(g in arb_graph(), data_only in any::<bool>()) {
        let policy = if data_only { GainPolicy::DataOnly } else { GainPolicy::Total };
        for result in [
            cspm_basic(&g, CspmConfig { gain_policy: policy, ..CspmConfig::instrumented() }),
            cspm_partial(&g, CspmConfig { gain_policy: policy, ..CspmConfig::instrumented() }),
        ] {
            let mut prev = result.initial_dl;
            let mut prev_data = f64::INFINITY;
            for it in &result.stats.iterations {
                match policy {
                    GainPolicy::Total => {
                        prop_assert!(it.dl_after < prev + 1e-9,
                            "total DL increased: {} -> {}", prev, it.dl_after);
                        prev = it.dl_after;
                    }
                    GainPolicy::DataOnly => {
                        prop_assert!(it.data_dl_after < prev_data + 1e-9,
                            "data DL increased: {} -> {}", prev_data, it.data_dl_after);
                        prev_data = it.data_dl_after;
                    }
                }
                prop_assert!(it.accepted_gain > 0.0);
                prop_assert!(it.update_ratio() >= 0.0 && it.update_ratio() <= 1.0);
            }
            if policy == GainPolicy::Total {
                prop_assert!(result.final_dl <= result.initial_dl + 1e-9);
            }
        }
    }

    /// Under the DataOnly policy the analytic gain (Eq. 9) equals the
    /// exact Eq. 8 delta for every candidate pair of the initial
    /// database (no union-collision cases there).
    #[test]
    fn gain_formula_is_exact(g in arb_graph()) {
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::DataOnly);
        for &(x, y) in db.sharing_pairs().iter().take(64) {
            if db.is_nested_pair(x, y) {
                continue;
            }
            let gain = db.pair_gain(x, y);
            let mut clone = db.clone();
            let before = clone.data_cost();
            let out = clone.merge(x, y);
            if out.merged_any {
                let delta = clone.data_cost() - before;
                prop_assert!((gain + delta).abs() < 1e-6,
                    "gain {} vs delta {}", gain, delta);
            } else {
                prop_assert_eq!(gain, 0.0);
            }
        }
    }

    /// Coreset frequencies always equal the sum of their row frequencies
    /// (Eq. 8's Σ l_ij = c_j), before and after mining.
    #[test]
    fn coreset_frequency_conservation(g in arb_graph()) {
        let result = cspm_partial(&g, CspmConfig::default());
        let db = &result.db;
        for e in 0..db.coreset_count() as u32 {
            let sum: u64 = db
                .iter_rows()
                .filter(|&(c, _, _)| c == e)
                .map(|(_, _, p)| p.len() as u64)
                .sum();
            prop_assert_eq!(db.coreset_freq(e), sum);
        }
    }

    /// Every mined a-star really occurs at every recorded position — the
    /// losslessness of the inverted representation.
    #[test]
    fn mined_patterns_occur_at_positions(g in arb_graph()) {
        let result = cspm_basic(&g, CspmConfig::default());
        for m in result.model.astars() {
            for &v in &m.positions {
                prop_assert!(m.astar.matches_at(&g, v),
                    "pattern {:?} does not match at {}", m.astar, v);
            }
            prop_assert!(m.frequency <= m.coreset_freq);
            prop_assert!(m.code_len >= 0.0);
        }
    }

    /// Both variants converge and compress (or at worst leave the DL
    /// unchanged). The two greedy paths may genuinely differ — Partial
    /// skips candidates outside `rdict[x] ∩ rdict[y]` (§V) — so no
    /// cross-variant dominance is asserted, only soundness of each.
    #[test]
    fn both_variants_compress(g in arb_graph()) {
        let basic = cspm_basic(&g, CspmConfig::default());
        let partial = cspm_partial(&g, CspmConfig::default());
        prop_assert!(basic.final_dl <= basic.initial_dl + 1e-9);
        prop_assert!(partial.final_dl <= partial.initial_dl + 1e-9);
        prop_assert!(basic.compression_ratio() <= 1.0 + 1e-12);
        prop_assert!(partial.compression_ratio() <= 1.0 + 1e-12);
    }

    /// Eclat agrees with brute-force subset enumeration.
    #[test]
    fn eclat_matches_bruteforce(
        rows in proptest::collection::vec(proptest::collection::vec(0u32..6, 1..5), 1..12),
        min_support in 1u32..4,
    ) {
        let db = TransactionDb::from_rows(rows);
        let mined = eclat(&db, min_support);
        // Brute force over the ≤ 2^6 itemsets.
        let n = db.n_items();
        let mut expected = 0usize;
        for mask in 1u32..(1 << n) {
            let items: Vec<u32> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
            let support = db
                .iter()
                .filter(|t| items.iter().all(|i| t.binary_search(i).is_ok()))
                .count() as u32;
            if support >= min_support {
                expected += 1;
                let found = mined.iter().find(|f| f.items == items);
                prop_assert!(found.is_some(), "missing itemset {:?}", items);
                prop_assert_eq!(found.unwrap().support, support);
            }
        }
        prop_assert_eq!(mined.len(), expected);
    }

    /// Krimp and SLIM never produce a worse description than the
    /// singleton baseline, and their covers stay lossless.
    #[test]
    fn compressors_never_hurt(
        rows in proptest::collection::vec(proptest::collection::vec(0u32..8, 1..6), 2..16),
    ) {
        let db = TransactionDb::from_rows(rows);
        let k = krimp(&db, KrimpConfig::default());
        prop_assert!(k.dl.total() <= k.baseline.total() + 1e-9);
        let s = slim(&db, SlimConfig::default());
        prop_assert!(s.dl.total() <= s.baseline.total() + 1e-9);
        for (t, used) in db.iter().zip(&s.cover.covers) {
            let mut rebuilt: Vec<u32> = used
                .iter()
                .flat_map(|&i| s.code_table.patterns()[i as usize].items().iter().copied())
                .collect();
            rebuilt.sort_unstable();
            prop_assert_eq!(rebuilt, t.to_vec());
        }
    }
}

/// In-memory footprint estimate vs. ground-truth serialized size for
/// one durable session state: `(approx_bytes, snapshot_bytes)` right
/// after a checkpoint, so the snapshot reflects exactly the resident
/// graph + pristine database that `approx_bytes` counts.
fn footprint_vs_snapshot(s: &cspm::store::DurableSession) -> (usize, u64) {
    (s.session().approx_bytes(), s.stats().snapshot_bytes)
}

proptest! {
    // File-backed cases (each checkpoints 4×); fewer cases than the
    // pure-compute block keeps the suite's wall time flat.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The eviction budget's currency, `ResidentFootprint::approx_bytes`,
    /// stays within a constant factor of the measured serialized size
    /// (the checkpoint snapshot) as a session is grown, churned, and
    /// compacted. The estimate need not be exact — it skips fixed-size
    /// headers by design — but if it drifted more than a constant factor
    /// from reality, `--mem-budget` enforcement would be meaningless.
    #[test]
    fn approx_bytes_tracks_serialized_size(g in arb_graph(), seed in any::<u64>()) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("cspm-prop-footprint");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join(format!(
            "{}-{}.cspm",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));

        // The estimate counts heap payloads that scale with the graph;
        // the snapshot adds small fixed headers and saves on dense
        // encodings (observed band: estimate 2.7–9.4× the snapshot).
        // "Constant factor" with a small additive floor so 4-vertex
        // graphs don't fail on header noise alone.
        const FACTOR: f64 = 16.0;
        const FLOOR: f64 = 512.0;
        let in_band = |state: &str, s: &cspm::store::DurableSession| {
            let (approx, ser) = footprint_vs_snapshot(s);
            let (approx, ser) = (approx as f64, ser as f64);
            assert!(approx > 0.0 && ser > 0.0, "{state}: empty measurement");
            assert!(
                approx <= FACTOR * ser + FLOOR,
                "{state}: approx_bytes {approx} >> serialized {ser}"
            );
            assert!(
                ser <= FACTOR * approx + FLOOR,
                "{state}: serialized {ser} >> approx_bytes {approx}"
            );
        };

        let mut s = Miner::new().threads(1).durable(&snap).unwrap();
        s.mine(&g).unwrap();
        in_band("mined", &s);

        // Grow: new vertices wired to the existing chain, plus labels.
        let n = g.vertex_count() as u32;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut grow = GraphDelta::new();
        for i in 0..n.div_ceil(2) {
            let v = grow.add_vertex([format!("a{}", next() % 4)]);
            grow.add_edge(v, DeltaVertex::Existing(next() as u32 % n));
            if i % 2 == 0 {
                grow.add_label(next() as u32 % n, format!("a{}", next() % 4));
            }
        }
        s.stage_delta(&grow).unwrap();
        s.run().unwrap();
        s.checkpoint().unwrap();
        in_band("grown", &s);

        // Churn: detach vertices and strip edges/labels — the arena
        // now carries release slack, the snapshot does not.
        let mut churn = GraphDelta::new();
        for i in 0..n / 3 {
            churn.remove_vertex(next() as u32 % n);
            let (u, v) = (i % n, (i + 1) % n);
            churn.remove_edge(u, v);
        }
        s.stage_delta(&churn).unwrap();
        s.run().unwrap();
        s.checkpoint().unwrap();
        in_band("churned", &s);

        // Compaction densifies the arena in place; the estimate must
        // follow the reclaim, not remember the slack.
        s.compact_now();
        s.checkpoint().unwrap();
        in_band("compacted", &s);

        std::fs::remove_file(&snap).ok();
        let mut wal = snap.into_os_string();
        wal.push(".wal");
        std::fs::remove_file(wal).ok();
    }
}
