//! Property tests for `CandidateScheduler` lazy revalidation: a stale
//! queue entry whose gain changed sign must never be applied — under
//! both scheduling policies and under the parallel scorer.
//!
//! The observable invariant is the monotone-DL guarantee: every
//! *applied* merge carries a strictly positive gain validated against
//! the database state at application time. Under `Incremental` that is
//! enforced by revalidating each popped entry (stale sign-flips are
//! dropped on pop — see `engine::pop_next_positive` and its unit test);
//! under `FullRegeneration` by rebuilding the queue from exact gains
//! after every merge. If either mechanism let one stale entry through,
//! the accepted gain would disagree with the realised DL delta and the
//! per-iteration DL trace would rise.

use cspm::core::{mine, CspmConfig, GainPolicy, SchedulePolicy, Variant};
use cspm::graph::GraphBuilder;
use proptest::prelude::*;

/// Builds a connected random graph with `n` chained vertices over `k`
/// label families plus xorshift chords/noise — dense enough in shared
/// coresets that merges keep invalidating queued candidates.
fn random_graph(n: usize, k: usize, seed: u64) -> cspm::graph::AttributedGraph {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let primary = format!("a{}", next() as usize % k);
        if next() % 3 == 0 {
            b.add_vertex([primary, format!("b{}", next() as usize % k)]);
        } else {
            b.add_vertex([primary]);
        }
    }
    for v in 1..n {
        b.add_edge(v as u32 - 1, v as u32).unwrap();
    }
    for _ in 0..2 * n {
        let (u, w) = (next() as usize % n, next() as usize % n);
        if u != w {
            let _ = b.add_edge(u as u32, w as u32);
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both policies, both pricing models, threads ∈ {1, 4}: every
    /// accepted merge has positive validated gain, the total DL under
    /// `Total` pricing is strictly monotone (the direct consequence of
    /// "no stale sign-flipped entry is ever applied"), and the parallel
    /// scorer changes nothing about the trace.
    #[test]
    fn stale_sign_flips_are_never_applied(
        n in 12usize..28,
        k in 3usize..6,
        seed in 0u64..2000,
    ) {
        let g = random_graph(n, k, seed);
        for variant in [Variant::Basic, Variant::Partial] {
            for gain_policy in [GainPolicy::Total, GainPolicy::DataOnly] {
                let mut traces = Vec::new();
                for threads in [1usize, 4] {
                    let config = CspmConfig {
                        gain_policy,
                        ..CspmConfig::instrumented()
                    }
                    .with_threads(threads);
                    let res = mine(&g, variant, config);
                    // Every applied merge was validated positive.
                    for it in &res.stats.iterations {
                        prop_assert!(
                            it.accepted_gain > 0.0,
                            "{variant:?}/{gain_policy:?}: applied a non-positive gain"
                        );
                    }
                    // Under Total pricing the accepted gain is the exact
                    // DL delta, so the trace must fall strictly.
                    if gain_policy == GainPolicy::Total {
                        let mut prev = res.initial_dl;
                        for it in &res.stats.iterations {
                            prop_assert!(
                                it.dl_after < prev + 1e-9,
                                "DL rose: a stale entry must have been applied"
                            );
                            prev = it.dl_after;
                        }
                    }
                    traces.push((res.final_dl, res.merges, res.stats.total_gain_evals));
                }
                // The parallel scorer is bit-identical to sequential.
                prop_assert_eq!(traces[0], traces[1]);
            }
        }
    }

    /// Sanity for the policy mapping used above.
    #[test]
    fn variant_policy_mapping(seed in 0u64..2) {
        let _ = seed;
        prop_assert_eq!(Variant::Basic.policy(), SchedulePolicy::FullRegeneration);
        prop_assert_eq!(Variant::Partial.policy(), SchedulePolicy::Incremental);
    }
}
