//! End-to-end tests of `cspm serve` + `cspm client` as real processes:
//! a live daemon, concurrent tenants driven through the client binary,
//! DL digests asserted bit-identical to one-shot `cspm mine --json`,
//! and a clean SIGTERM shutdown (exit 0, no leaked socket file).
//!
//! In-process protocol coverage (malformed frames, deadlines, eviction)
//! lives in `crates/serve/tests/protocol.rs`; this suite only exercises
//! what needs real binaries and real signals.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// Runs the binary and returns its raw exit code — the client's code
/// is part of its contract (0 ok, 1 daemon refusal, 2 transport).
fn cspm_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cspm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn cspm(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = cspm_code(args);
    (code == Some(0), stdout, stderr)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cspm-serve-tests").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pulls the string value of `"key":"…"` out of a JSON line. The CLI
/// emits flat, unescaped hex digests and op names, so a plain string
/// scan is reliable here.
fn json_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = doc.find(&needle)? + needle.len();
    let end = doc[start..].find('"')?;
    Some(doc[start..start + end].to_string())
}

struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    /// Spawns `cspm serve` and blocks until it answers a ping.
    fn spawn(socket: &Path, extra: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_cspm"))
            .arg("serve")
            .arg("--socket")
            .arg(socket)
            .args(extra)
            .spawn()
            .expect("daemon spawns");
        let daemon = Daemon {
            child,
            socket: socket.to_path_buf(),
        };
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let (ok, _, _) = cspm(&["client", "ping", "--socket", daemon.socket_str()]);
            if ok {
                return daemon;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not answer ping within 20s"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn socket_str(&self) -> &str {
        self.socket.to_str().unwrap()
    }

    /// SIGTERM + wait; asserts exit 0 and that the socket file is gone.
    fn terminate(mut self) {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs")
            .success();
        assert!(ok, "kill -TERM failed");
        let status = self.child.wait().expect("daemon reaps");
        assert!(status.success(), "daemon exited {status:?} on SIGTERM");
        assert!(
            !self.socket.exists(),
            "daemon leaked its socket file {:?}",
            self.socket
        );
    }
}

#[test]
fn three_concurrent_tenants_mine_bit_identically_to_one_shot() {
    let dir = temp_dir("tenants");
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(&socket, &["--threads", "2"]);

    let handles: Vec<_> = (0..3)
        .map(|t| {
            let dir = dir.clone();
            let socket = socket.clone();
            std::thread::spawn(move || {
                let socket = socket.to_str().unwrap();
                let graph = dir.join(format!("g{t}.txt"));
                let graph_str = graph.to_str().unwrap();
                let seed = (11 + t).to_string();
                let (ok, _, err) = cspm(&[
                    "generate", "dblp", graph_str, "--scale", "tiny", "--seed", &seed,
                ]);
                assert!(ok, "generate: {err}");

                // Ground truth: one-shot CLI mining of the same file.
                let (ok, json, err) = cspm(&["mine", graph_str, "--json"]);
                assert!(ok, "one-shot mine: {err}");
                let expected =
                    json_str_field(&json, "final_dl_hex").expect("one-shot emits final_dl_hex");

                let tenant = format!("t{t}");
                let (ok, _, err) = cspm(&[
                    "client", "open", &tenant, "--socket", socket, "--graph", graph_str,
                ]);
                assert!(ok, "open {tenant}: {err}");

                let (ok, resp, err) = cspm(&["client", "mine", &tenant, "--socket", socket]);
                assert!(ok, "mine {tenant}: {err}");
                let got =
                    json_str_field(&resp, "final_dl_bits").expect("daemon emits final_dl_bits");
                assert_eq!(got, expected, "{tenant}: daemon DL digest != one-shot CLI");

                // The session keeps serving after a delta re-mine.
                let delta = dir.join(format!("delta{t}.json"));
                std::fs::write(
                    &delta,
                    format!(r#"{{"add_vertices":[["extra{t}"]],"add_edges":[[0,{{"new":0}}]]}}"#),
                )
                .unwrap();
                let (ok, resp, err) = cspm(&[
                    "client",
                    "delta",
                    &tenant,
                    "--socket",
                    socket,
                    "--file",
                    delta.to_str().unwrap(),
                ]);
                assert!(ok, "delta {tenant}: {err}");
                assert!(resp.contains("\"dirty_centers\""), "delta response: {resp}");
                let (ok, resp, err) = cspm(&["client", "mine", &tenant, "--socket", socket]);
                assert!(ok, "re-mine {tenant}: {err}");
                let regrown =
                    json_str_field(&resp, "final_dl_bits").expect("re-mine emits final_dl_bits");
                assert_ne!(regrown, expected, "delta must change the mined DL");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("tenant thread");
    }

    let (ok, stats, _) = cspm(&["client", "stats", "--socket", daemon.socket_str()]);
    assert!(ok);
    assert!(stats.contains("\"sessions\":3"), "stats: {stats}");
    for t in 0..3 {
        assert!(stats.contains(&format!("\"t{t}\"")), "stats: {stats}");
    }

    daemon.terminate();
}

#[test]
fn subscribe_streams_progress_and_metrics_expose_every_layer() {
    let dir = temp_dir("observe");
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(
        &socket,
        &["--store-dir", dir.join("store").to_str().unwrap()],
    );
    let sock = daemon.socket_str();

    let graph = dir.join("g.txt");
    let graph_str = graph.to_str().unwrap();
    let (ok, _, err) = cspm(&[
        "generate", "dblp", graph_str, "--scale", "tiny", "--seed", "7",
    ]);
    assert!(ok, "generate: {err}");
    let (ok, _, err) = cspm(&[
        "client", "open", "obs", "--socket", sock, "--graph", graph_str,
    ]);
    assert!(ok, "open: {err}");

    // Ground truth for the stream's terminal line: a plain mine.
    let (ok, resp, err) = cspm(&["client", "mine", "obs", "--socket", sock]);
    assert!(ok, "mine: {err}");
    let expected = json_str_field(&resp, "final_dl_bits").expect("mine emits final_dl_bits");

    // Subscribe: at least one progress event line, then the terminal
    // "done" line, bit-identical to the plain mine (warm ≡ warm).
    let (ok, stream, err) = cspm(&["client", "subscribe", "obs", "--socket", sock]);
    assert!(ok, "subscribe: {err}");
    let lines: Vec<&str> = stream.lines().collect();
    assert!(lines.len() >= 2, "expected progress + done lines: {stream}");
    let done_at = lines
        .iter()
        .position(|l| l.contains("\"event\":\"done\""))
        .expect("stream ends with a done event");
    assert_eq!(done_at, lines.len() - 1, "done must be terminal: {stream}");
    assert!(done_at >= 1, "no progress line before done: {stream}");
    for l in &lines[..done_at] {
        assert!(l.contains("\"event\":\"progress\""), "stray line: {l}");
        assert!(l.contains("\"dl_after\""), "progress line shape: {l}");
    }
    let got = json_str_field(lines[done_at], "final_dl_bits").expect("done carries final_dl_bits");
    assert_eq!(got, expected, "subscribe terminal != plain mine");

    // Close checkpoints the durable tenant — store fsync traffic.
    let (ok, _, err) = cspm(&["client", "close", "obs", "--socket", sock]);
    assert!(ok, "close: {err}");

    // One scrape shows all three instrumented layers.
    let (ok, text, err) = cspm(&["client", "metrics", "--socket", sock]);
    assert!(ok, "metrics: {err}");
    assert!(
        text.contains("# TYPE cspm_engine_runs_total counter"),
        "engine family missing: {text}"
    );
    assert!(
        text.contains("cspm_serve_requests_total{op=\"mine\"}"),
        "serve family missing: {text}"
    );
    assert!(
        text.contains("cspm_store_fsync_total"),
        "store family missing: {text}"
    );
    assert!(
        text.contains("cspm_engine_mine_seconds_bucket"),
        "histogram buckets missing: {text}"
    );
    assert!(
        text.contains("cspm_serve_requests_total{op=\"subscribe\"} 1"),
        "subscribe not counted: {text}"
    );

    daemon.terminate();
}

#[test]
fn daemon_reports_typed_errors_and_sigterm_shutdown_is_clean() {
    let dir = temp_dir("errors");
    let socket = dir.join("d.sock");
    let daemon = Daemon::spawn(
        &socket,
        &["--store-dir", dir.join("store").to_str().unwrap()],
    );
    let sock = daemon.socket_str();

    // Unknown session: typed error line on stdout, and exit code 1 —
    // the daemon answered, it just refused.
    let (code, resp, err) = cspm_code(&["client", "mine", "ghost", "--socket", sock]);
    assert_eq!(code, Some(1), "daemon refusal must exit 1: {err}");
    assert!(resp.contains("\"unknown_session\""), "stdout: {resp}");
    assert!(err.contains("unknown_session"), "stderr: {err}");

    // No daemon at all: exit code 2, no usage banner — a transport
    // failure is neither a usage mistake nor a server-side refusal.
    let dead = dir.join("nobody-home.sock");
    let (code, _, err) = cspm_code(&["client", "ping", "--socket", dead.to_str().unwrap()]);
    assert_eq!(code, Some(2), "transport failure must exit 2: {err}");
    assert!(err.contains("cannot connect"), "stderr: {err}");
    assert!(
        !err.contains("usage:"),
        "transport failure printed usage: {err}"
    );

    // A client-side invalid delta never even reaches the daemon.
    let bad = dir.join("bad.json");
    // `{"new":5}` refers to the 6th vertex of a delta that adds none.
    std::fs::write(&bad, "{\"add_edges\":[[0,{\"new\":5}]]}").unwrap();
    let (ok, _, err) = cspm(&[
        "client",
        "delta",
        "ghost",
        "--socket",
        sock,
        "--file",
        bad.to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(err.contains("invalid delta"), "stderr: {err}");

    // The daemon is still healthy afterwards.
    let (ok, resp, _) = cspm(&["client", "ping", "--socket", sock]);
    assert!(ok, "daemon wedged after error traffic: {resp}");

    daemon.terminate();
}
