//! Cross-crate baseline integration: SLIM applied to attributed graphs
//! (the Table III protocol) and multi-value coresets via Krimp/SLIM
//! (§IV-F Step 1).

use cspm::core::{cspm_partial, CoresetMode, CspmConfig, GainPolicy, InvertedDb};
use cspm::datasets::{dblp_like, Scale};
use cspm::graph::AttributedGraph;
use cspm::itemset::{slim, SlimConfig, TransactionDb};

/// Table III protocol: "treating coresets in each adjacency list tuple
/// as items" — one transaction per vertex containing its own and its
/// neighbours' attribute values.
fn graph_to_transactions(g: &AttributedGraph) -> TransactionDb {
    let rows = g
        .vertices()
        .map(|v| {
            let mut t: Vec<u32> = g.labels(v).to_vec();
            for &u in g.neighbors(v) {
                t.extend_from_slice(g.labels(u));
            }
            t
        })
        .collect();
    TransactionDb::with_item_universe(rows, g.attr_count())
}

#[test]
fn slim_on_graph_compresses_dblp_like() {
    let d = dblp_like(Scale::Tiny, 3);
    let db = graph_to_transactions(&d.graph);
    let res = slim(&db, SlimConfig::default());
    assert!(
        res.compression_ratio() < 1.0,
        "ratio {}",
        res.compression_ratio()
    );
    assert!(res.accepted > 0);
}

#[test]
fn cspm_and_slim_find_related_structure() {
    // Both compressors should agree that the data is compressible; CSPM
    // additionally localises the correlations into (core, leaf) roles.
    let d = dblp_like(Scale::Tiny, 3);
    let slim_res = slim(&graph_to_transactions(&d.graph), SlimConfig::default());
    let cspm_res = cspm_partial(&d.graph, CspmConfig::default());
    assert!(slim_res.compression_ratio() < 1.0);
    assert!(cspm_res.compression_ratio() < 1.0);
    assert!(cspm_res.model.non_trivial(2).count() > 0);
}

#[test]
fn multi_value_coresets_via_krimp_and_slim() {
    // A graph whose vertices strongly co-carry {x, y}: the compressing
    // pre-pass must materialise the pair as one coreset (§IV-F Step 1).
    let mut b = cspm::graph::GraphBuilder::new();
    for i in 0..24u32 {
        if i % 4 == 0 {
            b.add_vertex(["x", "y", "z"]);
        } else {
            b.add_vertex(["x", "y"]);
        }
        if i > 0 {
            b.add_edge(i - 1, i).unwrap();
        }
    }
    let g = b.build().unwrap();
    for mode in [CoresetMode::Krimp { min_support: 2 }, CoresetMode::Slim] {
        let db = InvertedDb::build(&g, mode, GainPolicy::Total);
        assert!(db.coreset_count() > 0, "{mode:?}");
        let has_multi = db.coresets().iter().any(|c| c.items.len() >= 2);
        assert!(has_multi, "{mode:?} produced only singleton coresets");
        let cfg = CspmConfig {
            coreset_mode: mode,
            ..Default::default()
        };
        let res = cspm_partial(&g, cfg);
        assert!(res.final_dl <= res.initial_dl + 1e-9);
    }
    // The sparse DBLP-like graph still mines end to end in both modes
    // even when the pre-pass keeps only singletons.
    let d = dblp_like(Scale::Tiny, 3);
    for mode in [CoresetMode::Krimp { min_support: 2 }, CoresetMode::Slim] {
        let cfg = CspmConfig {
            coreset_mode: mode,
            ..Default::default()
        };
        let res = cspm_partial(&d.graph, cfg);
        assert!(res.final_dl <= res.initial_dl + 1e-9, "{mode:?}");
    }
}
