//! Pattern-recovery integration tests: CSPM must rediscover planted
//! a-stars and rank them highly (the qualitative claim behind Fig. 6).

use cspm::core::{cspm_partial, CspmConfig, Variant};
use cspm::datasets::{planted_astars, pokec_like, usflight_like, PlantedConfig, Scale};

#[test]
fn planted_astars_are_rediscovered_and_ranked_high() {
    let patterns: &[(&[&str], &[&str])] = &[
        (&["fault"], &["timeout", "retry"]),
        (&["vip"], &["premium"]),
    ];
    let (g, truth) = planted_astars(
        patterns,
        PlantedConfig {
            occurrences_per_pattern: 40,
            ..Default::default()
        },
    );
    let result = cspm_partial(&g, CspmConfig::default());

    // Every planted correlation appears in some mined leafset under the
    // right coreset.
    let recall = truth.recall(|planted| {
        result.model.astars().iter().any(|m| {
            planted
                .coreset()
                .iter()
                .all(|c| m.astar.coreset().contains(c))
                && planted
                    .leafset()
                    .iter()
                    .all(|l| m.astar.leafset().contains(l))
        })
    });
    assert!(recall >= 1.0 - 1e-9, "recall {recall}");

    // The multi-leaf planted pattern ranks in the top decile.
    let rank = result
        .model
        .astars()
        .iter()
        .position(|m| m.astar.leafset().len() >= 2)
        .expect("a merged pattern exists");
    assert!(
        rank * 10 <= result.model.len(),
        "rank {rank} of {}",
        result.model.len()
    );
}

#[test]
fn pokec_music_pattern_shape() {
    // §VI-B(3): the young-taste cluster must be summarised by a-stars
    // whose leafsets bundle several of the young genres together.
    let d = pokec_like(Scale::Tiny, 77);
    let g = &d.graph;
    let result = cspm_partial(g, CspmConfig::default());
    let young: Vec<u32> = ["rap", "rock", "metal", "pop", "sladaky"]
        .iter()
        .filter_map(|s| g.attrs().get(s))
        .collect();
    let best_bundle = result
        .model
        .non_trivial(2)
        .map(|m| {
            m.astar
                .leafset()
                .iter()
                .filter(|a| young.contains(a))
                .count()
        })
        .max()
        .unwrap_or(0);
    assert!(
        best_bundle >= 3,
        "largest young-genre bundle only {best_bundle}"
    );
}

#[test]
fn usflight_trend_pattern_is_found() {
    // §VI-B(2): ({NbDepart-}, {NbDepart+, DelayArriv-}).
    let d = usflight_like(Scale::Paper, 5);
    let g = &d.graph;
    let result = cspm::core::mine(g, Variant::Partial, CspmConfig::default());
    let dm = g.attrs().get("NbDepart-").unwrap();
    let dp = g.attrs().get("NbDepart+").unwrap();
    let da = g.attrs().get("DelayArriv-").unwrap();
    let found = result.model.astars().iter().any(|m| {
        m.astar.coreset().contains(&dm)
            && m.astar.leafset().contains(&dp)
            && m.astar.leafset().contains(&da)
    });
    assert!(found, "planted flight-trend pattern not recovered");
}

#[test]
fn unique_labels_yield_no_frequent_patterns() {
    // A path with a unique attribute value per vertex: merges can still
    // happen (summarising each vertex's two neighbours into one row is
    // DL-optimal — Eq. 9 gives P1 = 2, P2 = 0), but no *frequent*
    // pattern may be fabricated: every mined a-star occurs exactly once.
    let mut b = cspm::graph::GraphBuilder::new();
    for i in 0..20 {
        b.add_vertex([format!("u{i}")]);
    }
    for i in 1..20 {
        b.add_edge(i - 1, i).unwrap();
    }
    let g = b.build().unwrap();
    let result = cspm_partial(&g, CspmConfig::default());
    assert!(result.final_dl <= result.initial_dl);
    for m in result.model.astars() {
        assert_eq!(
            m.frequency, 1,
            "uncorrelated data cannot contain a repeated a-star: {:?}",
            m.astar
        );
    }
}
