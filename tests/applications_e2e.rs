//! End-to-end integration of the two application pipelines
//! (§VI-C node attribute completion, §VI-D alarm correlation).

use cspm::alarm::{
    acor_rank, coverage_curve, cspm_rank, simulate, RuleLibrary, SimConfig, TelecomTopology,
};
use cspm::completion::CompletionModel;
use cspm::completion::{fuse_scores, recall_at_k, CompletionTask, CspmScorer, NeighAggre};
use cspm::datasets::{citation_completion, CompletionKind, Scale};

#[test]
fn completion_pipeline_cspm_boosts_neighaggre() {
    let d = citation_completion(CompletionKind::Dblp, Scale::Small, 7);
    let task = CompletionTask::split(&d.graph, 0.4, 99);
    let scorer = CspmScorer::fit(&task);
    let cspm_scores = scorer.score_all(&task);
    let plain = NeighAggre.predict(&task);
    let fused = fuse_scores(&plain, &cspm_scores);
    let eval = |scores: &cspm::nn::Matrix| {
        let mut r = 0.0;
        for &v in &task.test_nodes {
            r += recall_at_k(scores.row(v as usize), task.truth(v), d.ks[1]);
        }
        r / task.test_nodes.len() as f64
    };
    let (p, f) = (eval(&plain), eval(&fused));
    assert!(
        f > p,
        "CSPM fusion must boost NeighAggre on DBLP-like data: {p} -> {f}"
    );
}

#[test]
fn completion_scorer_has_no_leakage() {
    // Mining must not see hidden attributes: a scorer fitted on the task
    // must behave identically when the hidden labels are scrambled.
    let d = citation_completion(CompletionKind::Cora, Scale::Tiny, 7);
    let task = CompletionTask::split(&d.graph, 0.4, 99);
    let og = task.observed_graph();
    for &v in &task.test_nodes {
        assert!(og.labels(v).is_empty());
    }
}

#[test]
fn alarm_pipeline_both_rankers_converge_to_full_coverage() {
    let topo = TelecomTopology::generate(3, 8, 40, 5);
    let rules = RuleLibrary::generate(5, 15, 50, 6);
    let cfg = SimConfig {
        n_events: 6000,
        n_windows: 80,
        ..Default::default()
    };
    let events = simulate(&topo, &rules, &cfg);
    let valid = rules.pair_rules();

    let cspm = cspm_rank(&topo, &events, cfg.window_ms);
    let acor = acor_rank(&topo, &events, cfg.window_ms);
    let full_cspm = coverage_curve(&valid, &cspm, &[cspm.len()])[0].1;
    let full_acor = coverage_curve(&valid, &acor, &[acor.len()])[0].1;
    assert!(full_cspm >= 0.9, "CSPM coverage {full_cspm}");
    assert!(full_acor >= 0.9, "ACOR coverage {full_acor}");

    // Fig. 8 shape: CSPM's area under the coverage curve is at least
    // competitive with ACOR's.
    let ks: Vec<usize> = (1..=30).map(|i| i * 5).collect();
    let auc = |ranked| {
        coverage_curve(&valid, ranked, &ks)
            .iter()
            .map(|&(_, v)| v)
            .sum::<f64>()
    };
    assert!(auc(&cspm) >= auc(&acor) * 0.9);
}

#[test]
fn alarm_rules_rank_above_noise() {
    // Valid rules should be strongly over-represented in CSPM's top-|valid|.
    let topo = TelecomTopology::generate(3, 8, 40, 5);
    let rules = RuleLibrary::generate(5, 15, 50, 6);
    let cfg = SimConfig {
        n_events: 6000,
        n_windows: 80,
        ..Default::default()
    };
    let events = simulate(&topo, &rules, &cfg);
    let valid = rules.pair_rules();
    let ranked = cspm_rank(&topo, &events, cfg.window_ms);
    let at_v = coverage_curve(&valid, &ranked, &[2 * valid.len()])[0].1;
    // Random ranking over all candidate pairs would cover only a few
    // percent at 2|valid|; demand a large multiple of that.
    assert!(at_v >= 0.4, "coverage at 2|valid| only {at_v}");
}
