//! End-to-end tests of the `cspm` command-line interface.

use std::process::Command;

fn cspm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cspm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cspm-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_mine_verify_pipeline() {
    let path = temp_path("pipeline.graph");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = cspm(&[
        "generate", "usflight", path_str, "--scale", "tiny", "--seed", "5",
    ]);
    assert!(ok, "generate failed");
    assert!(stdout.contains("USFlight"));

    let (ok, stdout, _) = cspm(&["stats", path_str]);
    assert!(ok);
    assert!(stdout.contains("vertices: 40"));
    assert!(stdout.contains("attribute homophily"));

    let (ok, stdout, _) = cspm(&["mine", path_str, "--top", "3"]);
    assert!(ok);
    assert!(stdout.contains("a-stars"));
    assert!(stdout.contains("bits"));

    let (ok, stdout, _) = cspm(&["verify", path_str]);
    assert!(ok);
    assert!(stdout.contains("losslessly"));

    std::fs::remove_file(path).ok();
}

#[test]
fn mine_flags_are_honoured() {
    let path = temp_path("flags.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    let (ok, basic_out, _) = cspm(&["mine", path_str, "--basic", "--top", "2"]);
    assert!(ok);
    let (ok, data_only_out, _) = cspm(&["mine", path_str, "--data-only", "--top", "2"]);
    assert!(ok);
    // DataOnly accepts more merges than the default Total policy.
    let merges = |s: &str| -> usize {
        s.split(" in ")
            .nth(1)
            .and_then(|rest| rest.split(" merges").next())
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    };
    assert!(merges(&data_only_out) >= merges(&basic_out));

    let (ok, _, _) = cspm(&["mine", path_str, "--multi-core", "slim", "--top", "2"]);
    assert!(ok, "multi-core slim mining failed");
    std::fs::remove_file(path).ok();
}

#[test]
fn scheduling_knobs_change_speed_not_output() {
    let path = temp_path("threads.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    // Thread count must not change the mined model: identical stdout.
    let (ok, one, _) = cspm(&["mine", path_str, "--threads", "1", "--top", "5"]);
    assert!(ok);
    let (ok, four, _) = cspm(&["mine", path_str, "--threads", "4", "--top", "5"]);
    assert!(ok);
    assert_eq!(one, four, "mined output must be thread-count invariant");

    // A tiny delegation cap reroutes --basic through the incremental
    // policy and says so.
    let (ok, out, _) = cspm(&["mine", path_str, "--basic", "--full-regen-cap", "1"]);
    assert!(ok);
    assert!(out.contains("delegated"), "delegation note missing: {out}");
    // 'none' disables delegation.
    let (ok, out, _) = cspm(&["mine", path_str, "--basic", "--full-regen-cap", "none"]);
    assert!(ok);
    assert!(!out.contains("delegated"));

    let (ok, _, stderr) = cspm(&["mine", path_str, "--full-regen-cap", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("full-regen-cap"));
    let (ok, _, stderr) = cspm(&["mine", path_str, "--threads"]);
    assert!(!ok);
    assert!(stderr.contains("--threads"));
    std::fs::remove_file(path).ok();
}

/// Copies a fixture (and its sidecars) into a scratch dir so `.csbin`
/// snapshots land there, not in the repo tree.
#[cfg(feature = "real-data")]
fn stage_fixture(case: &str, names: &[&str]) -> std::path::PathBuf {
    let src = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let dir = std::env::temp_dir().join("cspm-cli-tests").join(case);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::copy(src.join(name), dir.join(name)).unwrap();
    }
    dir.join(names[0])
}

#[cfg(feature = "real-data")]
#[test]
fn ingest_writes_then_loads_snapshot() {
    let input = stage_fixture(
        "snapshot-roundtrip",
        &["pokec_small.txt", "pokec_small.profiles.txt"],
    );
    let snap = input.with_file_name("pokec_small.txt.csbin");
    std::fs::remove_file(&snap).ok();
    let input = input.to_str().unwrap();

    // First run parses the dump and writes the snapshot …
    let (ok, first, _) = cspm(&["mine", "--input", input, "--format", "auto", "--top", "2"]);
    assert!(ok, "first ingest run failed");
    assert!(
        first.contains("as pokec"),
        "auto-detection note missing: {first}"
    );
    assert!(
        first.contains("wrote snapshot"),
        "snapshot note missing: {first}"
    );
    assert!(snap.exists(), "snapshot file not created");

    // … the second run loads it instead of re-parsing, mining the
    // identical model.
    let (ok, second, _) = cspm(&["mine", "--input", input, "--format", "auto", "--top", "2"]);
    assert!(ok, "second ingest run failed");
    assert!(
        second.contains("loaded snapshot"),
        "snapshot not reused: {second}"
    );
    assert!(!second.contains("wrote snapshot"));
    let mined = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("mined "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        mined(&first),
        mined(&second),
        "snapshot must not change the model"
    );
}

#[cfg(feature = "real-data")]
#[test]
fn stale_snapshot_is_discarded_and_rebuilt() {
    let input = stage_fixture(
        "snapshot-stale",
        &["pokec_small.txt", "pokec_small.profiles.txt"],
    );
    let snap = input.with_file_name("pokec_small.txt.csbin");
    let input = input.to_str().unwrap();
    let (ok, _, _) = cspm(&["mine", "--input", input, "--top", "2"]);
    assert!(ok);

    // Corrupt the layout-version field: the loader must reject it with
    // a typed error and the CLI must fall back to a fresh parse.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[4] = 0xEE;
    std::fs::write(&snap, &bytes).unwrap();
    let (ok, out, _) = cspm(&["mine", "--input", input, "--top", "2"]);
    assert!(ok, "stale snapshot must not be fatal");
    assert!(
        out.contains("discarded unusable snapshot"),
        "no discard note: {out}"
    );
    assert!(
        out.contains("snapshot layout version 238"),
        "reason missing: {out}"
    );
    assert!(
        out.contains("wrote snapshot"),
        "snapshot not rebuilt: {out}"
    );
}

#[cfg(feature = "real-data")]
#[test]
fn ingest_flag_errors() {
    let (ok, _, stderr) = cspm(&["mine", "--input", "/nonexistent/dump.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot ingest"));

    let (ok, _, stderr) = cspm(&["mine", "--input", "x", "--format", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown format"));

    let (ok, _, stderr) = cspm(&["mine", "some.graph", "--input", "dump.txt"]);
    assert!(!ok);
    assert!(stderr.contains("not both"));
}

#[cfg(not(feature = "real-data"))]
#[test]
fn ingest_without_feature_points_at_generators() {
    let (ok, _, stderr) = cspm(&["mine", "--input", "dump.txt"]);
    assert!(!ok);
    assert!(
        stderr.contains("real-data") && stderr.contains("generate"),
        "unhelpful error: {stderr}"
    );
}

/// Structural well-formedness check for the hand-rolled `--json`
/// output: balanced braces/brackets outside strings, no trailing
/// garbage, string escapes valid. (CI additionally pipes a real run
/// through `python3 -m json.tool`.)
fn assert_wellformed_json(doc: &str) {
    let doc = doc.trim();
    assert!(
        doc.starts_with('{') && doc.ends_with('}'),
        "not an object: {doc:.40}"
    );
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in doc.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in {doc}");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in {doc}");
    assert!(!in_str, "unterminated string in {doc}");
}

#[test]
fn mine_json_emits_one_machine_readable_document() {
    let path = temp_path("json.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    let (ok, out, _) = cspm(&["mine", path_str, "--json", "--top", "2"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1, "one document on stdout");
    assert_wellformed_json(&out);
    // ModelSummary, RunStats, and the compression ratio all present.
    for key in [
        "\"command\":\"mine\"",
        "\"variant\":\"partial\"",
        "\"vertices\":",
        "\"compression_ratio\":",
        "\"merges\":",
        "\"total_gain_evals\":",
        "\"pruned_pairs\":",
        "\"delegated\":false",
        "\"cancelled\":false",
        "\"posting_sparse_rows\":",
        "\"posting_bitmap_rows\":",
        "\"posting_flips_to_bitmap\":",
        "\"posting_flips_to_sparse\":",
        "\"n_astars\":",
        "\"n_coresets\":",
        "\"mean_leafset_size\":",
        "\"data_bits\":",
        "\"model_bits\":",
        "\"total_bits\":",
        "\"conditional_entropy\":",
        "\"top_patterns\":[",
        "\"code_len_bits\":",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
    // --top bounds the pattern array.
    assert_eq!(out.matches("\"astar\":").count(), 2);
    // The human-readable lines must not leak into the JSON stream.
    assert!(!out.contains("a-stars:"));

    let (ok, basic, _) = cspm(&["mine", path_str, "--json", "--basic", "--top", "1"]);
    assert!(ok);
    assert!(basic.contains("\"variant\":\"basic\""));
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_json_emits_graph_metrics() {
    let path = temp_path("json-stats.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "usflight", path_str, "--scale", "tiny"]);

    let (ok, out, _) = cspm(&["stats", path_str, "--json"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1);
    assert_wellformed_json(&out);
    for key in [
        "\"command\":\"stats\"",
        "\"vertices\":40",
        "\"connected\":",
        "\"components\":",
        "\"degree\":{",
        "\"attribute_homophily\":",
        "\"mean_clustering\":",
        "\"posting\":{\"sparse_rows\":",
        "\"bitmap_rows\":",
        "\"top_attribute_values\":[",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }

    let (ok, _, stderr) = cspm(&["stats", path_str, "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    std::fs::remove_file(path).ok();
}

#[test]
fn durable_store_seeds_then_warm_opens() {
    let dir = std::env::temp_dir()
        .join("cspm-cli-tests")
        .join("store-roundtrip");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("seed.graph");
    let graph_str = graph.to_str().unwrap();
    let store = dir.join("session.csps");
    let store_str = store.to_str().unwrap();
    cspm(&["generate", "dblp", graph_str, "--scale", "tiny"]);

    // First run seeds the store from the graph file and checkpoints.
    let (ok, first, _) = cspm(&["mine", graph_str, "--store", store_str, "--top", "2"]);
    assert!(ok, "seeding run failed: {first}");
    assert!(first.contains("store: seeded"), "no seed note: {first}");
    assert!(first.contains("generation 1"), "no generation: {first}");
    assert!(store.exists(), "snapshot file not created");

    // Second run warm-opens and mines the identical model; the graph
    // argument is ignored with a note.
    let (ok, second, _) = cspm(&["mine", graph_str, "--store", store_str, "--top", "2"]);
    assert!(ok, "warm run failed: {second}");
    assert!(
        second.contains("store: warm-opened") && second.contains("(generation 1, clean"),
        "no warm-open note: {second}"
    );
    assert!(second.contains("input ignored"), "no ignore note: {second}");
    let mined = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("mined "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        mined(&first),
        mined(&second),
        "store must not change the model"
    );

    // No input at all: the stored session alone is enough.
    let (ok, third, _) = cspm(&["mine", "--store", store_str, "--top", "2"]);
    assert!(ok, "store-only run failed: {third}");
    assert!(!third.contains("input ignored"));
    assert_eq!(mined(&first), mined(&third));

    // Under --json the store notes move to stderr and the document
    // gains a "store" object.
    let (ok, out, stderr) = cspm(&["mine", "--store", store_str, "--json", "--top", "2"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1, "one document on stdout");
    assert_wellformed_json(&out);
    for key in [
        "\"store\":{",
        "\"snapshot_bytes\":",
        "\"wal_bytes\":",
        "\"generation\":1",
        "\"wal_records\":0",
        "\"recovery\":\"clean\"",
        "\"final_dl_bits\":",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
    assert!(
        stderr.contains("store: warm-opened"),
        "notes not on stderr: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_store_reports_health_and_survives_damage() {
    let dir = std::env::temp_dir()
        .join("cspm-cli-tests")
        .join("store-stats");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("seed.graph");
    let graph_str = graph.to_str().unwrap();
    let store = dir.join("session.csps");
    let store_str = store.to_str().unwrap();
    cspm(&["generate", "usflight", graph_str, "--scale", "tiny"]);

    // A path that does not exist yet is a fresh (empty) store.
    let (ok, out, _) = cspm(&["stats", "--store", store_str]);
    assert!(ok, "fresh stats failed: {out}");
    assert!(
        out.contains("never been checkpointed"),
        "fresh note missing: {out}"
    );

    let (ok, _, _) = cspm(&["mine", graph_str, "--store", store_str, "--top", "1"]);
    assert!(ok);

    let (ok, out, _) = cspm(&["stats", "--store", store_str]);
    assert!(ok, "stats failed: {out}");
    for needle in [
        "snapshot: ",
        "(generation 1)",
        "wal: ",
        "0 record(s) since last checkpoint",
        "recovery: clean",
        "graph: 40 vertices",
        "coreset mode single-value",
        "serialized row(s)",
    ] {
        assert!(out.contains(needle), "missing '{needle}' in {out}");
    }

    let (ok, out, _) = cspm(&["stats", "--store", store_str, "--json"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1);
    assert_wellformed_json(&out);
    for key in [
        "\"command\":\"stats\"",
        "\"store\":{",
        "\"generation\":1",
        "\"wal_records\":0",
        "\"recovery\":\"clean\"",
        "\"vertices\":40",
        "\"db_section\":true",
        "\"db_rows\":",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }

    // Flip a bit in the snapshot body: stats must report the fallback,
    // not crash, and a re-mine must re-seed the store.
    let mut bytes = std::fs::read(&store).unwrap();
    let at = bytes.len() / 2;
    bytes[at] ^= 0x10;
    std::fs::write(&store, &bytes).unwrap();
    let (ok, out, _) = cspm(&["stats", "--store", store_str]);
    assert!(ok, "stats on a damaged store must not fail: {out}");
    assert!(
        out.contains("recovery: snapshot-fallback") || out.contains("recovery: clean"),
        "unexpected recovery line: {out}"
    );
    let (ok, out, stderr) = cspm(&["mine", graph_str, "--store", store_str, "--top", "1"]);
    assert!(ok, "re-seeding a damaged store failed: {out} {stderr}");

    // Mixing a graph file with --store under stats is ambiguous.
    let (ok, _, stderr) = cspm(&["stats", graph_str, "--store", store_str]);
    assert!(!ok);
    assert!(stderr.contains("not both"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = cspm(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    let (ok, _, stderr) = cspm(&["mine", "/nonexistent/file.graph"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));

    let (ok, _, stderr) = cspm(&["generate", "nope", "/tmp/x.graph"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));

    let (ok, _, stderr) = cspm(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    // --format without --input would be silently ignored; refuse it.
    let (ok, _, stderr) = cspm(&["mine", "some.graph", "--format", "dblp"]);
    assert!(!ok);
    assert!(stderr.contains("--format only applies to --input"));
}
