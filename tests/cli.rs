//! End-to-end tests of the `cspm` command-line interface.

use std::process::Command;

fn cspm(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cspm"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("cspm-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_stats_mine_verify_pipeline() {
    let path = temp_path("pipeline.graph");
    let path_str = path.to_str().unwrap();

    let (ok, stdout, _) = cspm(&[
        "generate", "usflight", path_str, "--scale", "tiny", "--seed", "5",
    ]);
    assert!(ok, "generate failed");
    assert!(stdout.contains("USFlight"));

    let (ok, stdout, _) = cspm(&["stats", path_str]);
    assert!(ok);
    assert!(stdout.contains("vertices: 40"));
    assert!(stdout.contains("attribute homophily"));

    let (ok, stdout, _) = cspm(&["mine", path_str, "--top", "3"]);
    assert!(ok);
    assert!(stdout.contains("a-stars"));
    assert!(stdout.contains("bits"));

    let (ok, stdout, _) = cspm(&["verify", path_str]);
    assert!(ok);
    assert!(stdout.contains("losslessly"));

    std::fs::remove_file(path).ok();
}

#[test]
fn mine_flags_are_honoured() {
    let path = temp_path("flags.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    let (ok, basic_out, _) = cspm(&["mine", path_str, "--basic", "--top", "2"]);
    assert!(ok);
    let (ok, data_only_out, _) = cspm(&["mine", path_str, "--data-only", "--top", "2"]);
    assert!(ok);
    // DataOnly accepts more merges than the default Total policy.
    let merges = |s: &str| -> usize {
        s.split(" in ")
            .nth(1)
            .and_then(|rest| rest.split(" merges").next())
            .and_then(|n| n.parse().ok())
            .unwrap_or(0)
    };
    assert!(merges(&data_only_out) >= merges(&basic_out));

    let (ok, _, _) = cspm(&["mine", path_str, "--multi-core", "slim", "--top", "2"]);
    assert!(ok, "multi-core slim mining failed");
    std::fs::remove_file(path).ok();
}

#[test]
fn scheduling_knobs_change_speed_not_output() {
    let path = temp_path("threads.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    // Thread count must not change the mined model: identical stdout.
    let (ok, one, _) = cspm(&["mine", path_str, "--threads", "1", "--top", "5"]);
    assert!(ok);
    let (ok, four, _) = cspm(&["mine", path_str, "--threads", "4", "--top", "5"]);
    assert!(ok);
    assert_eq!(one, four, "mined output must be thread-count invariant");

    // A tiny delegation cap reroutes --basic through the incremental
    // policy and says so.
    let (ok, out, _) = cspm(&["mine", path_str, "--basic", "--full-regen-cap", "1"]);
    assert!(ok);
    assert!(out.contains("delegated"), "delegation note missing: {out}");
    // 'none' disables delegation.
    let (ok, out, _) = cspm(&["mine", path_str, "--basic", "--full-regen-cap", "none"]);
    assert!(ok);
    assert!(!out.contains("delegated"));

    let (ok, _, stderr) = cspm(&["mine", path_str, "--full-regen-cap", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("full-regen-cap"));
    let (ok, _, stderr) = cspm(&["mine", path_str, "--threads"]);
    assert!(!ok);
    assert!(stderr.contains("--threads"));
    std::fs::remove_file(path).ok();
}

/// Copies a fixture (and its sidecars) into a scratch dir so `.csbin`
/// snapshots land there, not in the repo tree.
#[cfg(feature = "real-data")]
fn stage_fixture(case: &str, names: &[&str]) -> std::path::PathBuf {
    let src = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let dir = std::env::temp_dir().join("cspm-cli-tests").join(case);
    std::fs::create_dir_all(&dir).unwrap();
    for name in names {
        std::fs::copy(src.join(name), dir.join(name)).unwrap();
    }
    dir.join(names[0])
}

#[cfg(feature = "real-data")]
#[test]
fn ingest_writes_then_loads_snapshot() {
    let input = stage_fixture(
        "snapshot-roundtrip",
        &["pokec_small.txt", "pokec_small.profiles.txt"],
    );
    let snap = input.with_file_name("pokec_small.txt.csbin");
    std::fs::remove_file(&snap).ok();
    let input = input.to_str().unwrap();

    // First run parses the dump and writes the snapshot …
    let (ok, first, _) = cspm(&["mine", "--input", input, "--format", "auto", "--top", "2"]);
    assert!(ok, "first ingest run failed");
    assert!(
        first.contains("as pokec"),
        "auto-detection note missing: {first}"
    );
    assert!(
        first.contains("wrote snapshot"),
        "snapshot note missing: {first}"
    );
    assert!(snap.exists(), "snapshot file not created");

    // … the second run loads it instead of re-parsing, mining the
    // identical model.
    let (ok, second, _) = cspm(&["mine", "--input", input, "--format", "auto", "--top", "2"]);
    assert!(ok, "second ingest run failed");
    assert!(
        second.contains("loaded snapshot"),
        "snapshot not reused: {second}"
    );
    assert!(!second.contains("wrote snapshot"));
    let mined = |s: &str| {
        s.lines()
            .skip_while(|l| !l.starts_with("mined "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        mined(&first),
        mined(&second),
        "snapshot must not change the model"
    );
}

#[cfg(feature = "real-data")]
#[test]
fn stale_snapshot_is_discarded_and_rebuilt() {
    let input = stage_fixture(
        "snapshot-stale",
        &["pokec_small.txt", "pokec_small.profiles.txt"],
    );
    let snap = input.with_file_name("pokec_small.txt.csbin");
    let input = input.to_str().unwrap();
    let (ok, _, _) = cspm(&["mine", "--input", input, "--top", "2"]);
    assert!(ok);

    // Corrupt the layout-version field: the loader must reject it with
    // a typed error and the CLI must fall back to a fresh parse.
    let mut bytes = std::fs::read(&snap).unwrap();
    bytes[4] = 0xEE;
    std::fs::write(&snap, &bytes).unwrap();
    let (ok, out, _) = cspm(&["mine", "--input", input, "--top", "2"]);
    assert!(ok, "stale snapshot must not be fatal");
    assert!(
        out.contains("discarded unusable snapshot"),
        "no discard note: {out}"
    );
    assert!(
        out.contains("snapshot layout version 238"),
        "reason missing: {out}"
    );
    assert!(
        out.contains("wrote snapshot"),
        "snapshot not rebuilt: {out}"
    );
}

#[cfg(feature = "real-data")]
#[test]
fn ingest_flag_errors() {
    let (ok, _, stderr) = cspm(&["mine", "--input", "/nonexistent/dump.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot ingest"));

    let (ok, _, stderr) = cspm(&["mine", "--input", "x", "--format", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown format"));

    let (ok, _, stderr) = cspm(&["mine", "some.graph", "--input", "dump.txt"]);
    assert!(!ok);
    assert!(stderr.contains("not both"));
}

#[cfg(not(feature = "real-data"))]
#[test]
fn ingest_without_feature_points_at_generators() {
    let (ok, _, stderr) = cspm(&["mine", "--input", "dump.txt"]);
    assert!(!ok);
    assert!(
        stderr.contains("real-data") && stderr.contains("generate"),
        "unhelpful error: {stderr}"
    );
}

/// Structural well-formedness check for the hand-rolled `--json`
/// output: balanced braces/brackets outside strings, no trailing
/// garbage, string escapes valid. (CI additionally pipes a real run
/// through `python3 -m json.tool`.)
fn assert_wellformed_json(doc: &str) {
    let doc = doc.trim();
    assert!(
        doc.starts_with('{') && doc.ends_with('}'),
        "not an object: {doc:.40}"
    );
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in doc.chars() {
        if in_str {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in {doc}");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces in {doc}");
    assert!(!in_str, "unterminated string in {doc}");
}

#[test]
fn mine_json_emits_one_machine_readable_document() {
    let path = temp_path("json.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "dblp", path_str, "--scale", "tiny"]);

    let (ok, out, _) = cspm(&["mine", path_str, "--json", "--top", "2"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1, "one document on stdout");
    assert_wellformed_json(&out);
    // ModelSummary, RunStats, and the compression ratio all present.
    for key in [
        "\"command\":\"mine\"",
        "\"variant\":\"partial\"",
        "\"vertices\":",
        "\"compression_ratio\":",
        "\"merges\":",
        "\"total_gain_evals\":",
        "\"pruned_pairs\":",
        "\"delegated\":false",
        "\"cancelled\":false",
        "\"n_astars\":",
        "\"n_coresets\":",
        "\"mean_leafset_size\":",
        "\"data_bits\":",
        "\"model_bits\":",
        "\"total_bits\":",
        "\"conditional_entropy\":",
        "\"top_patterns\":[",
        "\"code_len_bits\":",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
    // --top bounds the pattern array.
    assert_eq!(out.matches("\"astar\":").count(), 2);
    // The human-readable lines must not leak into the JSON stream.
    assert!(!out.contains("a-stars:"));

    let (ok, basic, _) = cspm(&["mine", path_str, "--json", "--basic", "--top", "1"]);
    assert!(ok);
    assert!(basic.contains("\"variant\":\"basic\""));
    std::fs::remove_file(path).ok();
}

#[test]
fn stats_json_emits_graph_metrics() {
    let path = temp_path("json-stats.graph");
    let path_str = path.to_str().unwrap();
    cspm(&["generate", "usflight", path_str, "--scale", "tiny"]);

    let (ok, out, _) = cspm(&["stats", path_str, "--json"]);
    assert!(ok);
    assert_eq!(out.trim().lines().count(), 1);
    assert_wellformed_json(&out);
    for key in [
        "\"command\":\"stats\"",
        "\"vertices\":40",
        "\"connected\":",
        "\"components\":",
        "\"degree\":{",
        "\"attribute_homophily\":",
        "\"mean_clustering\":",
        "\"top_attribute_values\":[",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }

    let (ok, _, stderr) = cspm(&["stats", path_str, "--frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"));
    std::fs::remove_file(path).ok();
}

#[test]
fn helpful_errors() {
    let (ok, _, stderr) = cspm(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    let (ok, _, stderr) = cspm(&["mine", "/nonexistent/file.graph"]);
    assert!(!ok);
    assert!(stderr.contains("cannot open"));

    let (ok, _, stderr) = cspm(&["generate", "nope", "/tmp/x.graph"]);
    assert!(!ok);
    assert!(stderr.contains("unknown dataset"));

    let (ok, _, stderr) = cspm(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    // --format without --input would be silently ignored; refuse it.
    let (ok, _, stderr) = cspm(&["mine", "some.graph", "--format", "dblp"]);
    assert!(!ok);
    assert!(stderr.contains("--format only applies to --input"));
}
