//! End-to-end reproduction of the paper's running example (Fig. 1–4)
//! through the public facade API.

use cspm::core::{cspm_basic, cspm_partial, CoresetMode, CspmConfig, GainPolicy, InvertedDb};
use cspm::graph::fixtures::paper_example;
use cspm::graph::AStar;

#[test]
fn fig1_astar_semantics() {
    let (g, at) = paper_example();
    // Fig. 1(c): S = ({a}, {b, c}) matches the extended star of Fig. 1(b).
    let s = AStar::new(vec![at.a], vec![at.b, at.c]);
    assert!(s.matches_at(&g, 0));
    assert_eq!(s.support(&g), 2);
}

#[test]
fn fig2_mapping_table_and_inverted_database() {
    let (g, at) = paper_example();
    let mt = g.mapping_table();
    assert_eq!(mt.positions(at.a), &[0, 1, 4]);
    assert_eq!(mt.positions(at.b), &[3, 4]);
    assert_eq!(mt.positions(at.c), &[1, 2]);

    let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
    // The blue record of Fig. 2(b): ({a}, {c}, {v2, v3}).
    let cc = db
        .coresets()
        .iter()
        .position(|c| c.items == [at.c])
        .unwrap() as u32;
    let la = db
        .live_leafsets()
        .into_iter()
        .find(|&l| db.leafset_items(l) == [at.a])
        .unwrap();
    assert_eq!(db.row_positions(cc, la).as_deref(), Some(&[1u32, 2][..]));
}

#[test]
fn fig4_merge_appears_in_final_model() {
    let (g, at) = paper_example();
    // Both variants merge {b} and {c} under coreset {a} (§IV-E).
    for result in [
        cspm_basic(&g, CspmConfig::default()),
        cspm_partial(&g, CspmConfig::default()),
    ] {
        assert!(result.merges >= 1);
        assert!(result.final_dl < result.initial_dl);
        let bc = result.model.astars().iter().find(|m| {
            m.astar.coreset() == [at.a] && m.astar.leafset() == [at.b.min(at.c), at.b.max(at.c)]
        });
        let bc = bc.expect("({a},{b,c}) must be mined");
        assert_eq!(bc.frequency, 2); // positions {v1, v5}
        assert_eq!(bc.positions, vec![0, 4]);
    }
}

#[test]
fn output_is_ranked_by_code_length() {
    let (g, _) = paper_example();
    let result = cspm_partial(&g, CspmConfig::default());
    let lens: Vec<f64> = result.model.astars().iter().map(|m| m.code_len).collect();
    assert!(lens.windows(2).all(|w| w[0] <= w[1] + 1e-12));
}

#[test]
fn conditional_entropy_drops_with_merging() {
    let (g, _) = paper_example();
    let before =
        InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::DataOnly).conditional_entropy();
    let after = cspm_basic(
        &g,
        CspmConfig {
            gain_policy: GainPolicy::DataOnly,
            ..Default::default()
        },
    )
    .db
    .conditional_entropy();
    assert!(
        after <= before + 1e-9,
        "H(Y|X) should not increase: {before} -> {after}"
    );
}
