//! Session-equivalence guarantees: a long-lived [`MiningSession`]
//! absorbing graph deltas must be *bit-identical* to cold re-mining —
//! same description lengths, same merges, same models, position for
//! position — at every thread count, and must stay reusable through
//! cancellation and compaction.

use std::ops::ControlFlow;

use cspm::core::{mine_dynamic, CspmConfig, CspmResult, FnObserver, IterationStat, Miner, Variant};
use cspm::graph::dynamic::{DeltaVertex, GraphDelta, SnapshotSequence};
use cspm::graph::{AttrId, AttributedGraph, GraphBuilder, VertexId};
use proptest::prelude::*;

/// One mined a-star flattened for comparison: coreset values, leafset
/// values, positions, frequency, and the code length *as bits*.
type AStarDigest = (Vec<AttrId>, Vec<AttrId>, Vec<VertexId>, u64, u64);

/// Full digest of a mined model: every field that could expose a
/// divergence between warm and cold mining. Floats are compared by
/// bits (`to_bits`), not by tolerance — "bit-identical" is the claim.
fn model_digest(res: &CspmResult) -> Vec<AStarDigest> {
    res.model
        .astars()
        .iter()
        .map(|m| {
            (
                m.astar.coreset().to_vec(),
                m.astar.leafset().to_vec(),
                m.positions.clone(),
                m.frequency,
                m.code_len.to_bits(),
            )
        })
        .collect()
}

fn assert_bit_identical(warm: &CspmResult, cold: &CspmResult, label: &str) {
    assert_eq!(
        warm.final_dl.to_bits(),
        cold.final_dl.to_bits(),
        "{label}: final DL diverged ({} vs {})",
        warm.final_dl,
        cold.final_dl
    );
    assert_eq!(warm.merges, cold.merges, "{label}: merge counts diverged");
    assert_eq!(
        warm.stats.total_gain_evals, cold.stats.total_gain_evals,
        "{label}: evaluation counts diverged"
    );
    assert_eq!(
        model_digest(warm),
        model_digest(cold),
        "{label}: mined models diverged"
    );
}

/// Deterministic xorshift for fixture construction inside proptest.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A small connected random graph over `k` label families.
fn random_graph(n: usize, k: usize, state: &mut u64) -> AttributedGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex([format!("a{}", xorshift(state) as usize % k)]);
    }
    for v in 1..n {
        b.add_edge(v as u32 - 1, v as u32).unwrap();
    }
    for _ in 0..n {
        let (u, w) = (xorshift(state) as usize % n, xorshift(state) as usize % n);
        if u != w {
            let _ = b.add_edge(u as u32, w as u32);
        }
    }
    b.build().unwrap()
}

/// A random additive delta against a graph of `n` vertices: new
/// vertices wired to existing ones, extra edges, extra labels.
fn random_delta(n: usize, k: usize, state: &mut u64) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let new = 1 + xorshift(state) as usize % 3;
    for _ in 0..new {
        let v = delta.add_vertex([
            format!("a{}", xorshift(state) as usize % k),
            format!("fresh{}", xorshift(state) as usize % 2),
        ]);
        delta.add_edge(
            v,
            DeltaVertex::Existing((xorshift(state) as usize % n) as u32),
        );
    }
    for _ in 0..xorshift(state) as usize % 3 {
        let (u, w) = (
            (xorshift(state) as usize % n) as u32,
            (xorshift(state) as usize % n) as u32,
        );
        if u != w {
            delta.add_edge(DeltaVertex::Existing(u), DeltaVertex::Existing(w));
        }
    }
    for _ in 0..xorshift(state) as usize % 3 {
        delta.add_label(
            (xorshift(state) as usize % n) as u32,
            format!("a{}", xorshift(state) as usize % k),
        );
    }
    delta
}

proptest! {
    /// (a) Replaying a snapshot sequence through one session —
    /// cold-mine the first snapshot, `apply_delta` each later one —
    /// ends bit-identical to `mine_dynamic` over the sequence *and* to
    /// a cold re-mine of the union graph, at threads ∈ {1, 4} and
    /// under both variants.
    #[test]
    fn session_replay_matches_mine_dynamic_and_cold(
        n in 5usize..12,
        k in 2usize..4,
        snapshots in 2usize..4,
        seed in 0u64..300,
    ) {
        let mut state = seed | 1;
        let seq: SnapshotSequence = (0..snapshots)
            .map(|_| random_graph(n, k, &mut state))
            .collect();
        let union = seq.union_graph();
        let (first, deltas) = seq.replay().unwrap();

        for variant in [Variant::Basic, Variant::Partial] {
            for threads in [1usize, 4] {
                let config = CspmConfig::default().with_threads(threads);
                let label = format!("{variant:?} @ {threads} threads (seed {seed})");

                let mut session = Miner::from_config(config).variant(variant).build();
                let mut warm = session.mine(&first);
                for delta in &deltas {
                    warm = session.apply_delta(delta).unwrap();
                }

                let dynamic = mine_dynamic(&seq, variant, config);
                assert_bit_identical(&warm, &dynamic.result, &format!("{label} vs mine_dynamic"));

                let cold = Miner::from_config(config).variant(variant).build().mine(&union);
                assert_bit_identical(&warm, &cold, &format!("{label} vs cold re-mine"));
            }
        }
    }

    /// (a′) The stronger form: arbitrary additive deltas — cross-
    /// component edges, new labels on old vertices, brand-new values —
    /// applied one at a time, each warm result checked against a cold
    /// mine of the grown graph at threads ∈ {1, 4}.
    #[test]
    fn incremental_deltas_match_cold_mines(
        n in 5usize..12,
        k in 2usize..4,
        steps in 1usize..4,
        seed in 0u64..300,
    ) {
        let mut state = seed.wrapping_mul(2654435761) | 1;
        let base = random_graph(n, k, &mut state);
        for threads in [1usize, 4] {
            let mut state = seed | 1;
            let config = CspmConfig::default().with_threads(threads);
            let mut session = Miner::from_config(config).build();
            session.mine(&base);
            let mut current = base.clone();
            for step in 0..steps {
                let delta = random_delta(current.vertex_count(), k, &mut state);
                let warm = session.apply_delta(&delta).unwrap();
                current = delta.apply(&current).unwrap().graph;
                let cold = Miner::from_config(config).build().mine(&current);
                assert_bit_identical(
                    &warm,
                    &cold,
                    &format!("step {step} @ {threads} threads (seed {seed})"),
                );
            }
        }
    }

    /// (b) Cancelling through the observer never corrupts the session:
    /// the cancelled result is a valid monotone prefix, and the very
    /// next run — and the next cold `mine` of a *different* graph — are
    /// exactly what a fresh session produces.
    #[test]
    fn cancellation_leaves_session_reusable(
        n in 6usize..12,
        k in 2usize..4,
        cancel_after in 1usize..4,
        seed in 0u64..300,
    ) {
        let mut state = seed | 1;
        let g = random_graph(n, k, &mut state);
        let h = random_graph(n, k, &mut state);

        let mut session = Miner::new().build();
        let full = session.mine(&g);

        let mut left = cancel_after;
        let cancelled = session
            .run_with(&mut FnObserver(|_s: &IterationStat| {
                left -= 1;
                if left == 0 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
            }))
            .unwrap();
        if cancelled.stats.cancelled {
            prop_assert_eq!(cancelled.merges, cancel_after);
        } else {
            // The run converged before the cancellation point.
            prop_assert!(full.merges < cancel_after);
        }
        prop_assert!(cancelled.final_dl >= full.final_dl - 1e-9);
        prop_assert!(cancelled.final_dl <= cancelled.initial_dl + 1e-9);

        // Re-run completes and reproduces the uncancelled result.
        let rerun = session.run_with(&mut FnObserver(|_s: &IterationStat| {
            ControlFlow::Continue(())
        })).unwrap();
        assert_bit_identical(&rerun, &full, "re-run after cancellation");

        // And the session accepts fresh work as if nothing happened.
        let warm_h = session.mine(&h);
        let cold_h = Miner::new().build().mine(&h);
        assert_bit_identical(&warm_h, &cold_h, "mine after cancellation");
    }
}

/// Acceptance: a shrink-heavy delta sequence fragments the retained
/// arena; pressure-triggered compaction brings `live_len/arena_len`
/// back to 1.0 without perturbing results.
#[test]
fn delta_traffic_triggers_compaction_back_to_one() {
    let mut state = 42u64;
    let base = random_graph(24, 3, &mut state);
    let mut session = Miner::new().compact_above(1.05).build();
    session.mine(&base);

    let mut current = base;
    let mut compacted_at_least_once = false;
    for _ in 0..6 {
        let delta = random_delta(current.vertex_count(), 3, &mut state);
        let stats = session.stage_delta(&delta).unwrap();
        current = delta.apply(&current).unwrap().graph;
        compacted_at_least_once |= stats.compacted;
        if stats.compacted {
            assert_eq!(stats.fragmentation, 1.0, "compaction must be exact");
        }
    }
    assert!(
        compacted_at_least_once,
        "patch traffic at a 1.05 threshold must trigger compaction"
    );
    assert!(session.compactions() >= 1);

    // The compacted warm state still mines bit-identically.
    let warm = session
        .run_with(&mut FnObserver(|_s: &IterationStat| {
            ControlFlow::Continue(())
        }))
        .unwrap();
    let cold = Miner::new().build().mine(&current);
    assert_bit_identical(&warm, &cold, "post-compaction run");
}

/// Without auto-compaction, sustained delta traffic visibly fragments
/// the retained arena — the pressure the session API exists to relieve.
#[test]
fn fragmentation_accumulates_without_compaction() {
    let mut state = 7u64;
    let base = random_graph(24, 3, &mut state);
    let mut session = Miner::new().compact_above(f64::INFINITY).build();
    session.mine(&base);

    let mut current = base;
    for _ in 0..8 {
        let delta = random_delta(current.vertex_count(), 3, &mut state);
        session.stage_delta(&delta).unwrap();
        current = delta.apply(&current).unwrap().graph;
    }
    assert!(
        session.fragmentation() > 1.0,
        "expected fragmentation to accumulate, got {}",
        session.fragmentation()
    );
    assert_eq!(session.compactions(), 0);
    session.compact_now();
    assert_eq!(session.fragmentation(), 1.0);
}
