//! Telecom alarm-correlation substrate (§VI-D of the paper, Fig. 8).
//!
//! The paper evaluates CSPM on a proprietary log of ~6M alarms from a
//! metropolitan network, with 300 alarm types governed by 11 expert
//! rules (decomposed into 121 cause→derivative pair rules from the AABD
//! system). None of that data is public, so this crate builds the whole
//! pipeline synthetically (see DESIGN.md §5):
//!
//! * [`TelecomTopology`]: a three-tier (core/aggregation/access) device
//!   network;
//! * [`RuleLibrary`]: a ground-truth rule library with the paper's
//!   11-rules/121-pairs structure;
//! * [`simulate`]: a fault-propagation simulator that plays faults
//!   through the rules onto the topology, mixing in noise alarms;
//! * [`build_window_graph`]: windowing of the alarm log into a dynamic
//!   attributed graph (disjoint union of per-window snapshots);
//! * [`acor_rank`]: the ACOR baseline — per-pair correlation scoring;
//! * [`cspm_rank`]: CSPM-based ranking — mine a-stars, split into pair
//!   rules keeping the code-length order;
//! * [`coverage_curve`]: the Fig. 8 metric.

mod compression;
mod miner;
mod rules;
mod simulator;
mod topology;

pub use compression::{compress_log, CompressionReport};
pub use miner::{acor_rank, coverage_curve, cspm_rank, PairRule, PairStats, RankedPairs};
pub use rules::{AlarmRule, AlarmType, RuleLibrary};
pub use simulator::{build_window_graph, simulate, AlarmEvent, SimConfig, WindowGraph};
pub use topology::TelecomTopology;
