//! Telecom network topology generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A three-tier telecom device network: meshed core routers, aggregation
/// rings dual-homed to the core, and access devices hanging off the
/// aggregation layer — the standard metro-network shape.
#[derive(Debug, Clone)]
pub struct TelecomTopology {
    adjacency: Vec<Vec<u32>>,
    n_core: usize,
    n_agg: usize,
}

impl TelecomTopology {
    /// Generates a topology with the given tier sizes.
    pub fn generate(n_core: usize, n_agg: usize, n_access: usize, seed: u64) -> Self {
        assert!(n_core >= 2 && n_agg >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = n_core + n_agg + n_access;
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<u32>>, u: usize, v: usize| {
            if u != v && !adj[u].contains(&(v as u32)) {
                adj[u].push(v as u32);
                adj[v].push(u as u32);
            }
        };
        // Core: full mesh.
        for i in 0..n_core {
            for j in i + 1..n_core {
                connect(&mut adjacency, i, j);
            }
        }
        // Aggregation: ring + dual-homing to two random cores.
        for k in 0..n_agg {
            let a = n_core + k;
            let b = n_core + (k + 1) % n_agg;
            connect(&mut adjacency, a, b);
            let c1 = rng.gen_range(0..n_core);
            let mut c2 = rng.gen_range(0..n_core);
            if c2 == c1 {
                c2 = (c1 + 1) % n_core;
            }
            connect(&mut adjacency, a, c1);
            connect(&mut adjacency, a, c2);
        }
        // Access: one or two uplinks into the aggregation layer.
        for k in 0..n_access {
            let a = n_core + n_agg + k;
            let up = n_core + rng.gen_range(0..n_agg);
            connect(&mut adjacency, a, up);
            if rng.gen::<f64>() < 0.3 {
                let up2 = n_core + rng.gen_range(0..n_agg);
                connect(&mut adjacency, a, up2);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        Self {
            adjacency,
            n_core,
            n_agg,
        }
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbours of a device.
    pub fn neighbors(&self, d: u32) -> &[u32] {
        &self.adjacency[d as usize]
    }

    /// Number of links.
    pub fn n_links(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Tier of a device: 0 = core, 1 = aggregation, 2 = access.
    pub fn tier(&self, d: u32) -> u8 {
        let d = d as usize;
        if d < self.n_core {
            0
        } else if d < self.n_core + self.n_agg {
            1
        } else {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_connectivity() {
        let t = TelecomTopology::generate(4, 10, 50, 3);
        assert_eq!(t.n_devices(), 64);
        // Core mesh: 6 links; agg ring: 10; dual-home: ≤20; access ≥50.
        assert!(t.n_links() >= 6 + 10 + 10 + 50);
        // Every device reaches the core: BFS from device 0.
        let mut seen = vec![false; t.n_devices()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in t.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "topology must be connected");
    }

    #[test]
    fn tiers_are_assigned() {
        let t = TelecomTopology::generate(2, 3, 5, 1);
        assert_eq!(t.tier(0), 0);
        assert_eq!(t.tier(2), 1);
        assert_eq!(t.tier(5), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TelecomTopology::generate(3, 6, 20, 9);
        let b = TelecomTopology::generate(3, 6, 20, 9);
        assert_eq!(a.adjacency, b.adjacency);
    }
}
