//! The ground-truth alarm rule library (AABD-style).

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Dense alarm-type identifier.
pub type AlarmType = u16;

/// One expert rule: a cause alarm that triggers derivative alarms
/// (e.g. `Low_signal → {Link_degrader, Microwave_stripping}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlarmRule {
    /// The cause alarm type.
    pub cause: AlarmType,
    /// The derivative alarm types it triggers.
    pub derivatives: Vec<AlarmType>,
}

/// The rule library plus the overall alarm-type universe.
#[derive(Debug, Clone)]
pub struct RuleLibrary {
    rules: Vec<AlarmRule>,
    n_types: usize,
}

impl RuleLibrary {
    /// Generates a library shaped like the paper's: `n_rules` rules over
    /// `n_types` alarm types, decomposing into `n_pairs` cause→derivative
    /// pair rules (paper: 11 rules, 300 types, 121 pairs). Causes and
    /// derivatives are disjoint type sets; leftover types are pure noise.
    pub fn generate(n_rules: usize, n_pairs: usize, n_types: usize, seed: u64) -> Self {
        assert!(
            n_pairs >= n_rules,
            "each rule needs at least one derivative"
        );
        assert!(n_types >= n_rules + n_pairs, "type universe too small");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut types: Vec<AlarmType> = (0..n_types as AlarmType).collect();
        types.shuffle(&mut rng);
        let causes: Vec<AlarmType> = types[..n_rules].to_vec();
        let derivative_pool = &types[n_rules..n_rules + n_pairs];
        // Split the derivative pool into n_rules chunks of random sizes
        // (each ≥ 1) summing to n_pairs.
        let mut sizes = vec![1usize; n_rules];
        for _ in 0..n_pairs - n_rules {
            sizes[rng.gen_range(0..n_rules)] += 1;
        }
        let mut rules = Vec::with_capacity(n_rules);
        let mut offset = 0;
        for (i, &size) in sizes.iter().enumerate() {
            rules.push(AlarmRule {
                cause: causes[i],
                derivatives: derivative_pool[offset..offset + size].to_vec(),
            });
            offset += size;
        }
        Self { rules, n_types }
    }

    /// The rules.
    pub fn rules(&self) -> &[AlarmRule] {
        &self.rules
    }

    /// Size of the alarm-type universe.
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// Decomposition into `(cause, derivative)` pair rules — the valid
    /// set `A` of the coverage metric.
    pub fn pair_rules(&self) -> Vec<(AlarmType, AlarmType)> {
        self.rules
            .iter()
            .flat_map(|r| r.derivatives.iter().map(move |&d| (r.cause, d)))
            .collect()
    }

    /// Alarm types that belong to no rule (background noise types).
    pub fn noise_types(&self) -> Vec<AlarmType> {
        let mut in_rule = vec![false; self.n_types];
        for r in &self.rules {
            in_rule[r.cause as usize] = true;
            for &d in &r.derivatives {
                in_rule[d as usize] = true;
            }
        }
        (0..self.n_types as AlarmType)
            .filter(|&t| !in_rule[t as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_decomposes_into_121_pairs() {
        let lib = RuleLibrary::generate(11, 121, 300, 7);
        assert_eq!(lib.rules().len(), 11);
        assert_eq!(lib.pair_rules().len(), 121);
        assert_eq!(lib.n_types(), 300);
        assert_eq!(lib.noise_types().len(), 300 - 11 - 121);
    }

    #[test]
    fn causes_and_derivatives_are_disjoint() {
        let lib = RuleLibrary::generate(11, 121, 300, 7);
        let causes: Vec<AlarmType> = lib.rules().iter().map(|r| r.cause).collect();
        for r in lib.rules() {
            for d in &r.derivatives {
                assert!(!causes.contains(d), "derivative {d} is also a cause");
            }
        }
        // No derivative is shared between rules.
        let all: Vec<AlarmType> = lib
            .rules()
            .iter()
            .flat_map(|r| r.derivatives.clone())
            .collect();
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
    }

    #[test]
    fn every_rule_has_a_derivative() {
        let lib = RuleLibrary::generate(5, 9, 50, 2);
        assert!(lib.rules().iter().all(|r| !r.derivatives.is_empty()));
    }

    #[test]
    #[should_panic(expected = "type universe too small")]
    fn universe_check() {
        let _ = RuleLibrary::generate(10, 100, 50, 1);
    }
}
