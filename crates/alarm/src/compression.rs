//! Alarm compression (the AABD deployment use case, §VI-D): "alarm
//! compression is achieved by only showing `Low_signal` to the
//! maintenance workers when they appear simultaneously" — derivative
//! alarms are suppressed whenever their cause alarm is active on the
//! same or a linked device within the window.

use std::collections::{HashMap, HashSet};

use crate::miner::RankedPairs;
use crate::rules::{AlarmType, RuleLibrary};
use crate::simulator::AlarmEvent;
use crate::topology::TelecomTopology;

/// Result of compressing an alarm log with a rule list.
#[derive(Debug, Clone)]
pub struct CompressionReport {
    /// Alarms shown to the operator after suppression.
    pub kept: Vec<AlarmEvent>,
    /// Number of suppressed alarms.
    pub suppressed: usize,
    /// Fraction of the log suppressed (higher = stronger compression).
    pub compression_ratio: f64,
    /// Of the suppressed alarms, how many were *true* derivatives per
    /// the ground-truth library (only computable in simulation).
    pub correctly_suppressed: usize,
}

impl CompressionReport {
    /// Precision of suppression: correctly suppressed / suppressed.
    pub fn suppression_precision(&self) -> f64 {
        if self.suppressed == 0 {
            1.0
        } else {
            self.correctly_suppressed as f64 / self.suppressed as f64
        }
    }
}

/// Compresses the log using the `top_k` ranked rules: within each
/// window, a derivative alarm is suppressed when its cause is active on
/// the same device or a linked neighbour.
pub fn compress_log(
    topo: &TelecomTopology,
    events: &[AlarmEvent],
    rules: &RankedPairs,
    top_k: usize,
    window_ms: u64,
    truth: Option<&RuleLibrary>,
) -> CompressionReport {
    // derivative -> causes that suppress it.
    let mut suppressors: HashMap<AlarmType, Vec<AlarmType>> = HashMap::new();
    for r in rules.iter().take(top_k) {
        suppressors.entry(r.derivative).or_default().push(r.cause);
    }
    let valid: HashSet<(AlarmType, AlarmType)> = truth
        .map(|t| t.pair_rules().into_iter().collect())
        .unwrap_or_default();

    let mut kept = Vec::with_capacity(events.len());
    let mut suppressed = 0usize;
    let mut correctly_suppressed = 0usize;

    let mut i = 0usize;
    while i < events.len() {
        let w = events[i].time / window_ms;
        let mut j = i;
        while j < events.len() && events[j].time / window_ms == w {
            j += 1;
        }
        // Active alarm sets per device for this window.
        let mut per_device: HashMap<u32, HashSet<AlarmType>> = HashMap::new();
        for e in &events[i..j] {
            per_device.entry(e.device).or_default().insert(e.alarm);
        }
        for e in &events[i..j] {
            let cause_nearby = suppressors.get(&e.alarm).and_then(|causes| {
                let near_devices =
                    std::iter::once(e.device).chain(topo.neighbors(e.device).iter().copied());
                for d in near_devices {
                    if let Some(active) = per_device.get(&d) {
                        if let Some(&c) = causes.iter().find(|c| active.contains(c)) {
                            return Some(c);
                        }
                    }
                }
                None
            });
            match cause_nearby {
                Some(cause) => {
                    suppressed += 1;
                    if valid.contains(&(cause, e.alarm)) {
                        correctly_suppressed += 1;
                    }
                }
                None => kept.push(*e),
            }
        }
        i = j;
    }

    CompressionReport {
        suppressed,
        correctly_suppressed,
        compression_ratio: suppressed as f64 / events.len().max(1) as f64,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::cspm_rank;
    use crate::simulator::{simulate, SimConfig};

    fn scenario() -> (TelecomTopology, RuleLibrary, Vec<AlarmEvent>, u64) {
        let topo = TelecomTopology::generate(3, 8, 40, 5);
        let rules = RuleLibrary::generate(5, 12, 40, 6);
        let cfg = SimConfig {
            n_events: 4000,
            n_windows: 60,
            ..Default::default()
        };
        let events = simulate(&topo, &rules, &cfg);
        (topo, rules, events, cfg.window_ms)
    }

    #[test]
    fn cspm_rules_compress_most_derivative_traffic() {
        let (topo, rules, events, w) = scenario();
        let ranked = cspm_rank(&topo, &events, w);
        let report = compress_log(
            &topo,
            &events,
            &ranked,
            2 * rules.pair_rules().len(),
            w,
            Some(&rules),
        );
        // Derivative alarms are ~55%·(0.85·|derivs|/(1+0.85·|derivs|)) of
        // the log; a good rule list suppresses a large share of them.
        assert!(
            report.compression_ratio > 0.25,
            "only {:.3} compressed",
            report.compression_ratio
        );
        assert!(
            report.suppression_precision() > 0.7,
            "precision {:.3}",
            report.suppression_precision()
        );
        assert_eq!(report.kept.len() + report.suppressed, events.len());
    }

    #[test]
    fn empty_rule_list_compresses_nothing() {
        let (topo, _, events, w) = scenario();
        let report = compress_log(&topo, &events, &Vec::new(), 10, w, None);
        assert_eq!(report.suppressed, 0);
        assert_eq!(report.kept.len(), events.len());
        assert_eq!(report.suppression_precision(), 1.0);
    }

    #[test]
    fn more_rules_never_reduce_compression() {
        let (topo, rules, events, w) = scenario();
        let ranked = cspm_rank(&topo, &events, w);
        let r10 = compress_log(&topo, &events, &ranked, 10, w, Some(&rules));
        let r100 = compress_log(&topo, &events, &ranked, 100, w, Some(&rules));
        assert!(r100.suppressed >= r10.suppressed);
    }
}
