//! Rule ranking: the ACOR baseline, CSPM-based ranking, and the
//! coverage-ratio metric of Fig. 8.

use std::collections::{HashMap, HashSet};

use cspm_core::{cspm_partial, CspmConfig};

use crate::rules::AlarmType;
use crate::simulator::{build_window_graph, parse_alarm_attr, AlarmEvent};
use crate::topology::TelecomTopology;

/// A directed cause→derivative pair rule with its ranking score
/// (higher = ranked earlier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairRule {
    /// The inferred cause alarm.
    pub cause: AlarmType,
    /// The inferred derivative alarm.
    pub derivative: AlarmType,
    /// Ranking score (algorithm specific; only the order matters).
    pub score: f64,
}

/// A ranked rule list, best first.
pub type RankedPairs = Vec<PairRule>;

/// Windowed co-occurrence statistics: occurrence counts `n_A` over
/// `(window, device)` slots and nearby-co-occurrence counts `c_{A→B}`
/// (B at the same or a linked device within A's window). Shared by ACOR
/// (scores *and* direction) and by CSPM's direction resolution.
pub struct PairStats {
    n: HashMap<AlarmType, u32>,
    co: HashMap<(AlarmType, AlarmType), u32>,
}

impl PairStats {
    /// Scans the log once and accumulates the statistics.
    pub fn collect(topo: &TelecomTopology, events: &[AlarmEvent], window_ms: u64) -> Self {
        let mut n: HashMap<AlarmType, u32> = HashMap::new();
        let mut co: HashMap<(AlarmType, AlarmType), u32> = HashMap::new();
        let mut i = 0usize;
        while i < events.len() {
            let w = events[i].time / window_ms;
            let mut j = i;
            while j < events.len() && events[j].time / window_ms == w {
                j += 1;
            }
            let mut per_device: HashMap<u32, HashSet<AlarmType>> = HashMap::new();
            for e in &events[i..j] {
                per_device.entry(e.device).or_default().insert(e.alarm);
            }
            for (&d, alarms) in &per_device {
                // Alarm context: own device plus linked neighbours.
                let mut nearby: HashSet<AlarmType> = alarms.clone();
                for &nbr in topo.neighbors(d) {
                    if let Some(other) = per_device.get(&nbr) {
                        nearby.extend(other.iter().copied());
                    }
                }
                for &a in alarms {
                    *n.entry(a).or_insert(0) += 1;
                    for &b in &nearby {
                        if a != b {
                            *co.entry((a, b)).or_insert(0) += 1;
                        }
                    }
                }
            }
            i = j;
        }
        Self { n, co }
    }

    /// `P̂(b nearby | a)`.
    fn conditional(&self, a: AlarmType, b: AlarmType) -> f64 {
        let co = self.co.get(&(a, b)).copied().unwrap_or(0) as f64;
        let n = self.n.get(&a).copied().unwrap_or(0).max(1) as f64;
        co / n
    }

    /// Resolves the causal orientation of an unordered pair: the cause
    /// is the alarm that is more reliably present when the other fires.
    pub fn orient(&self, a: AlarmType, b: AlarmType) -> (AlarmType, AlarmType) {
        if self.conditional(b, a) >= self.conditional(a, b) {
            (a, b)
        } else {
            (b, a)
        }
    }
}

/// The ACOR baseline (Fournier-Viger et al., 2020): models the log as a
/// dynamic attributed graph and scores every alarm pair independently by
/// a correlation measure over windowed co-occurrences on the same or
/// adjacent devices. Direction: the alarm whose occurrences are more
/// often accompanied by the other is taken as the cause (importance).
pub fn acor_rank(topo: &TelecomTopology, events: &[AlarmEvent], window_ms: u64) -> RankedPairs {
    let stats = PairStats::collect(topo, events, window_ms);
    let (n, co) = (&stats.n, &stats.co);

    // One directed rule per unordered pair: direction by conditional
    // asymmetry, score by the cosine-style correlation.
    let mut out: RankedPairs = Vec::new();
    let mut seen: HashSet<(AlarmType, AlarmType)> = HashSet::new();
    for (&(a, b), &cab) in co {
        let key = (a.min(b), a.max(b));
        if !seen.insert(key) {
            continue;
        }
        let cba = co.get(&(b, a)).copied().unwrap_or(0);
        let (na, nb) = (n[&a] as f64, n[&b] as f64);
        let corr = (cab.max(cba) as f64) / (na * nb).sqrt();
        let (cause, derivative) = stats.orient(a, b);
        out.push(PairRule {
            cause,
            derivative,
            score: corr,
        });
    }
    out.sort_by(|l, r| {
        r.score
            .partial_cmp(&l.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (l.cause, l.derivative).cmp(&(r.cause, r.derivative)))
    });
    out
}

/// CSPM-based ranking (§VI-D): mines a-stars from the windowed dynamic
/// attributed graph (cause = core, derivatives = leaves) and splits each
/// a-star into pair rules, preserving the code-length ranking ("the
/// rankings and scores of all alarm rules are maintained").
///
/// Both orientations of a pair usually surface (adjacency is symmetric,
/// so the joint frequency is too); unordered pairs are deduplicated at
/// their best rank and the causal orientation is resolved by the same
/// conditional-asymmetry rule ACOR uses ([`PairStats::orient`]): the
/// cause is the alarm that is (nearly) always present when the other
/// fires. CSPM's contribution — the *ranking* — comes purely from the
/// MDL code lengths.
pub fn cspm_rank(topo: &TelecomTopology, events: &[AlarmEvent], window_ms: u64) -> RankedPairs {
    let wg = build_window_graph(topo, events, window_ms);
    let result = cspm_partial(&wg.graph, CspmConfig::default());
    let attrs = wg.graph.attrs();
    let stats = PairStats::collect(topo, events, window_ms);

    let mut out: RankedPairs = Vec::new();
    let mut seen: HashSet<(AlarmType, AlarmType)> = HashSet::new();
    // Model a-stars come sorted by ascending code length (best first).
    for mined in result.model.astars() {
        let cores: Vec<AlarmType> = mined
            .astar
            .coreset()
            .iter()
            .filter_map(|&a| parse_alarm_attr(attrs.name(a)?))
            .collect();
        for &core in &cores {
            for &leaf_attr in mined.astar.leafset() {
                let Some(name) = attrs.name(leaf_attr) else {
                    continue;
                };
                let Some(leaf) = parse_alarm_attr(name) else {
                    continue;
                };
                if leaf == core {
                    continue;
                }
                if seen.insert((core.min(leaf), core.max(leaf))) {
                    let (cause, derivative) = stats.orient(core, leaf);
                    out.push(PairRule {
                        cause,
                        derivative,
                        score: -mined.code_len,
                    });
                }
            }
        }
    }
    out
}

/// Coverage ratio (Fig. 8): `|A ∩ top-K(B)| / |A|` for each requested K,
/// where `A` is the valid rule set.
pub fn coverage_curve(
    valid: &[(AlarmType, AlarmType)],
    ranked: &RankedPairs,
    ks: &[usize],
) -> Vec<(usize, f64)> {
    let valid_set: HashSet<(AlarmType, AlarmType)> = valid.iter().copied().collect();
    let mut curve = Vec::with_capacity(ks.len());
    for &k in ks {
        let hits = ranked
            .iter()
            .take(k)
            .filter(|p| valid_set.contains(&(p.cause, p.derivative)))
            .count();
        curve.push((k, hits as f64 / valid_set.len().max(1) as f64));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleLibrary;
    use crate::simulator::{simulate, SimConfig};

    fn scenario() -> (TelecomTopology, RuleLibrary, Vec<AlarmEvent>, u64) {
        let topo = TelecomTopology::generate(3, 8, 40, 5);
        let rules = RuleLibrary::generate(5, 12, 40, 6);
        let cfg = SimConfig {
            n_events: 4000,
            n_windows: 60,
            ..Default::default()
        };
        let events = simulate(&topo, &rules, &cfg);
        (topo, rules, events, cfg.window_ms)
    }

    #[test]
    fn acor_recovers_most_valid_rules() {
        let (topo, rules, events, w) = scenario();
        let ranked = acor_rank(&topo, &events, w);
        let valid = rules.pair_rules();
        let curve = coverage_curve(&valid, &ranked, &[ranked.len()]);
        assert!(curve[0].1 >= 0.8, "ACOR final coverage {}", curve[0].1);
    }

    #[test]
    fn cspm_recovers_most_valid_rules() {
        let (topo, rules, events, w) = scenario();
        let ranked = cspm_rank(&topo, &events, w);
        let valid = rules.pair_rules();
        let curve = coverage_curve(&valid, &ranked, &[ranked.len()]);
        assert!(curve[0].1 >= 0.8, "CSPM final coverage {}", curve[0].1);
    }

    #[test]
    fn cspm_ranks_valid_rules_earlier_than_acor() {
        // The Fig. 8 claim, measured as area under the coverage curve.
        let (topo, rules, events, w) = scenario();
        let valid = rules.pair_rules();
        let ks: Vec<usize> = (1..=40).map(|i| i * 10).collect();
        let acor = coverage_curve(&valid, &acor_rank(&topo, &events, w), &ks);
        let cspm = coverage_curve(&valid, &cspm_rank(&topo, &events, w), &ks);
        let auc = |c: &[(usize, f64)]| c.iter().map(|&(_, v)| v).sum::<f64>();
        assert!(
            auc(&cspm) >= auc(&acor) * 0.95,
            "CSPM AUC {} vs ACOR AUC {}",
            auc(&cspm),
            auc(&acor)
        );
    }

    #[test]
    fn coverage_is_monotone_in_k() {
        let (topo, rules, events, w) = scenario();
        let ranked = acor_rank(&topo, &events, w);
        let curve = coverage_curve(&rules.pair_rules(), &ranked, &[5, 20, 50, 100, 200]);
        for pair in curve.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn coverage_handles_empty_inputs() {
        let curve = coverage_curve(&[], &Vec::new(), &[10]);
        assert_eq!(curve, vec![(10, 0.0)]);
    }
}
