//! Fault-propagation simulation and windowing into a dynamic attributed
//! graph.

use cspm_graph::{AttributedGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rules::{AlarmType, RuleLibrary};
use crate::topology::TelecomTopology;

/// One triggered alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlarmEvent {
    /// Device that raised the alarm.
    pub device: u32,
    /// Alarm type.
    pub alarm: AlarmType,
    /// Timestamp in milliseconds.
    pub time: u64,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Approximate number of events to generate.
    pub n_events: usize,
    /// Fraction of pure-noise events (unrelated alarm types at random
    /// devices).
    pub noise_fraction: f64,
    /// Probability that each derivative of a fired rule actually raises.
    pub derivative_prob: f64,
    /// Probability a derivative fires on a *neighbour* of the fault
    /// device rather than the device itself (faults propagate along
    /// links: a transmitter's `Low_signal` degrades the peer's link).
    pub neighbor_prob: f64,
    /// Analysis window length in milliseconds.
    pub window_ms: u64,
    /// Number of windows the log spans.
    pub n_windows: usize,
    /// Zipf exponent of the noise-type popularity distribution. `0.0`
    /// (default) = uniform noise, the regime of rule-dominated
    /// production logs like the paper's; larger values concentrate noise
    /// into chatty types whose sheer frequency erodes the advantage of
    /// joint-probability (MDL) ranking — see `ablation_noise_skew`.
    pub noise_zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            n_events: 200_000,
            noise_fraction: 0.3,
            derivative_prob: 0.85,
            neighbor_prob: 0.8,
            window_ms: 60_000,
            n_windows: 200,
            noise_zipf_exponent: 0.0,
            seed: 11,
        }
    }
}

/// Plays faults through the rule library over the topology, producing a
/// time-sorted alarm log.
pub fn simulate(topo: &TelecomTopology, rules: &RuleLibrary, cfg: &SimConfig) -> Vec<AlarmEvent> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let horizon = cfg.window_ms * cfg.n_windows as u64;
    let mut events: Vec<AlarmEvent> = Vec::with_capacity(cfg.n_events + 64);
    let noise_types = rules.noise_types();

    let rule_budget = ((1.0 - cfg.noise_fraction) * cfg.n_events as f64) as usize;
    while events.len() < rule_budget {
        // One incident: a fault at a random device triggers a random rule.
        let rule = &rules.rules()[rng.gen_range(0..rules.rules().len())];
        let device = rng.gen_range(0..topo.n_devices()) as u32;
        let t0 = rng.gen_range(0..horizon.saturating_sub(cfg.window_ms / 2).max(1));
        events.push(AlarmEvent {
            device,
            alarm: rule.cause,
            time: t0,
        });
        for &derivative in &rule.derivatives {
            if rng.gen::<f64>() >= cfg.derivative_prob {
                continue;
            }
            let nbrs = topo.neighbors(device);
            let target = if !nbrs.is_empty() && rng.gen::<f64>() < cfg.neighbor_prob {
                nbrs[rng.gen_range(0..nbrs.len())]
            } else {
                device
            };
            let jitter = rng.gen_range(0..cfg.window_ms / 4);
            events.push(AlarmEvent {
                device: target,
                alarm: derivative,
                time: t0 + jitter,
            });
        }
    }
    // Background noise. The type-popularity skew is configurable: with
    // exponent 0 every noise type is equally likely; with larger
    // exponents a few chatty types dominate (see `SimConfig`).
    let noise_budget = cfg.n_events.saturating_sub(events.len());
    for _ in 0..noise_budget {
        events.push(AlarmEvent {
            device: rng.gen_range(0..topo.n_devices()) as u32,
            alarm: noise_types
                [zipf_index(&mut rng, noise_types.len().max(1), cfg.noise_zipf_exponent)],
            time: rng.gen_range(0..horizon),
        });
    }
    events.sort_by_key(|e| e.time);
    events
}

/// Zipf-like index sampling by rejection (rank 0 most likely);
/// exponent 0 degenerates to uniform.
fn zipf_index(rng: &mut StdRng, n: usize, s: f64) -> usize {
    if s == 0.0 {
        return rng.gen_range(0..n);
    }
    loop {
        let k = rng.gen_range(0..n);
        if rng.gen::<f64>() < 1.0 / ((k + 1) as f64).powf(s) {
            return k;
        }
    }
}

/// The windowed dynamic attributed graph: the disjoint union of
/// per-window snapshots. A vertex is an *alarmed device within one
/// window*; its attribute values are the alarm-type names raised there;
/// edges connect alarmed devices that are linked in the topology (same
/// window only).
#[derive(Debug, Clone)]
pub struct WindowGraph {
    /// The union graph ready for CSPM.
    pub graph: AttributedGraph,
    /// Number of non-empty windows.
    pub n_windows: usize,
}

/// Alarm-type attribute name (`A17` for type 17).
pub fn alarm_attr_name(t: AlarmType) -> String {
    format!("A{t}")
}

/// Parses an attribute name back to its alarm type.
pub fn parse_alarm_attr(name: &str) -> Option<AlarmType> {
    name.strip_prefix('A')?.parse().ok()
}

/// Builds the windowed union graph from an alarm log.
pub fn build_window_graph(
    topo: &TelecomTopology,
    events: &[AlarmEvent],
    window_ms: u64,
) -> WindowGraph {
    use std::collections::HashMap;
    assert!(window_ms > 0);
    let mut b = GraphBuilder::new();
    let mut n_windows = 0usize;
    let mut i = 0usize;
    while i < events.len() {
        let w = events[i].time / window_ms;
        let mut j = i;
        while j < events.len() && events[j].time / window_ms == w {
            j += 1;
        }
        // Alarms per device in this window.
        let mut per_device: HashMap<u32, Vec<AlarmType>> = HashMap::new();
        for e in &events[i..j] {
            per_device.entry(e.device).or_default().push(e.alarm);
        }
        let mut ids: HashMap<u32, u32> = HashMap::new();
        let mut devices: Vec<u32> = per_device.keys().copied().collect();
        devices.sort_unstable();
        for d in devices {
            let alarms = &per_device[&d];
            let names: Vec<String> = alarms.iter().map(|&a| alarm_attr_name(a)).collect();
            let id = b.add_vertex(names.iter());
            ids.insert(d, id);
        }
        for (&d, &id) in &ids {
            for &nbr in topo.neighbors(d) {
                if nbr > d {
                    if let Some(&nid) = ids.get(&nbr) {
                        b.add_edge(id, nid).expect("fresh ids are valid");
                    }
                }
            }
        }
        n_windows += 1;
        i = j;
    }
    WindowGraph {
        graph: b.build_unchecked(),
        n_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (TelecomTopology, RuleLibrary, SimConfig) {
        let topo = TelecomTopology::generate(3, 8, 40, 5);
        let rules = RuleLibrary::generate(5, 12, 40, 6);
        let cfg = SimConfig {
            n_events: 3000,
            n_windows: 40,
            ..Default::default()
        };
        (topo, rules, cfg)
    }

    #[test]
    fn simulation_hits_budget_and_is_sorted() {
        let (topo, rules, cfg) = small();
        let events = simulate(&topo, &rules, &cfg);
        assert!(events.len() >= cfg.n_events);
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(events
            .iter()
            .all(|e| (e.device as usize) < topo.n_devices()));
    }

    #[test]
    fn derivatives_appear_near_causes() {
        let (topo, rules, cfg) = small();
        let events = simulate(&topo, &rules, &cfg);
        let rule = &rules.rules()[0];
        // For each cause occurrence, some derivative of the rule should
        // usually appear at the device or a neighbour within the window.
        let mut with_derivative = 0usize;
        let mut total = 0usize;
        for (k, e) in events.iter().enumerate() {
            if e.alarm != rule.cause {
                continue;
            }
            total += 1;
            let near: Vec<u32> = std::iter::once(e.device)
                .chain(topo.neighbors(e.device).iter().copied())
                .collect();
            let found = events[k..]
                .iter()
                .take_while(|f| f.time <= e.time + cfg.window_ms / 4)
                .any(|f| rule.derivatives.contains(&f.alarm) && near.contains(&f.device));
            with_derivative += usize::from(found);
        }
        assert!(total > 0);
        assert!(
            with_derivative as f64 > 0.6 * total as f64,
            "{with_derivative}/{total} causes followed by a derivative"
        );
    }

    #[test]
    fn window_graph_roundtrips_alarm_names() {
        assert_eq!(parse_alarm_attr(&alarm_attr_name(42)), Some(42));
        assert_eq!(parse_alarm_attr("x42"), None);
    }

    #[test]
    fn window_graph_structure() {
        let (topo, rules, cfg) = small();
        let events = simulate(&topo, &rules, &cfg);
        let wg = build_window_graph(&topo, &events, cfg.window_ms);
        assert!(wg.n_windows > 1);
        assert!(wg.graph.vertex_count() > 0);
        // Every vertex carries at least one alarm attribute.
        for v in wg.graph.vertices() {
            assert!(!wg.graph.labels(v).is_empty());
        }
        // Attribute universe is bounded by the alarm-type universe.
        assert!(wg.graph.attr_count() <= rules.n_types());
    }

    #[test]
    fn simulation_is_deterministic() {
        let (topo, rules, cfg) = small();
        assert_eq!(simulate(&topo, &rules, &cfg), simulate(&topo, &rules, &cfg));
    }
}
