//! Lock-free metrics for the CSPM stack.
//!
//! The daemon, the durable store and the mining engine all have hot
//! paths that must never contend on observability plumbing, so this
//! crate is built around one rule: **registration is the only locked
//! operation**. A [`MetricsRegistry`] hands out cheap cloneable handles
//! ([`Counter`], [`Gauge`], [`Histogram`]) whose update methods are
//! single relaxed atomic operations on pre-allocated cells — no global
//! lock, no allocation, no formatting on the hot path. Rendering walks
//! the registered cells and emits [Prometheus text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/).
//!
//! A registry can be **disabled** ([`MetricsRegistry::set_enabled`]):
//! every handle operation then reduces to one relaxed load and a
//! predicted branch, which is what backs the subsystem's near-zero
//! overhead guarantee (the merge-loop benches stay inside the existing
//! `bench_compare` gate with instrumentation compiled in — the engine
//! is only ever touched once per *run*, never per merge).
//!
//! Instrumented crates register their handles once against the
//! process-wide [`global()`] registry through a `OnceLock`-backed
//! static, so one `metrics` scrape sees engine, store and serve
//! families together.
//!
//! ```
//! use cspm_telemetry::{MetricsRegistry, TIME_BUCKETS};
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter_with(
//!     "cspm_serve_requests_total",
//!     "Requests dispatched, by op.",
//!     &[("op", "mine")],
//! );
//! let latency = registry.histogram(
//!     "cspm_serve_request_seconds",
//!     "Request wall time.",
//!     &TIME_BUCKETS,
//! );
//! requests.inc();
//! latency.observe(0.002);
//! let text = registry.render();
//! assert!(text.contains(r#"cspm_serve_requests_total{op="mine"} 1"#));
//! assert!(text.contains("# TYPE cspm_serve_request_seconds histogram"));
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Log-scale latency bucket upper bounds, in seconds: 1 µs doubling up
/// to ~33.5 s. One fixed grid serves every duration histogram in the
/// stack (fsync ~µs, request dispatch ~ms, whole mines ~s), which keeps
/// cross-family comparisons honest and the per-observation cost a short
/// branch-free scan.
pub const TIME_BUCKETS: [f64; 26] = [
    1e-6, 2e-6, 4e-6, 8e-6, 1.6e-5, 3.2e-5, 6.4e-5, 1.28e-4, 2.56e-4, 5.12e-4, 1.024e-3, 2.048e-3,
    4.096e-3, 8.192e-3, 1.6384e-2, 3.2768e-2, 6.5536e-2, 1.31072e-1, 2.62144e-1, 5.24288e-1,
    1.048576, 2.097152, 4.194304, 8.388608, 16.777216, 33.554432,
];

/// What a registered metric renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn type_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// The shared payload of a histogram handle: per-bucket counts plus a
/// running sum (f64 bits accumulated via CAS) and total count.
#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    /// One cell per bound plus the overflow (`+Inf`) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as `f64::to_bits`.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation: retry the CAS until no concurrent
        // observer raced us. Observations are rare relative to the loop
        // bodies they time, so contention here is negligible.
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// The value cell behind one registered metric.
#[derive(Debug)]
enum Cell {
    Scalar(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// One registered metric: family name + fixed labels + its cell.
#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    kind: Kind,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// A set of registered metrics with lock-free handles and a Prometheus
/// text renderer. See the [crate docs](self) for the design rules.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// A registry whose handles are no-ops until
    /// [`set_enabled`](Self::set_enabled)`(true)`.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Turns every handle minted by this registry on or off. Disabled
    /// handles cost one relaxed load per call.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether handle updates are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn register(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Cell {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let cell = match kind {
            Kind::Histogram => unreachable!("histograms register via register_histogram"),
            _ => Cell::Scalar(Arc::new(AtomicU64::new(0))),
        };
        self.push_entry(name, help, kind, labels, clone_cell(&cell));
        cell
    }

    fn push_entry(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)], cell: Cell) {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        debug_assert!(
            entries
                .iter()
                .filter(|e| e.name == name)
                .all(|e| e.kind == kind
                    && e.labels
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_str()))
                        .ne(labels.iter().copied())),
            "duplicate registration of {name:?} with identical labels"
        );
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            cell,
        });
    }

    /// Registers a monotone counter. Labels are fixed at registration
    /// (one handle per label combination — the hot path never formats).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// [`counter`](Self::counter) with fixed labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels) {
            Cell::Scalar(cell) => Counter {
                cell,
                enabled: Arc::clone(&self.enabled),
            },
            Cell::Histogram(_) => unreachable!(),
        }
    }

    /// Registers a gauge (a settable current value).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// [`gauge`](Self::gauge) with fixed labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels) {
            Cell::Scalar(cell) => Gauge {
                cell,
                enabled: Arc::clone(&self.enabled),
            },
            Cell::Histogram(_) => unreachable!(),
        }
    }

    /// Registers a fixed-bucket histogram; `bounds` are the bucket
    /// upper bounds in increasing order (see [`TIME_BUCKETS`]).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// [`histogram`](Self::histogram) with fixed labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let core = Arc::new(HistogramCore::new(bounds));
        self.push_entry(
            name,
            help,
            Kind::Histogram,
            labels,
            Cell::Histogram(Arc::clone(&core)),
        );
        Histogram {
            core,
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format. `# HELP`/`# TYPE` headers are emitted once per family
    /// (first registration wins); entries render in registration order.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if !seen.contains(&entry.name.as_str()) {
                seen.push(&entry.name);
                out.push_str("# HELP ");
                out.push_str(&entry.name);
                out.push(' ');
                out.push_str(&entry.help);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(&entry.name);
                out.push(' ');
                out.push_str(entry.kind.type_name());
                out.push('\n');
            }
            match &entry.cell {
                Cell::Scalar(cell) => {
                    push_sample(
                        &mut out,
                        &entry.name,
                        "",
                        &entry.labels,
                        None,
                        cell.load(Ordering::Relaxed) as f64,
                    );
                }
                Cell::Histogram(core) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in core.bounds.iter().enumerate() {
                        cumulative += core.buckets[i].load(Ordering::Relaxed);
                        push_sample(
                            &mut out,
                            &entry.name,
                            "_bucket",
                            &entry.labels,
                            Some(format_f64(*bound)),
                            cumulative as f64,
                        );
                    }
                    cumulative += core.buckets[core.bounds.len()].load(Ordering::Relaxed);
                    push_sample(
                        &mut out,
                        &entry.name,
                        "_bucket",
                        &entry.labels,
                        Some("+Inf".to_string()),
                        cumulative as f64,
                    );
                    push_sample(
                        &mut out,
                        &entry.name,
                        "_sum",
                        &entry.labels,
                        None,
                        core.sum(),
                    );
                    push_sample(
                        &mut out,
                        &entry.name,
                        "_count",
                        &entry.labels,
                        None,
                        core.count.load(Ordering::Relaxed) as f64,
                    );
                }
            }
        }
        out
    }
}

fn clone_cell(cell: &Cell) -> Cell {
    match cell {
        Cell::Scalar(c) => Cell::Scalar(Arc::clone(c)),
        Cell::Histogram(c) => Cell::Histogram(Arc::clone(c)),
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name grammar.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One exposition line: `name[suffix]{labels[,le]} value`.
fn push_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<String>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        if let Some(le) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            out.push_str(&le);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&format_f64(value));
    out.push('\n');
}

/// Shortest round-trip form; integral values print without a fraction,
/// which the exposition format allows for any sample.
fn format_f64(value: f64) -> String {
    format!("{value}")
}

fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable gauge handle (current value, not a rate).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.observe(value);
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.core.sum()
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`): the
    /// bound of the first bucket whose cumulative count reaches
    /// `q × count`. Returns `None` with no observations; observations
    /// past the last bound report that bound (the histogram cannot
    /// resolve further).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, bound) in self.core.bounds.iter().enumerate() {
            cumulative += self.core.buckets[i].load(Ordering::Relaxed);
            if cumulative >= rank {
                return Some(*bound);
            }
        }
        self.core.bounds.last().copied()
    }
}

/// The process-wide registry every instrumented crate registers
/// against; created enabled on first use. One `metrics` scrape of a
/// daemon renders engine, store and serve families from this registry
/// together.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = MetricsRegistry::new();
        let c = r.counter("t_total", "Things.");
        let g = r.gauge("t_current", "Level.");
        c.inc();
        c.add(4);
        g.set(17);
        g.set(9);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 9);
        let text = r.render();
        assert!(text.contains("# HELP t_total Things.\n# TYPE t_total counter\nt_total 5\n"));
        assert!(text.contains("# TYPE t_current gauge\nt_current 9\n"));
    }

    #[test]
    fn labelled_family_renders_one_header() {
        let r = MetricsRegistry::new();
        let a = r.counter_with("req_total", "Requests.", &[("op", "mine")]);
        let b = r.counter_with("req_total", "Requests.", &[("op", "open")]);
        a.add(2);
        b.add(3);
        let text = r.render();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains(r#"req_total{op="mine"} 2"#));
        assert!(text.contains(r#"req_total{op="open"} 3"#));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_seconds", "Latency.", &[0.001, 0.01, 0.1]);
        h.observe(0.0005); // bucket 0
        h.observe(0.005); // bucket 1
        h.observe(0.005); // bucket 1
        h.observe(5.0); // +Inf
        let text = r.render();
        assert!(text.contains(r#"lat_seconds_bucket{le="0.001"} 1"#));
        assert!(text.contains(r#"lat_seconds_bucket{le="0.01"} 3"#));
        assert!(text.contains(r#"lat_seconds_bucket{le="0.1"} 3"#));
        assert!(text.contains(r#"lat_seconds_bucket{le="+Inf"} 4"#));
        assert!(text.contains("lat_seconds_count 4"));
        assert!(text.contains("lat_seconds_sum 5.0105"));
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.0105).abs() < 1e-12);
    }

    #[test]
    fn quantiles_estimate_from_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("q_seconds", "Q.", &TIME_BUCKETS);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..99 {
            h.observe(0.002);
        }
        h.observe(1.5);
        // 0.002 falls in the le=0.002048 bucket; the single outlier only
        // surfaces at the very top of the distribution.
        assert_eq!(h.quantile(0.5), Some(0.002048));
        assert_eq!(h.quantile(0.99), Some(0.002048));
        assert_eq!(h.quantile(1.0), Some(2.097152));
    }

    #[test]
    fn oversized_observation_clamps_to_last_bound() {
        let r = MetricsRegistry::new();
        let h = r.histogram("big", "B.", &[1.0, 2.0]);
        h.observe(100.0);
        assert_eq!(h.quantile(0.5), Some(2.0));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("off_total", "Off.");
        let h = r.histogram("off_seconds", "Off.", &[1.0]);
        c.inc();
        h.observe(0.5);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        let c = r.counter_with("esc_total", "E.", &[("path", "a\"b\\c\nd")]);
        c.inc();
        assert!(r.render().contains(r#"esc_total{path="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = MetricsRegistry::new();
        let c = r.counter("mt_total", "MT.");
        let h = r.histogram("mt_seconds", "MT.", &TIME_BUCKETS);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        h.observe(0.001);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
        assert!((h.sum() - 40.0).abs() < 1e-6);
    }

    #[test]
    fn metric_name_grammar() {
        assert!(valid_metric_name("cspm_engine_runs_total"));
        assert!(valid_metric_name("_x:y"));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("bad-name"));
        assert!(!valid_metric_name(""));
    }

    #[test]
    fn global_registry_is_shared_and_enabled() {
        assert!(global().is_enabled());
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
    }
}
