//! Property-based tests of the linear-algebra substrate.

use cspm_nn::{Matrix, SparseMatrix};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Distributivity: A·(B + C) = A·B + A·C.
    #[test]
    fn matmul_distributes(a in arb_matrix(3, 3), b in arb_matrix(3, 2), c in arb_matrix(3, 2)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Sparse-dense product agrees with the densified product.
    #[test]
    fn spmm_matches_dense(x in arb_matrix(4, 3), mask in proptest::collection::vec(any::<bool>(), 8)) {
        // Build a random 2x4 sparse operator from the mask.
        let rows: Vec<Vec<(u32, f64)>> = (0..2)
            .map(|r| {
                (0..4)
                    .filter(|c| mask[r * 4 + c])
                    .map(|c| (c as u32, (r + c) as f64 + 0.5))
                    .collect()
            })
            .collect();
        let p = SparseMatrix::from_rows(4, &rows);
        // Densify.
        let mut dense = Matrix::zeros(2, 4);
        for r in 0..2 {
            for (c, v) in p.row(r) {
                dense.set(r, c as usize, v);
            }
        }
        let sparse_result = p.spmm(&x);
        let dense_result = dense.matmul(&x);
        for (a, b) in sparse_result.data().iter().zip(dense_result.data()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        // And the transposed product (reusing x's leading rows as input).
        let y = Matrix::from_vec(2, 3, x.data()[..6].to_vec());
        let t_sparse = p.spmm_transposed(&y);
        let t_dense = dense.transpose().matmul(&y);
        for (a, b) in t_sparse.data().iter().zip(t_dense.data()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Row-normalised adjacency rows sum to 1 (or are empty).
    #[test]
    fn normalized_rows_are_stochastic(edges in proptest::collection::vec((0u32..6, 0u32..6), 0..12)) {
        let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); 6];
        for (u, v) in edges {
            if u != v {
                nbrs[u as usize].push(v);
            }
        }
        let p = SparseMatrix::normalized_adjacency(&nbrs, 1.0);
        for r in 0..6 {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
