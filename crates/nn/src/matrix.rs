//! Dense row-major matrices.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialisation.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · other` (naive triple loop with row-major-friendly order).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Adds a row vector to every row (broadcast bias).
    pub fn add_row_broadcast(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = Matrix::xavier(4, 4, &mut r1);
        let b = Matrix::xavier(4, 4, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f64).sqrt();
        assert!(a.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 2.0, 2.0]);
        assert_eq!(a.hadamard(&b).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
