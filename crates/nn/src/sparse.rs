//! CSR sparse matrices for graph propagation operators.

use crate::matrix::Matrix;

/// A compressed-sparse-row matrix used as a propagation operator
/// (`P · X` products). Rows may be empty.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    n_rows: usize,
    n_cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds from per-row `(col, value)` lists.
    pub fn from_rows(n_cols: usize, rows: &[Vec<(u32, f64)>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in rows {
            for &(c, v) in r {
                assert!((c as usize) < n_cols, "column out of range");
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            n_rows: rows.len(),
            n_cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Identity operator.
    pub fn identity(n: usize) -> Self {
        let rows: Vec<Vec<(u32, f64)>> = (0..n).map(|i| vec![(i as u32, 1.0)]).collect();
        Self::from_rows(n, &rows)
    }

    /// Row-normalised adjacency `D⁻¹(A + sI)` from neighbour lists;
    /// `self_weight = s` adds weighted self-loops (GCN-style uses 1).
    pub fn normalized_adjacency(neighbors: &[Vec<u32>], self_weight: f64) -> Self {
        let n = neighbors.len();
        let rows: Vec<Vec<(u32, f64)>> = neighbors
            .iter()
            .enumerate()
            .map(|(i, nbrs)| {
                let deg = nbrs.len() as f64 + self_weight;
                if deg == 0.0 {
                    return Vec::new();
                }
                let mut row: Vec<(u32, f64)> = Vec::with_capacity(nbrs.len() + 1);
                if self_weight > 0.0 {
                    row.push((i as u32, self_weight / deg));
                }
                row.extend(nbrs.iter().map(|&u| (u, 1.0 / deg)));
                row
            })
            .collect();
        Self::from_rows(n, &rows)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entries of row `r` as `(col, value)` pairs.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// `self · dense`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.n_cols, dense.rows(), "inner dimensions must agree");
        let mut out = Matrix::zeros(self.n_rows, dense.cols());
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                let src = dense.row(c as usize);
                let dst = out.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        }
        out
    }

    /// `selfᵀ · dense` (needed for backprop through a propagation).
    pub fn spmm_transposed(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.n_rows, dense.rows(), "inner dimensions must agree");
        let mut out = Matrix::zeros(self.n_cols, dense.cols());
        for r in 0..self.n_rows {
            for (c, v) in self.row(r) {
                let src = dense.row(r);
                let dst = out.row_mut(c as usize);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spmm_is_noop() {
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = SparseMatrix::identity(3);
        assert_eq!(i.spmm(&x), x);
        assert_eq!(i.nnz(), 3);
    }

    #[test]
    fn normalized_adjacency_rows_sum_to_one() {
        let nbrs = vec![vec![1, 2], vec![0], vec![0]];
        let p = SparseMatrix::normalized_adjacency(&nbrs, 1.0);
        for r in 0..3 {
            let sum: f64 = p.row(r).map(|(_, v)| v).sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_aggregation_without_self_loop() {
        let nbrs = vec![vec![1, 2], vec![0], vec![0]];
        let p = SparseMatrix::normalized_adjacency(&nbrs, 0.0);
        let x = Matrix::from_vec(3, 1, vec![0.0, 2.0, 4.0]);
        let y = p.spmm(&x);
        assert!((y.get(0, 0) - 3.0).abs() < 1e-12); // mean of 2 and 4
    }

    #[test]
    fn transposed_product_matches_dense() {
        let p = SparseMatrix::from_rows(3, &[vec![(0, 1.0), (2, 2.0)], vec![(1, 3.0)]]);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // Dense Pᵀ: 3x2 = [[1,0],[0,3],[2,0]].
        let expected = Matrix::from_vec(3, 2, vec![1.0, 2.0, 9.0, 12.0, 2.0, 4.0]);
        assert_eq!(p.spmm_transposed(&x), expected);
    }

    #[test]
    fn empty_rows_are_allowed() {
        let p = SparseMatrix::from_rows(2, &[vec![], vec![(0, 1.0)]]);
        let x = Matrix::from_vec(2, 1, vec![5.0, 6.0]);
        let y = p.spmm(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert_eq!(y.get(1, 0), 5.0);
    }
}
