//! Minimal dense neural-network substrate for the completion baselines.
//!
//! Table IV of the paper compares CSPM-augmented variants of six node
//! attribute completion models (NeighAggre, VAE, GCN, GAT, GraphSage,
//! SAT). Rather than depending on an external ML framework, this crate
//! implements the little that those models need from scratch:
//!
//! * a dense row-major [`Matrix`] with the usual kernels;
//! * a CSR [`SparseMatrix`] for graph propagation operators (normalised
//!   adjacency, mean aggregation, attention weights);
//! * numerically-stable activations and binary-cross-entropy loss;
//! * the [`Adam`] optimiser;
//! * a [`TwoLayerNet`]: `Y = σ(P₂·ρ(P₁·X·W₁+b₁)·W₂+b₂)` with optional
//!   propagation `P` per layer — the shared skeleton of GCN-family
//!   models, trained by exact backpropagation.
//!
//! Gradients are verified against finite differences in the test suite.

mod adam;
mod matrix;
mod net;
mod sparse;

pub use adam::Adam;
pub use matrix::Matrix;
pub use net::{NetConfig, TwoLayerNet};
pub use sparse::SparseMatrix;

/// Elementwise logistic function, numerically stable for large |x|.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f64) -> f64 {
    x.max(0.0)
}

/// Mean binary cross-entropy between probabilities `p` and 0/1 targets
/// `t`, clamped away from log(0).
pub fn bce_loss(p: &[f64], t: &[f64]) -> f64 {
    assert_eq!(p.len(), t.len());
    let eps = 1e-12;
    let sum: f64 = p
        .iter()
        .zip(t)
        .map(|(&p, &t)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum();
    sum / p.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bce_is_zero_for_perfect_prediction() {
        let t = [1.0, 0.0, 1.0];
        assert!(bce_loss(&t, &t) < 1e-9);
        assert!(bce_loss(&[0.5, 0.5, 0.5], &t) > 0.5);
    }

    #[test]
    fn relu_clips_negatives() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(2.0), 2.0);
    }
}
