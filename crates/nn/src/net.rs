//! Two-layer propagation network — the shared skeleton of the
//! completion baselines.
//!
//! Forward pass:
//!
//! ```text
//! H = ρ(P₁·X·W₁ + b₁)        ρ = ReLU
//! Y = σ(P₂·H·W₂ + b₂)        σ = logistic
//! ```
//!
//! `P₁`/`P₂` are optional sparse propagation operators; identity when
//! absent. Trained with masked binary cross-entropy (only rows flagged in
//! the training mask contribute) and Adam, using exact backpropagation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::matrix::Matrix;
use crate::sigmoid;
use crate::sparse::SparseMatrix;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs (full-batch).
    pub epochs: usize,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            epochs: 120,
            seed: 17,
        }
    }
}

/// The two-layer network with its parameters.
#[derive(Debug, Clone)]
pub struct TwoLayerNet {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
}

impl TwoLayerNet {
    /// Fresh Xavier-initialised network.
    pub fn new(in_dim: usize, hidden: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            w1: Matrix::xavier(in_dim, hidden, &mut rng),
            b1: vec![0.0; hidden],
            w2: Matrix::xavier(hidden, out_dim, &mut rng),
            b2: vec![0.0; out_dim],
        }
    }

    fn apply_prop<'a>(p: Option<&SparseMatrix>, x: &'a Matrix) -> std::borrow::Cow<'a, Matrix> {
        match p {
            Some(p) => std::borrow::Cow::Owned(p.spmm(x)),
            None => std::borrow::Cow::Borrowed(x),
        }
    }

    /// Forward pass returning output probabilities.
    pub fn forward(
        &self,
        x: &Matrix,
        p1: Option<&SparseMatrix>,
        p2: Option<&SparseMatrix>,
    ) -> Matrix {
        let (_, _, y) = self.forward_cached(x, p1, p2);
        y
    }

    /// Forward pass keeping the intermediates needed by backprop:
    /// `(P₁X, H, Y)`.
    fn forward_cached(
        &self,
        x: &Matrix,
        p1: Option<&SparseMatrix>,
        p2: Option<&SparseMatrix>,
    ) -> (Matrix, Matrix, Matrix) {
        let px = Self::apply_prop(p1, x).into_owned();
        let mut hpre = px.matmul(&self.w1);
        hpre.add_row_broadcast(&self.b1);
        let h = hpre.map(crate::relu);
        let ph = Self::apply_prop(p2, &h).into_owned();
        let mut ypre = ph.matmul(&self.w2);
        ypre.add_row_broadcast(&self.b2);
        let y = ypre.map(sigmoid);
        (px, h, y)
    }

    /// Masked mean BCE loss of the current parameters.
    pub fn loss(
        &self,
        x: &Matrix,
        targets: &Matrix,
        mask: &[bool],
        p1: Option<&SparseMatrix>,
        p2: Option<&SparseMatrix>,
    ) -> f64 {
        let y = self.forward(x, p1, p2);
        masked_bce(&y, targets, mask)
    }

    /// Trains with full-batch Adam; returns the per-epoch loss trace.
    pub fn fit(
        &mut self,
        x: &Matrix,
        targets: &Matrix,
        mask: &[bool],
        p1: Option<&SparseMatrix>,
        p2: Option<&SparseMatrix>,
        cfg: &NetConfig,
    ) -> Vec<f64> {
        assert_eq!(mask.len(), x.rows());
        let n_masked = mask.iter().filter(|&&m| m).count().max(1);
        let denom = (n_masked * targets.cols()) as f64;
        let mut opt_w1 = Adam::new(self.w1.data().len(), cfg.lr);
        let mut opt_b1 = Adam::new(self.b1.len(), cfg.lr);
        let mut opt_w2 = Adam::new(self.w2.data().len(), cfg.lr);
        let mut opt_b2 = Adam::new(self.b2.len(), cfg.lr);
        let mut trace = Vec::with_capacity(cfg.epochs);

        for _ in 0..cfg.epochs {
            let (px, h, y) = self.forward_cached(x, p1, p2);
            trace.push(masked_bce(&y, targets, mask));

            // dL/dY_pre = (Y − T) masked, / (|mask|·C).
            let mut g2 = Matrix::zeros(y.rows(), y.cols());
            #[allow(clippy::needless_range_loop)] // r indexes y, targets and g2 jointly
            for r in 0..y.rows() {
                if !mask[r] {
                    continue;
                }
                let (yr, tr) = (y.row(r), targets.row(r));
                let gr = g2.row_mut(r);
                for c in 0..yr.len() {
                    gr[c] = (yr[c] - tr[c]) / denom;
                }
            }
            let ph = Self::apply_prop(p2, &h).into_owned();
            let dw2 = ph.transpose().matmul(&g2);
            let db2 = g2.col_sums();
            // dH = P₂ᵀ(G₂·W₂ᵀ), gated by ReLU'.
            let gh = g2.matmul(&self.w2.transpose());
            let gh = match p2 {
                Some(p) => p.spmm_transposed(&gh),
                None => gh,
            };
            let dhpre = gh.hadamard(&h.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
            let dw1 = px.transpose().matmul(&dhpre);
            let db1 = dhpre.col_sums();

            opt_w1.step(self.w1.data_mut(), dw1.data());
            opt_b1.step(&mut self.b1, &db1);
            opt_w2.step(self.w2.data_mut(), dw2.data());
            opt_b2.step(&mut self.b2, &db2);
        }
        trace
    }
}

fn masked_bce(y: &Matrix, targets: &Matrix, mask: &[bool]) -> f64 {
    let eps = 1e-12;
    let mut sum = 0.0;
    let mut n = 0usize;
    #[allow(clippy::needless_range_loop)] // r indexes y, targets and mask jointly
    for r in 0..y.rows() {
        if !mask[r] {
            continue;
        }
        n += 1;
        for (p, t) in y.row(r).iter().zip(targets.row(r)) {
            let p = p.clamp(eps, 1.0 - eps);
            sum -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / (n * y.cols()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_problem() -> (Matrix, Matrix, Vec<bool>) {
        // 4 samples, 3 features, learn identity-ish mapping to 2 outputs.
        let x = Matrix::from_vec(
            4,
            3,
            vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0],
        );
        let t = Matrix::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        (x, t, vec![true; 4])
    }

    #[test]
    fn training_reduces_loss() {
        let (x, t, mask) = toy_problem();
        let mut net = TwoLayerNet::new(3, 8, 2, 1);
        let trace = net.fit(
            &x,
            &t,
            &mask,
            None,
            None,
            &NetConfig {
                epochs: 200,
                ..Default::default()
            },
        );
        assert!(
            trace[trace.len() - 1] < trace[0] * 0.5,
            "trace {:?}",
            (&trace[0], &trace[trace.len() - 1])
        );
    }

    #[test]
    fn masked_rows_do_not_train() {
        let (x, t, _) = toy_problem();
        let mask = vec![true, true, false, false];
        let mut net = TwoLayerNet::new(3, 8, 2, 1);
        net.fit(
            &x,
            &t,
            &mask,
            None,
            None,
            &NetConfig {
                epochs: 50,
                ..Default::default()
            },
        );
        // Loss on the masked rows only is not optimised, so the trained
        // loss on observed rows should be lower.
        let observed = net.loss(&x, &t, &mask, None, None);
        let hidden = net.loss(&x, &t, &[false, false, true, true], None, None);
        assert!(observed < hidden);
    }

    /// Finite-difference verification of the analytic gradients, with and
    /// without a propagation operator.
    #[test]
    fn gradients_match_finite_differences() {
        let (x, t, mask) = toy_problem();
        let p =
            SparseMatrix::normalized_adjacency(&[vec![1], vec![0, 2], vec![1, 3], vec![2]], 1.0);
        for prop in [None, Some(&p)] {
            let mut net = TwoLayerNet::new(3, 4, 2, 2);
            // One analytic step with tiny lr; compare direction against
            // numeric gradient of a single parameter.
            let base_loss = net.loss(&x, &t, &mask, prop, prop);
            let eps = 1e-6;
            // Numeric dL/dw1[0].
            let orig = net.w1.get(0, 0);
            net.w1.set(0, 0, orig + eps);
            let plus = net.loss(&x, &t, &mask, prop, prop);
            net.w1.set(0, 0, orig - eps);
            let minus = net.loss(&x, &t, &mask, prop, prop);
            net.w1.set(0, 0, orig);
            let numeric = (plus - minus) / (2.0 * eps);

            // Analytic gradient via one fit step with lr≈0 is awkward;
            // instead recompute the same quantities the trainer uses.
            let n_masked = mask.iter().filter(|&&m| m).count();
            let denom = (n_masked * t.cols()) as f64;
            let (px, h, y) = net.forward_cached(&x, prop, prop);
            let mut g2 = Matrix::zeros(y.rows(), y.cols());
            #[allow(clippy::needless_range_loop)] // r indexes y, targets and g2 jointly
            for r in 0..y.rows() {
                for c in 0..y.cols() {
                    g2.set(r, c, (y.get(r, c) - t.get(r, c)) / denom);
                }
            }
            let gh = g2.matmul(&net.w2.transpose());
            let gh = match prop {
                Some(p) => p.spmm_transposed(&gh),
                None => gh,
            };
            let dhpre = gh.hadamard(&h.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
            let dw1 = px.transpose().matmul(&dhpre);
            let analytic = dw1.get(0, 0);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "numeric {numeric} vs analytic {analytic} (prop={})",
                prop.is_some()
            );
            let _ = base_loss;
        }
    }
}
