//! The Adam optimiser (Kingma & Ba, 2015).

/// Adam state for one flat parameter buffer.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimiser for `n` parameters with learning rate `lr`
    /// and the standard betas (0.9, 0.999).
    pub fn new(n: usize, lr: f64) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one update step: `params -= lr · m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(x) = (x-3)², f'(x) = 2(x-3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[5.0]);
        // Adam's first step is ≈ lr regardless of gradient magnitude.
        assert!((x[0] + 0.01).abs() < 1e-6);
    }
}
