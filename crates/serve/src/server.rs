//! The daemon: Unix-socket listener, connection loop, and the
//! multi-tenant dispatch behind `cspm serve`.
//!
//! One thread per connection reads request lines (bounded by
//! [`MAX_FRAME`] even mid-line, so a hostile client cannot balloon the
//! process) and answers one response line each. Mining runs on a shared
//! [`WorkerPool`] sized by `--threads` — connections are cheap, CPU is
//! the bounded resource — with per-request deadlines enforced through
//! the engine's own [`ProgressObserver`] cancellation: an expired
//! deadline answers `deadline_exceeded` and leaves the tenant's warm
//! state untouched (mining always works on a clone of the pristine
//! database).
//!
//! Tenants live in a [`SessionRegistry`] behind one mutex; each tenant
//! is its own `Arc<Mutex<Tenant>>`, so the registry lock is held only
//! for lookups while a mine holds just its tenant. With `--store-dir`
//! every tenant is a [`DurableSession`] checkpointed at
//! `<store-dir>/<name>.csps`; the memory budget then degrades gracefully
//! — under pressure the registry first compacts fragmented arenas, then
//! evicts idle tenants LRU-first, checkpointing durable ones so the
//! next `open` is a warm restore instead of a cold rebuild.
//!
//! Shutdown (SIGTERM/SIGINT via [`Server::run_until_signalled`], an
//! in-band `shutdown` op, or [`Server::stop`]) drains: the accept
//! loop stops, connection threads notice within their read-poll
//! interval, every durable tenant is checkpointed, and the socket file
//! is removed.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::ops::ControlFlow;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cspm_core::pool::WorkerPool;
use cspm_core::registry::{ResidentFootprint, SessionRegistry};
use cspm_core::{CspmResult, IterationStat, Miner, MiningSession, ProgressObserver, SessionError};
use cspm_graph::dynamic::GraphDelta;
use cspm_graph::{read_graph, AttributedGraph};
use cspm_store::{Durable, DurableError, DurableSession};

use crate::jsonfmt::Json;
use crate::metrics::serve_metrics;
use crate::proto::{parse_request, ErrorCode, ProtoError, Request, MAX_FRAME};

/// How often blocked reads and the accept loop re-check the shutdown
/// flag. Bounds both shutdown latency and idle wakeup rate.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Configuration for one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix-socket path to listen on (created at bind, removed at
    /// shutdown; a stale file from a dead daemon is replaced).
    pub socket: PathBuf,
    /// When set, every tenant is durable: checkpointed at
    /// `<store_dir>/<name>.csps`, warm-openable after eviction/restart.
    pub store_dir: Option<PathBuf>,
    /// Worker-pool size for mining requests (`0` = 1). Engine-internal
    /// scoring stays single-threaded per run — across-tenant
    /// parallelism is what a daemon wants on shared hardware.
    pub threads: usize,
    /// Resident-memory budget in bytes; exceeded → compact, then evict
    /// idle tenants LRU-first. `None` = unbounded.
    pub mem_budget: Option<usize>,
    /// Fragmentation ratio above which budget pressure compacts a
    /// session's arena before considering eviction.
    pub compact_above: f64,
}

impl ServerConfig {
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            store_dir: None,
            threads: 1,
            mem_budget: None,
            compact_above: 2.0,
        }
    }
}

/// One resident tenant: an in-memory session, or a durable one bound to
/// its checkpoint file under `--store-dir`.
enum Tenant {
    Mem(Box<MiningSession>),
    Durable(Box<DurableSession>),
}

impl Tenant {
    fn session(&self) -> &MiningSession {
        match self {
            Tenant::Mem(s) => s,
            Tenant::Durable(d) => d.session(),
        }
    }

    fn is_durable(&self) -> bool {
        matches!(self, Tenant::Durable(_))
    }

    fn load(&mut self, g: &AttributedGraph) -> Result<(), ProtoError> {
        match self {
            Tenant::Mem(s) => {
                s.load(g);
                Ok(())
            }
            Tenant::Durable(d) => d.load(g).map_err(durable_err),
        }
    }

    fn stage_delta(&mut self, delta: &GraphDelta) -> Result<cspm_core::DeltaStats, ProtoError> {
        match self {
            Tenant::Mem(s) => s.stage_delta(delta).map_err(session_err),
            Tenant::Durable(d) => d.stage_delta(delta).map_err(durable_err),
        }
    }

    fn run_with(&mut self, obs: &mut dyn ProgressObserver) -> Result<CspmResult, ProtoError> {
        match self {
            Tenant::Mem(s) => s.run_with(obs).map_err(session_err),
            Tenant::Durable(d) => d.run_with(obs).map_err(durable_err),
        }
    }

    /// Checkpoints a durable tenant; `Ok(false)` for in-memory ones.
    fn checkpoint(&mut self) -> Result<bool, ProtoError> {
        match self {
            Tenant::Mem(_) => Ok(false),
            Tenant::Durable(d) => d.checkpoint().map(|()| true).map_err(durable_err),
        }
    }
}

impl ResidentFootprint for Tenant {
    fn approx_bytes(&self) -> usize {
        self.session().approx_bytes()
    }

    fn fragmentation(&self) -> f64 {
        self.session().fragmentation()
    }

    fn compact(&mut self) {
        match self {
            Tenant::Mem(s) => s.compact_now(),
            Tenant::Durable(d) => d.compact_now(),
        }
    }
}

fn session_err(e: SessionError) -> ProtoError {
    match e {
        SessionError::Empty | SessionError::NoGraph => ProtoError::new(
            ErrorCode::Internal,
            format!("session in unexpected state: {e}"),
        ),
        SessionError::Delta { index, source } => ProtoError::new(
            ErrorCode::BadDelta,
            format!("delta {index} does not apply: {source}"),
        ),
    }
}

fn durable_err(e: DurableError) -> ProtoError {
    match e {
        DurableError::Session(e) => session_err(e),
        DurableError::Store(e) => ProtoError::new(ErrorCode::Store, e.to_string()),
    }
}

/// Request counters exposed by the daemon-wide `stats` op.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    errors: AtomicU64,
    opens: AtomicU64,
    deltas: AtomicU64,
    mines: AtomicU64,
    subscribes: AtomicU64,
    deadline_hits: AtomicU64,
    evictions: AtomicU64,
    pressure_compactions: AtomicU64,
}

impl Counters {
    fn bump(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by every connection thread.
struct Shared {
    registry: Mutex<SessionRegistry<Tenant>>,
    pool: WorkerPool,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Counters,
}

impl Shared {
    fn miner(&self) -> Miner {
        // One scoring thread per run: the pool provides across-tenant
        // parallelism, and nested fan-out would oversubscribe the host.
        Miner::new().threads(1)
    }

    fn store_path(&self, name: &str) -> Option<PathBuf> {
        self.config
            .store_dir
            .as_ref()
            .map(|dir| dir.join(format!("{name}.csps")))
    }

    /// A fresh tenant for `name`: durable when a store dir is
    /// configured, plain otherwise.
    fn new_tenant(&self, name: &str) -> Result<Tenant, ProtoError> {
        match self.store_path(name) {
            Some(path) => {
                let ds = self.miner().durable(&path).map_err(|e| {
                    ProtoError::new(ErrorCode::Store, format!("open {}: {e}", path.display()))
                })?;
                Ok(Tenant::Durable(Box::new(ds)))
            }
            None => Ok(Tenant::Mem(Box::new(self.miner().build()))),
        }
    }

    /// Applies the memory budget after a mutating request. Durable
    /// tenants checkpoint before eviction (and veto it if the
    /// checkpoint fails — dropping un-persisted state would lose data).
    fn enforce_budget(&self) {
        let Some(budget) = self.config.mem_budget else {
            return;
        };
        let mut registry = lock_registry(&self.registry);
        let outcome = registry.enforce_budget(budget, self.config.compact_above, |name, t| {
            t.checkpoint()
                .map_err(|e| {
                    eprintln!("cspm serve: keeping {name:?} resident, checkpoint failed: {e}");
                })
                .is_ok()
        });
        let m = serve_metrics();
        for _ in &outcome.evicted {
            self.counters.bump(&self.counters.evictions);
            m.evictions.inc();
        }
        for _ in &outcome.compacted {
            self.counters.bump(&self.counters.pressure_compactions);
            m.pressure_compactions.inc();
        }
    }
}

/// Locks a mutex, recovering from poisoning: a panicked mining job must
/// not wedge every later request for that tenant (or the registry).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn lock_registry(m: &Mutex<SessionRegistry<Tenant>>) -> MutexGuard<'_, SessionRegistry<Tenant>> {
    let started = Instant::now();
    let guard = lock(m);
    serve_metrics()
        .lock_wait_seconds
        .observe(started.elapsed().as_secs_f64());
    guard
}

/// Cancels mining when the request deadline passes.
struct DeadlineObserver {
    deadline: Option<Instant>,
    hit: bool,
}

impl ProgressObserver for DeadlineObserver {
    fn on_iteration(&mut self, _stat: &IterationStat) -> ControlFlow<()> {
        match self.deadline {
            Some(at) if Instant::now() >= at => {
                self.hit = true;
                ControlFlow::Break(())
            }
            _ => ControlFlow::Continue(()),
        }
    }
}

/// A running daemon spawned in-process (tests, benches, `cspm serve`
/// uses the blocking entry point). Stops and joins on drop.
pub struct Server {
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<io::Result<()>>>,
    socket: PathBuf,
}

impl Server {
    /// Binds the socket and serves on a background thread. The socket
    /// is ready for connections when this returns.
    pub fn spawn(config: ServerConfig) -> io::Result<Server> {
        let listener = bind_socket(&config.socket)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let socket = config.socket.clone();
        let flag = Arc::clone(&shutdown);
        let thread = std::thread::Builder::new()
            .name("cspm-serve".into())
            .spawn(move || serve_on(listener, config, flag))?;
        Ok(Server {
            shutdown,
            thread: Some(thread),
            socket,
        })
    }

    /// Binds and serves on the calling thread until SIGTERM/SIGINT (or
    /// an in-band `shutdown` request). This is `cspm serve`.
    pub fn run_until_signalled(config: ServerConfig) -> io::Result<()> {
        let listener = bind_socket(&config.socket)?;
        let shutdown = signal_flag();
        install_signal_handlers();
        serve_on(listener, config, shutdown)
    }

    /// The socket path this daemon is serving.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Signals shutdown and waits for the daemon to drain.
    pub fn stop(mut self) -> io::Result<()> {
        self.shutdown.store(true, Ordering::SeqCst);
        match self.thread.take() {
            Some(t) => t
                .join()
                .map_err(|_| io::Error::other("server thread panicked"))?,
            None => Ok(()),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Process-global shutdown flag for the signal handler (handlers can
/// only touch statics, and an atomic store is async-signal-safe).
fn signal_flag() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))))
}

extern "C" fn on_signal(_signum: i32) {
    signal_flag().store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // std links libc; declaring `signal` directly avoids a dependency
    // the offline build cannot add. BSD semantics (glibc default) keep
    // the handler installed across deliveries.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Binds `path`, replacing a stale socket file left by a dead daemon
/// (stale = connecting to it is refused). A *live* daemon on the same
/// path is an error — two listeners would split the tenant space.
fn bind_socket(path: &Path) -> io::Result<UnixListener> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    ErrorKind::AddrInUse,
                    format!("a daemon is already serving on {}", path.display()),
                ));
            }
            Err(_) => std::fs::remove_file(path)?,
        }
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// The accept loop: runs until `shutdown`, then drains connections,
/// checkpoints durable tenants, and removes the socket file.
fn serve_on(
    listener: UnixListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
) -> io::Result<()> {
    if let Some(dir) = &config.store_dir {
        std::fs::create_dir_all(dir)?;
    }
    let socket_path = config.socket.clone();
    let shared = Arc::new(Shared {
        registry: Mutex::new(SessionRegistry::new()),
        pool: WorkerPool::new(config.threads),
        shutdown: Arc::clone(&shutdown),
        config,
        counters: Counters::default(),
    });

    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("cspm-serve-conn".into())
                    .spawn(move || handle_connection(shared, stream))?;
                connections.push(handle);
                connections.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
                connections.retain(|c| !c.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => {
                // Accept failures are transient (per-connection), not
                // fatal to the daemon; don't tear down every tenant
                // because one handshake failed.
                eprintln!("cspm serve: accept failed: {e}");
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }

    for c in connections {
        let _ = c.join();
    }
    // Final drain: persist what can be persisted. A failed checkpoint
    // is reported, not fatal — the WAL already holds staged deltas.
    let mut registry = lock_registry(&shared.registry);
    for name in registry.names() {
        if let Some(handle) = registry.remove(&name) {
            if let Err(e) = lock(&handle).checkpoint() {
                eprintln!("cspm serve: final checkpoint of {name:?} failed: {e}");
            }
        }
    }
    drop(registry);
    let _ = std::fs::remove_file(&socket_path);
    Ok(())
}

/// Outcome of one capped line read.
enum LineOutcome {
    Line(String),
    /// The line exceeded [`MAX_FRAME`]; it was drained off the stream
    /// (bounded memory) and the connection stays usable.
    Oversized,
    /// Read timed out — poll the shutdown flag and come back.
    Poll,
    Eof,
}

/// Newline-delimited reader with a hard per-line byte cap, tolerant of
/// read timeouts (partial lines accumulate across polls).
struct LineReader<R> {
    inner: R,
    buf: Vec<u8>,
    overflowed: bool,
}

impl<R: BufRead> LineReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            overflowed: false,
        }
    }

    fn next_line(&mut self, cap: usize) -> io::Result<LineOutcome> {
        loop {
            let available = match self.inner.fill_buf() {
                Ok(b) => b,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(LineOutcome::Poll);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF. A pending unterminated line still counts.
                if self.overflowed {
                    self.overflowed = false;
                    return Ok(LineOutcome::Oversized);
                }
                if self.buf.is_empty() {
                    return Ok(LineOutcome::Eof);
                }
                return Ok(LineOutcome::Line(self.take_line()));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if !self.overflowed && self.buf.len() + i <= cap {
                        self.buf.extend_from_slice(&available[..i]);
                        self.inner.consume(i + 1);
                        return Ok(LineOutcome::Line(self.take_line()));
                    }
                    self.inner.consume(i + 1);
                    self.buf.clear();
                    self.overflowed = false;
                    return Ok(LineOutcome::Oversized);
                }
                None => {
                    let n = available.len();
                    if !self.overflowed {
                        if self.buf.len() + n > cap {
                            // Stop buffering, start draining: memory
                            // stays bounded no matter how long the
                            // line runs.
                            self.buf.clear();
                            self.overflowed = true;
                        } else {
                            self.buf.extend_from_slice(available);
                        }
                    }
                    self.inner.consume(n);
                }
            }
        }
    }

    fn take_line(&mut self) -> String {
        if self.buf.last() == Some(&b'\r') {
            self.buf.pop();
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        line
    }
}

fn handle_connection(shared: Arc<Shared>, stream: UnixStream) {
    // Short read timeouts let the loop poll the shutdown flag; writes
    // get a generous cap so one stuck client cannot pin the thread.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = LineReader::new(BufReader::new(read_half));
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let outcome = match reader.next_line(MAX_FRAME) {
            Ok(o) => o,
            Err(_) => return,
        };
        let response = match outcome {
            LineOutcome::Poll => continue,
            LineOutcome::Eof => return,
            LineOutcome::Oversized => {
                shared.counters.bump(&shared.counters.errors);
                ProtoError::new(
                    ErrorCode::OversizedFrame,
                    format!("request line exceeds {MAX_FRAME} bytes"),
                )
                .to_line()
            }
            LineOutcome::Line(line) if line.trim().is_empty() => continue,
            LineOutcome::Line(line) => {
                shared.counters.bump(&shared.counters.requests);
                match dispatch_on(&shared, &line, &mut writer) {
                    Ok(Dispatched::Respond(resp)) => resp,
                    // The subscribe handler wrote its whole exchange
                    // already; a write error there closes the
                    // connection just like one here would.
                    Ok(Dispatched::Streamed(Ok(()))) => continue,
                    Ok(Dispatched::Streamed(Err(_))) => return,
                    Err(e) => {
                        shared.counters.bump(&shared.counters.errors);
                        serve_metrics().errors.inc();
                        e.to_line()
                    }
                }
            }
        };
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// One complete response line plus trailing newline and flush.
fn write_line(w: &mut UnixStream, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// What one dispatched request produced.
enum Dispatched {
    /// A complete response line for the caller to write.
    Respond(String),
    /// A streaming op wrote everything itself; the payload is whether
    /// the connection is still usable.
    Streamed(io::Result<()>),
}

/// Parses and executes one request line; `Ok` is the dispatch outcome,
/// `Err` becomes a typed error line. Never panics on any input —
/// connection threads have no one to report a panic to. The connection
/// writer is passed through so streaming ops (`subscribe`) can answer
/// with more than one line.
fn dispatch_on(
    shared: &Arc<Shared>,
    line: &str,
    writer: &mut UnixStream,
) -> Result<Dispatched, ProtoError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(ProtoError::new(
            ErrorCode::ShuttingDown,
            "daemon is draining",
        ));
    }
    let req = parse_request(line)?;
    let op = serve_metrics().op(req.op_name());
    op.requests.inc();
    let started = Instant::now();
    let res = match req {
        Request::Ping => Ok(Dispatched::Respond(simple_ok("ping"))),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Ok(Dispatched::Respond(simple_ok("shutdown")))
        }
        Request::Open { session, graph } => {
            do_open(shared, &session, graph.as_deref()).map(Dispatched::Respond)
        }
        Request::Delta { session, delta } => {
            do_delta(shared, &session, &delta).map(Dispatched::Respond)
        }
        Request::Mine {
            session,
            deadline_ms,
            top,
        } => do_mine(shared, &session, deadline_ms, top).map(Dispatched::Respond),
        Request::Subscribe {
            session,
            deadline_ms,
            top,
        } => Ok(Dispatched::Streamed(do_subscribe(
            shared,
            writer,
            &session,
            deadline_ms,
            top,
        ))),
        Request::Stats { session } => do_stats(shared, session.as_deref()).map(Dispatched::Respond),
        Request::Metrics => Ok(Dispatched::Respond(do_metrics())),
        Request::Close { session } => do_close(shared, &session).map(Dispatched::Respond),
    };
    op.seconds.observe(started.elapsed().as_secs_f64());
    res
}

/// The process-wide metrics registry, rendered as Prometheus text
/// exposition and carried in a JSON string field. One scrape covers
/// every instrumented crate: the engine, the store, and this daemon.
fn do_metrics() -> String {
    let text = cspm_telemetry::global().render();
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true)
        .field_str("op", "metrics")
        .field_str("format", "prometheus")
        .field_str("text", &text);
    j.end_obj();
    j.finish()
}

fn simple_ok(op: &str) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true).field_str("op", op);
    j.end_obj();
    j.finish()
}

fn unknown_session(name: &str) -> ProtoError {
    ProtoError::new(
        ErrorCode::UnknownSession,
        format!("no session named {name:?}"),
    )
}

fn open_response(name: &str, warm: bool, tenant: &Tenant) -> String {
    let (vertices, edges) = tenant
        .session()
        .graph()
        .map_or((0, 0), |g| (g.vertex_count(), g.edge_count()));
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true)
        .field_str("op", "open")
        .field_str("session", name)
        .field_bool("warm", warm)
        .field_bool("durable", tenant.is_durable())
        .field_int("vertices", vertices as u64)
        .field_int("edges", edges as u64);
    j.end_obj();
    j.finish()
}

fn do_open(shared: &Arc<Shared>, name: &str, graph: Option<&str>) -> Result<String, ProtoError> {
    shared.counters.bump(&shared.counters.opens);
    // `_pin` keeps the request's own tenant checked out across budget
    // enforcement — a just-opened session must never be the one evicted
    // to make room for itself.
    let (response, _pin) = match graph {
        Some(text) => {
            // Parse outside the registry lock — it's pure CPU on the
            // request's own payload.
            let g = read_graph(text.as_bytes())
                .map_err(|e| ProtoError::new(ErrorCode::BadGraph, e.to_string()))?;
            let mut registry = lock_registry(&shared.registry);
            if registry.contains(name) {
                return Err(ProtoError::new(
                    ErrorCode::SessionExists,
                    format!("session {name:?} is already resident; close it first"),
                ));
            }
            let mut tenant = shared.new_tenant(name)?;
            tenant.load(&g)?;
            let response = open_response(name, false, &tenant);
            let pin = registry
                .insert(name, tenant)
                .expect("name checked under the same lock");
            (response, pin)
        }
        None => {
            let mut registry = lock_registry(&shared.registry);
            if let Some(handle) = registry.checkout(name) {
                drop(registry);
                let response = open_response(name, true, &lock(&handle));
                (response, handle)
            } else {
                // Not resident: warm-open from the store if there is
                // a checkpoint for this name.
                let path = shared.store_path(name).filter(|p| p.exists());
                let Some(path) = path else {
                    return Err(unknown_session(name));
                };
                let ds = DurableSession::open(shared.miner(), &path).map_err(|e| {
                    ProtoError::new(ErrorCode::Store, format!("open {}: {e}", path.display()))
                })?;
                let tenant = Tenant::Durable(Box::new(ds));
                let response = open_response(name, true, &tenant);
                let pin = registry
                    .insert(name, tenant)
                    .expect("absence checked under the same lock");
                (response, pin)
            }
        }
    };
    shared.enforce_budget();
    Ok(response)
}

fn do_delta(shared: &Arc<Shared>, name: &str, delta: &GraphDelta) -> Result<String, ProtoError> {
    shared.counters.bump(&shared.counters.deltas);
    let handle = lock_registry(&shared.registry)
        .checkout(name)
        .ok_or_else(|| unknown_session(name))?;
    let stats = lock(&handle).stage_delta(delta)?;
    if stats.rebuilt.is_some() {
        serve_metrics().delta_rebuilds.inc();
    }
    // Budget pressure runs while `handle` pins this tenant: the session
    // the client is actively growing is not an eviction candidate.
    shared.enforce_budget();
    drop(handle);
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true)
        .field_str("op", "delta")
        .field_str("session", name)
        .field_int("dirty_centers", stats.dirty_centers as u64)
        .field_bool("rebuilt", stats.rebuilt.is_some())
        .field_bool("compacted", stats.compacted)
        .field_num("fragmentation", stats.fragmentation);
    j.end_obj();
    Ok(j.finish())
}

/// The hex digest of a DL value's exact bit pattern — the protocol's
/// bit-identity witness (`final_dl` itself is also exact on the wire,
/// but a string survives every JSON consumer's float handling).
pub fn dl_bits(dl: f64) -> String {
    format!("{:016x}", dl.to_bits())
}

fn do_mine(
    shared: &Arc<Shared>,
    name: &str,
    deadline_ms: Option<u64>,
    top: Option<usize>,
) -> Result<String, ProtoError> {
    shared.counters.bump(&shared.counters.mines);
    let handle = lock_registry(&shared.registry)
        .checkout(name)
        .ok_or_else(|| unknown_session(name))?;
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let started = Instant::now();
    let job_name = name.to_string();
    // Pin the tenant across the pooled run *and* budget enforcement.
    let pin = Arc::clone(&handle);
    // The pool bounds mining CPU across all connections; the closure
    // locks the tenant only once a worker picks it up. Latency is
    // measured from request receipt, so it includes queue wait — that
    // is what the client experiences.
    let outcome = shared
        .pool
        .run(move || {
            let mut tenant = lock(&handle);
            let mut obs = DeadlineObserver {
                deadline,
                hit: false,
            };
            let result = tenant.run_with(&mut obs);
            let rendered = result.map(|r| {
                render_mine(
                    "mine",
                    false,
                    &job_name,
                    &tenant,
                    &r,
                    top,
                    started.elapsed().as_millis() as u64,
                )
            });
            (rendered, obs.hit)
        })
        .map_err(|_| {
            ProtoError::new(
                ErrorCode::Internal,
                "mining job panicked; session state was not persisted",
            )
        })?;
    match outcome {
        (Ok(rendered), hit) => {
            if hit {
                shared.counters.bump(&shared.counters.deadline_hits);
                serve_metrics().deadline_expiries.inc();
                return Err(deadline_error(deadline_ms));
            }
            shared.enforce_budget();
            drop(pin);
            Ok(rendered)
        }
        (Err(e), _) => Err(e),
    }
}

/// How many progress events may sit unread between the mining worker
/// and the connection thread. Past this the observer *drops* events
/// (counted in `cspm_serve_subscribe_dropped_total`) rather than
/// blocking the merge loop on a slow client.
const SUBSCRIBE_BUFFER: usize = 64;

/// One message from the mining worker to the streaming connection
/// thread.
enum SubEvent {
    /// A per-merge progress snapshot.
    Progress(IterationStat),
    /// The run finished: the fully rendered terminal line (or the
    /// error that should become one) plus whether the deadline fired.
    Done {
        rendered: Result<String, ProtoError>,
        deadline_hit: bool,
    },
}

/// The subscribe op's observer: deadline enforcement like
/// [`DeadlineObserver`], plus progress fan-out and client-gone
/// cancellation. `try_send` keeps the merge loop non-blocking — a full
/// buffer loses an event, never a merge.
struct StreamingObserver {
    deadline: Option<Instant>,
    hit: bool,
    cancelled: Arc<AtomicBool>,
    tx: SyncSender<SubEvent>,
    dropped: u64,
}

impl ProgressObserver for StreamingObserver {
    fn on_iteration(&mut self, stat: &IterationStat) -> ControlFlow<()> {
        if self.cancelled.load(Ordering::Relaxed) {
            return ControlFlow::Break(());
        }
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                self.hit = true;
                return ControlFlow::Break(());
            }
        }
        match self.tx.try_send(SubEvent::Progress(*stat)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => self.dropped += 1,
            // Receiver gone means the connection thread is gone;
            // nothing is listening, so stop mining this request.
            Err(TrySendError::Disconnected(_)) => return ControlFlow::Break(()),
        }
        ControlFlow::Continue(())
    }
}

/// One progress event line: `{"ok":true,"op":"subscribe",
/// "event":"progress","iteration":N,...}` with the [`IterationStat`]
/// fields spelled out.
fn render_progress(name: &str, iteration: u64, stat: &IterationStat) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true)
        .field_str("op", "subscribe")
        .field_str("event", "progress")
        .field_str("session", name)
        .field_int("iteration", iteration)
        .field_int("gain_evals", stat.gain_evals)
        .field_int("possible_pairs", stat.possible_pairs)
        .field_num("accepted_gain", stat.accepted_gain)
        .field_num("dl_after", stat.dl_after)
        .field_num("data_dl_after", stat.data_dl_after);
    j.end_obj();
    j.finish()
}

/// The `subscribe` op: mines like [`do_mine`] but writes progress
/// event lines on the connection as merges are accepted, then the
/// terminal line. The whole exchange is written here; the returned
/// `io::Result` says whether the connection survived.
///
/// Cancellation safety: if a progress write fails, the client is gone
/// — the observer's `cancelled` flag stops the merge loop at the next
/// iteration, and this thread keeps *draining* the channel (without
/// writing) so the worker's blocking `Done` send can never wedge. A
/// worker panic drops the channel sender, which surfaces here as a
/// terminal internal error rather than a hang.
fn do_subscribe(
    shared: &Arc<Shared>,
    writer: &mut UnixStream,
    name: &str,
    deadline_ms: Option<u64>,
    top: Option<usize>,
) -> io::Result<()> {
    shared.counters.bump(&shared.counters.subscribes);
    let fail = |w: &mut UnixStream, e: ProtoError| {
        shared.counters.bump(&shared.counters.errors);
        serve_metrics().errors.inc();
        write_line(w, &e.to_line())
    };
    let Some(handle) = lock_registry(&shared.registry).checkout(name) else {
        return fail(writer, unknown_session(name));
    };
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let started = Instant::now();
    let job_name = name.to_string();
    let cancelled = Arc::new(AtomicBool::new(false));
    let (tx, rx) = sync_channel::<SubEvent>(SUBSCRIBE_BUFFER);

    // Pin the tenant across the pooled run *and* budget enforcement,
    // exactly like `do_mine`.
    let pin = Arc::clone(&handle);
    let cancel_flag = Arc::clone(&cancelled);
    shared.pool.submit(move || {
        let mut tenant = lock(&handle);
        let mut obs = StreamingObserver {
            deadline,
            hit: false,
            cancelled: cancel_flag,
            tx: tx.clone(),
            dropped: 0,
        };
        let result = tenant.run_with(&mut obs);
        let rendered = result.map(|r| {
            render_mine(
                "subscribe",
                true,
                &job_name,
                &tenant,
                &r,
                top,
                started.elapsed().as_millis() as u64,
            )
        });
        drop(tenant);
        if obs.dropped > 0 {
            serve_metrics().subscribe_dropped.add(obs.dropped);
        }
        // Blocking send is safe: the connection thread drains until it
        // sees `Done` (or the channel closes), even after a write
        // failure.
        let _ = tx.send(SubEvent::Done {
            rendered,
            deadline_hit: obs.hit,
        });
    });

    let mut conn_alive = true;
    let mut iteration = 0u64;
    let mut outcome = None;
    for event in rx.iter() {
        match event {
            SubEvent::Progress(stat) => {
                iteration += 1;
                if !conn_alive {
                    continue;
                }
                if write_line(writer, &render_progress(name, iteration, &stat)).is_err() {
                    conn_alive = false;
                    cancelled.store(true, Ordering::Relaxed);
                }
            }
            SubEvent::Done {
                rendered,
                deadline_hit,
            } => {
                outcome = Some((rendered, deadline_hit));
                break;
            }
        }
    }

    let terminal = match outcome {
        Some((_, true)) => {
            shared.counters.bump(&shared.counters.deadline_hits);
            serve_metrics().deadline_expiries.inc();
            Err(deadline_error(deadline_ms))
        }
        Some((Ok(rendered), false)) => {
            shared.enforce_budget();
            Ok(rendered)
        }
        Some((Err(e), false)) => Err(e),
        // Channel closed without a Done: the mining job panicked.
        None => Err(ProtoError::new(
            ErrorCode::Internal,
            "mining job panicked; session state was not persisted",
        )),
    };
    drop(pin);
    if !conn_alive {
        return Err(io::Error::new(
            ErrorKind::BrokenPipe,
            "subscribe client went away mid-stream",
        ));
    }
    match terminal {
        Ok(rendered) => write_line(writer, &rendered),
        Err(e) => fail(writer, e),
    }
}

fn deadline_error(deadline_ms: Option<u64>) -> ProtoError {
    ProtoError::new(
        ErrorCode::DeadlineExceeded,
        format!(
            "deadline of {}ms expired mid-merge; warm session state is unchanged",
            deadline_ms.unwrap_or(0)
        ),
    )
}

/// Renders a mine response under the tenant lock (star display needs
/// the graph's attribute table). `subscribe` reuses the same payload
/// as its terminal line, tagged `"event":"done"` so a streaming client
/// can tell it from the progress events that preceded it.
fn render_mine(
    op: &str,
    done_event: bool,
    name: &str,
    tenant: &Tenant,
    result: &CspmResult,
    top: Option<usize>,
    elapsed_ms: u64,
) -> String {
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true).field_str("op", op);
    if done_event {
        j.field_str("event", "done");
    }
    j.field_str("session", name)
        .field_num("initial_dl", result.initial_dl)
        .field_num("final_dl", result.final_dl)
        .field_str("final_dl_bits", &dl_bits(result.final_dl))
        .field_int("merges", result.merges as u64)
        .field_int("n_astars", result.model.len() as u64)
        .field_bool("cancelled", result.stats.cancelled)
        .field_int("elapsed_ms", elapsed_ms);
    if let (Some(top), Some(g)) = (top, tenant.session().graph()) {
        j.begin_arr_field("top_patterns");
        for m in result.model.astars().iter().take(top) {
            j.begin_obj()
                .field_str("astar", &m.astar.display(g.attrs()).to_string())
                .field_int("frequency", m.frequency)
                .field_num("code_len", m.code_len);
            j.end_obj();
        }
        j.end_arr();
    }
    j.end_obj();
    j.finish()
}

fn do_stats(shared: &Arc<Shared>, session: Option<&str>) -> Result<String, ProtoError> {
    match session {
        None => {
            let mut registry = lock_registry(&shared.registry);
            let names = registry.names();
            let bytes = registry.approx_bytes();
            drop(registry);
            let c = &shared.counters;
            let mut j = Json::new();
            j.begin_obj();
            j.field_bool("ok", true)
                .field_str("op", "stats")
                .field_int("sessions", names.len() as u64)
                .field_int("resident_bytes", bytes as u64)
                .field_int("threads", shared.pool.threads() as u64);
            match shared.config.mem_budget {
                Some(b) => j.field_int("mem_budget", b as u64),
                None => j.field_bool("mem_budget_unlimited", true),
            };
            j.begin_arr_field("names");
            for name in &names {
                // Array of bare strings: reuse the writer's object
                // machinery by emitting via a one-field trick is worse
                // than a tiny direct write here.
                j.item_str(name);
            }
            j.end_arr();
            j.begin_obj_field("counters");
            j.field_int("requests", c.requests.load(Ordering::Relaxed))
                .field_int("errors", c.errors.load(Ordering::Relaxed))
                .field_int("opens", c.opens.load(Ordering::Relaxed))
                .field_int("deltas", c.deltas.load(Ordering::Relaxed))
                .field_int("mines", c.mines.load(Ordering::Relaxed))
                .field_int("subscribes", c.subscribes.load(Ordering::Relaxed))
                .field_int("deadline_hits", c.deadline_hits.load(Ordering::Relaxed))
                .field_int("evictions", c.evictions.load(Ordering::Relaxed))
                .field_int(
                    "pressure_compactions",
                    c.pressure_compactions.load(Ordering::Relaxed),
                );
            j.end_obj();
            j.end_obj();
            Ok(j.finish())
        }
        Some(name) => {
            let handle = lock_registry(&shared.registry).peek(name);
            let mut j = Json::new();
            j.begin_obj();
            j.field_bool("ok", true)
                .field_str("op", "stats")
                .field_str("session", name);
            match handle {
                Some(handle) => {
                    let tenant = lock(&handle);
                    let (vertices, edges) = tenant
                        .session()
                        .graph()
                        .map_or((0, 0), |g| (g.vertex_count(), g.edge_count()));
                    j.field_bool("resident", true)
                        .field_bool("durable", tenant.is_durable())
                        .field_int("vertices", vertices as u64)
                        .field_int("edges", edges as u64)
                        .field_int("approx_bytes", tenant.approx_bytes() as u64)
                        .field_num("fragmentation", tenant.fragmentation())
                        .field_int("compactions", tenant.session().compactions());
                }
                None => {
                    let stored = shared.store_path(name).is_some_and(|p| p.exists());
                    if !stored {
                        return Err(unknown_session(name));
                    }
                    j.field_bool("resident", false).field_bool("stored", true);
                }
            }
            j.end_obj();
            Ok(j.finish())
        }
    }
}

fn do_close(shared: &Arc<Shared>, name: &str) -> Result<String, ProtoError> {
    // Checkpoint while still resident (peek: closing must not bump
    // recency), then remove. A concurrent close of the same name loses
    // the race at `remove` and reports unknown_session — accurate.
    let handle = lock_registry(&shared.registry)
        .peek(name)
        .ok_or_else(|| unknown_session(name))?;
    let checkpointed = lock(&handle).checkpoint()?;
    drop(handle);
    if lock_registry(&shared.registry).remove(name).is_none() {
        return Err(unknown_session(name));
    }
    let mut j = Json::new();
    j.begin_obj();
    j.field_bool("ok", true)
        .field_str("op", "close")
        .field_str("session", name)
        .field_bool("checkpointed", checkpointed);
    j.end_obj();
    Ok(j.finish())
}
