//! Daemon metrics, registered once against the process-wide
//! [`cspm_telemetry::global`] registry.
//!
//! Every request is counted and timed per `op` label; the remaining
//! families cover the daemon's contended resources (the registry
//! mutex), its budget machinery (evictions, pressure compactions), and
//! the two ways a request degrades without failing (deadline expiry,
//! delta-forced rebuilds). All of it is readable in one scrape via the
//! `metrics` op — the same registry also carries the engine and store
//! families, so a single exposition shows the whole stack.

use std::sync::OnceLock;

use cspm_telemetry::{global, Counter, Histogram, TIME_BUCKETS};

/// One wire op's request counter + latency histogram (latency measured
/// from parse to rendered response, queue wait included).
pub(crate) struct OpMetrics {
    pub(crate) requests: Counter,
    pub(crate) seconds: Histogram,
}

pub(crate) struct ServeMetrics {
    ping: OpMetrics,
    open: OpMetrics,
    delta: OpMetrics,
    mine: OpMetrics,
    subscribe: OpMetrics,
    stats: OpMetrics,
    metrics: OpMetrics,
    close: OpMetrics,
    shutdown: OpMetrics,
    other: OpMetrics,
    pub(crate) errors: Counter,
    pub(crate) lock_wait_seconds: Histogram,
    pub(crate) evictions: Counter,
    pub(crate) pressure_compactions: Counter,
    pub(crate) deadline_expiries: Counter,
    pub(crate) delta_rebuilds: Counter,
    pub(crate) subscribe_dropped: Counter,
}

impl ServeMetrics {
    /// The per-op pair for a [`Request::op_name`] value.
    ///
    /// [`Request::op_name`]: crate::Request::op_name
    pub(crate) fn op(&self, name: &str) -> &OpMetrics {
        match name {
            "ping" => &self.ping,
            "open" => &self.open,
            "delta" => &self.delta,
            "mine" => &self.mine,
            "subscribe" => &self.subscribe,
            "stats" => &self.stats,
            "metrics" => &self.metrics,
            "close" => &self.close,
            "shutdown" => &self.shutdown,
            _ => &self.other,
        }
    }
}

pub(crate) fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        let op = |name| OpMetrics {
            requests: r.counter_with(
                "cspm_serve_requests_total",
                "Requests dispatched, by wire op.",
                &[("op", name)],
            ),
            seconds: r.histogram_with(
                "cspm_serve_request_seconds",
                "Request latency from parse to rendered response, by wire op.",
                &TIME_BUCKETS,
                &[("op", name)],
            ),
        };
        ServeMetrics {
            ping: op("ping"),
            open: op("open"),
            delta: op("delta"),
            mine: op("mine"),
            subscribe: op("subscribe"),
            stats: op("stats"),
            metrics: op("metrics"),
            close: op("close"),
            shutdown: op("shutdown"),
            other: op("other"),
            errors: r.counter(
                "cspm_serve_errors_total",
                "Requests answered with an error line (parse failures included).",
            ),
            lock_wait_seconds: r.histogram(
                "cspm_serve_registry_lock_wait_seconds",
                "Wait to acquire the session-registry mutex.",
                &TIME_BUCKETS,
            ),
            evictions: r.counter(
                "cspm_serve_evictions_total",
                "Tenants evicted by memory-budget pressure.",
            ),
            pressure_compactions: r.counter(
                "cspm_serve_pressure_compactions_total",
                "Tenant arenas compacted by memory-budget pressure.",
            ),
            deadline_expiries: r.counter(
                "cspm_serve_deadline_expiries_total",
                "Mine/subscribe requests cancelled by their deadline.",
            ),
            delta_rebuilds: r.counter(
                "cspm_serve_delta_rebuilds_total",
                "Deltas that forced a cold rebuild (e.g. a vanished attribute).",
            ),
            subscribe_dropped: r.counter(
                "cspm_serve_subscribe_dropped_total",
                "Subscribe progress events dropped because the stream buffer was full.",
            ),
        }
    })
}
