//! The daemon's wire protocol: typed requests, typed errors, and the
//! line grammar shared by server and client.
//!
//! One JSON object per line in each direction (`docs/FORMATS.md` §7 is
//! the normative reference). Requests carry an `"op"` discriminator;
//! responses carry `"ok": true` plus op-specific fields, or `"ok":
//! false` with an `"error": {"code", "message"}` object. Every way a
//! request can be wrong maps to one [`ErrorCode`] — the daemon never
//! answers free-text, and never closes a connection just because one
//! line was garbage.
//!
//! Parsing is two-stage on purpose: [`crate::json`] gets the line into
//! a [`Value`] (syntax errors → [`ErrorCode::MalformedJson`] with a
//! byte offset), then [`parse_request`] checks shape and field types
//! (everything else). The same [`delta_from_value`] runs in the client
//! CLI, so a bad delta is rejected with the same message before it ever
//! crosses the socket.

use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
use cspm_graph::VertexId;

use crate::json::{self, Value};
use crate::jsonfmt::Json;

/// Hard cap on one request line, in bytes. Inline `open` graphs are the
/// only big payload; 8 MiB fits ~100k-vertex text graphs with room to
/// spare while keeping a hostile client from ballooning the daemon.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Session names double as checkpoint file stems under `--store-dir`,
/// so the alphabet is filesystem-safe by construction.
pub const MAX_SESSION_NAME: usize = 64;

/// Typed protocol error codes (the `error.code` wire values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON.
    MalformedJson,
    /// Valid JSON, but `op` is missing or not one the daemon knows.
    UnknownOp,
    /// A required field is absent.
    MissingField,
    /// A field is present but has the wrong type or an invalid value.
    InvalidField,
    /// The request line exceeds [`MAX_FRAME`] bytes.
    OversizedFrame,
    /// The session name is not `[A-Za-z0-9._-]{1,64}` (or is `.`/`..`).
    BadName,
    /// No resident or stored session has this name.
    UnknownSession,
    /// `open` with a graph for a name that is already resident.
    SessionExists,
    /// The inline graph text failed to parse.
    BadGraph,
    /// The delta failed validation (here or at apply time).
    BadDelta,
    /// The mine request's deadline expired before convergence.
    DeadlineExceeded,
    /// A store (checkpoint/recovery) operation failed.
    Store,
    /// The daemon is draining: no new work is accepted.
    ShuttingDown,
    /// A bug surfaced as an error instead of a panic.
    Internal,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedJson => "malformed_json",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::InvalidField => "invalid_field",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::BadName => "bad_name",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::SessionExists => "session_exists",
            ErrorCode::BadGraph => "bad_graph",
            ErrorCode::BadDelta => "bad_delta",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Store => "store",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed protocol error: code + human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub code: ErrorCode,
    pub message: String,
}

impl ProtoError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// The error as a complete response line (without the newline).
    pub fn to_line(&self) -> String {
        let mut j = Json::new();
        j.begin_obj();
        j.field_bool("ok", false);
        j.begin_obj_field("error");
        j.field_str("code", self.code.as_str());
        j.field_str("message", &self.message);
        j.end_obj();
        j.end_obj();
        j.finish()
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A validated request, ready for the server's dispatch loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered without touching any session.
    Ping,
    /// With `graph`: create the named session from inline graph text.
    /// Without: attach to a resident session, or warm-open it from the
    /// store.
    Open {
        session: String,
        graph: Option<String>,
    },
    /// Stage an additive delta into the named session.
    Delta { session: String, delta: GraphDelta },
    /// Mine the named session (warm re-mine after deltas).
    Mine {
        session: String,
        /// Per-request deadline; expiry cancels via the observer and
        /// answers [`ErrorCode::DeadlineExceeded`].
        deadline_ms: Option<u64>,
        /// Cap on the number of stars echoed back (all merges still
        /// run; this only trims the response).
        top: Option<usize>,
    },
    /// Mine like [`Request::Mine`], but stream one progress event line
    /// per accepted merge before the final response — same connection,
    /// same terminal payload.
    Subscribe {
        session: String,
        /// Per-request deadline; expiry cancels via the observer and
        /// answers [`ErrorCode::DeadlineExceeded`] as the terminal line.
        deadline_ms: Option<u64>,
        /// Cap on the number of stars echoed back in the terminal line.
        top: Option<usize>,
    },
    /// Daemon-wide stats, or one session's stats when named.
    Stats { session: Option<String> },
    /// The process-wide metrics registry rendered as Prometheus text
    /// exposition, carried in a JSON string field.
    Metrics,
    /// Checkpoint (if durable) and release the named session.
    Close { session: String },
    /// Drain and stop the daemon (equivalent to SIGTERM).
    Shutdown,
}

impl Request {
    /// The request's wire `op` string (the metrics label for per-op
    /// counters).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Open { .. } => "open",
            Request::Delta { .. } => "delta",
            Request::Mine { .. } => "mine",
            Request::Subscribe { .. } => "subscribe",
            Request::Stats { .. } => "stats",
            Request::Metrics => "metrics",
            Request::Close { .. } => "close",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Whether `name` may identify a session: 1–64 chars of
/// `[A-Za-z0-9._-]`, excluding the path-walking `.` / `..`.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_SESSION_NAME
        && name != "."
        && name != ".."
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

fn missing(field: &str) -> ProtoError {
    ProtoError::new(ErrorCode::MissingField, format!("missing field {field:?}"))
}

fn invalid(field: &str, want: &str) -> ProtoError {
    ProtoError::new(
        ErrorCode::InvalidField,
        format!("field {field:?} must be {want}"),
    )
}

fn session_field(v: &Value) -> Result<String, ProtoError> {
    let name = v
        .get("session")
        .ok_or_else(|| missing("session"))?
        .as_str()
        .ok_or_else(|| invalid("session", "a string"))?;
    if !valid_session_name(name) {
        return Err(ProtoError::new(
            ErrorCode::BadName,
            format!(
                "session name must be 1..={MAX_SESSION_NAME} chars of [A-Za-z0-9._-], got {name:?}"
            ),
        ));
    }
    Ok(name.to_string())
}

/// Parses and validates one request line.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    if line.len() > MAX_FRAME {
        return Err(ProtoError::new(
            ErrorCode::OversizedFrame,
            format!("request line is {} bytes (cap {})", line.len(), MAX_FRAME),
        ));
    }
    let v =
        json::parse(line).map_err(|e| ProtoError::new(ErrorCode::MalformedJson, e.to_string()))?;
    if v.as_obj().is_none() {
        return Err(ProtoError::new(
            ErrorCode::MalformedJson,
            "request must be a JSON object",
        ));
    }
    let op = v
        .get("op")
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownOp, "missing field \"op\""))?
        .as_str()
        .ok_or_else(|| ProtoError::new(ErrorCode::UnknownOp, "field \"op\" must be a string"))?;
    match op {
        "ping" => Ok(Request::Ping),
        "open" => {
            let session = session_field(&v)?;
            let graph = match v.get("graph") {
                None | Some(Value::Null) => None,
                Some(g) => Some(
                    g.as_str()
                        .ok_or_else(|| invalid("graph", "a string (graph text format)"))?
                        .to_string(),
                ),
            };
            Ok(Request::Open { session, graph })
        }
        "delta" => {
            let session = session_field(&v)?;
            let delta = delta_from_value(&v)?;
            Ok(Request::Delta { session, delta })
        }
        "mine" | "subscribe" => {
            let session = session_field(&v)?;
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Value::Null) => None,
                Some(d) => Some(
                    d.as_u64()
                        .ok_or_else(|| invalid("deadline_ms", "a non-negative integer"))?,
                ),
            };
            let top = match v.get("top") {
                None | Some(Value::Null) => None,
                Some(t) => Some(
                    t.as_u64()
                        .ok_or_else(|| invalid("top", "a non-negative integer"))?
                        as usize,
                ),
            };
            if op == "subscribe" {
                Ok(Request::Subscribe {
                    session,
                    deadline_ms,
                    top,
                })
            } else {
                Ok(Request::Mine {
                    session,
                    deadline_ms,
                    top,
                })
            }
        }
        "metrics" => Ok(Request::Metrics),
        "stats" => {
            let session = match v.get("session") {
                None | Some(Value::Null) => None,
                Some(_) => Some(session_field(&v)?),
            };
            Ok(Request::Stats { session })
        }
        "close" => Ok(Request::Close {
            session: session_field(&v)?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::new(
            ErrorCode::UnknownOp,
            format!("unknown op {other:?}"),
        )),
    }
}

/// Builds a [`GraphDelta`] from a request's delta fields:
///
/// ```json
/// {"add_vertices":    [["a","b"], []],
///  "add_edges":       [[0, {"new": 0}], [{"new": 0}, {"new": 1}]],
///  "add_labels":      [[3, "c"]],
///  "remove_edges":    [[0, 2]],
///  "remove_labels":   [[1, "b"]],
///  "remove_vertices": [4],
///  "change_labels":   [[3, "c", "d"]]}
/// ```
///
/// `add_vertices[i]` is the label list of the delta's `i`-th new
/// vertex; edge endpoints are base-graph vertex ids (integers) or
/// `{"new": i}` references to those new vertices; `add_labels` attaches
/// a value to an existing vertex. The churn fields take base-graph ids
/// only (a vertex added by the same delta cannot be removed by it):
/// `remove_edges` drops edges, `remove_labels` drops one value off a
/// vertex, `remove_vertices` detaches vertices (labels and incident
/// edges go, the id slot stays), `change_labels` swaps `old` for `new`
/// on a vertex. Absent removal targets are no-ops at apply time. All
/// fields are optional — an absent field changes nothing.
pub fn delta_from_value(v: &Value) -> Result<GraphDelta, ProtoError> {
    let bad = |msg: String| ProtoError::new(ErrorCode::BadDelta, msg);
    let mut delta = GraphDelta::new();

    let added = match v.get("add_vertices") {
        None | Some(Value::Null) => 0,
        Some(vs) => {
            let vs = vs
                .as_arr()
                .ok_or_else(|| bad("add_vertices must be an array of label arrays".into()))?;
            for (i, labels) in vs.iter().enumerate() {
                let labels = labels
                    .as_arr()
                    .ok_or_else(|| bad(format!("add_vertices[{i}] must be an array of strings")))?;
                let mut names = Vec::with_capacity(labels.len());
                for l in labels {
                    names.push(l.as_str().ok_or_else(|| {
                        bad(format!("add_vertices[{i}] must contain only strings"))
                    })?);
                }
                delta.add_vertex(names);
            }
            vs.len()
        }
    };

    let endpoint = |ep: &Value, what: &str| -> Result<DeltaVertex, ProtoError> {
        if let Some(id) = ep.as_u64() {
            let id = VertexId::try_from(id)
                .map_err(|_| bad(format!("{what}: vertex id {id} out of range")))?;
            return Ok(DeltaVertex::Existing(id));
        }
        if let Some(new) = ep.get("new") {
            let i = new
                .as_u64()
                .ok_or_else(|| bad(format!("{what}: \"new\" must be a non-negative integer")))?;
            if i >= added as u64 {
                return Err(bad(format!(
                    "{what}: {{\"new\": {i}}} but the delta adds only {added} vertices"
                )));
            }
            return Ok(DeltaVertex::Added(i as u32));
        }
        Err(bad(format!(
            "{what}: endpoint must be a vertex id or {{\"new\": i}}"
        )))
    };

    if let Some(es) = v.get("add_edges") {
        if !matches!(es, Value::Null) {
            let es = es
                .as_arr()
                .ok_or_else(|| bad("add_edges must be an array of [a, b] pairs".into()))?;
            for (i, pair) in es.iter().enumerate() {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad(format!("add_edges[{i}] must be an [a, b] pair")))?;
                let a = endpoint(&pair[0], &format!("add_edges[{i}][0]"))?;
                let b = endpoint(&pair[1], &format!("add_edges[{i}][1]"))?;
                delta.add_edge(a, b);
            }
        }
    }

    if let Some(ls) = v.get("add_labels") {
        if !matches!(ls, Value::Null) {
            let ls = ls.as_arr().ok_or_else(|| {
                bad("add_labels must be an array of [vertex, value] pairs".into())
            })?;
            for (i, pair) in ls.iter().enumerate() {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    bad(format!("add_labels[{i}] must be a [vertex, value] pair"))
                })?;
                let vid = pair[0]
                    .as_u64()
                    .and_then(|id| VertexId::try_from(id).ok())
                    .ok_or_else(|| bad(format!("add_labels[{i}][0] must be a vertex id")))?;
                let value = pair[1]
                    .as_str()
                    .ok_or_else(|| bad(format!("add_labels[{i}][1] must be a string")))?;
                delta.add_label(vid, value);
            }
        }
    }

    let base_id = |x: &Value, what: &str| -> Result<VertexId, ProtoError> {
        x.as_u64()
            .and_then(|id| VertexId::try_from(id).ok())
            .ok_or_else(|| bad(format!("{what} must be a base-graph vertex id")))
    };

    if let Some(es) = v.get("remove_edges") {
        if !matches!(es, Value::Null) {
            let es = es
                .as_arr()
                .ok_or_else(|| bad("remove_edges must be an array of [u, v] id pairs".into()))?;
            for (i, pair) in es.iter().enumerate() {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| bad(format!("remove_edges[{i}] must be a [u, v] id pair")))?;
                let u = base_id(&pair[0], &format!("remove_edges[{i}][0]"))?;
                let w = base_id(&pair[1], &format!("remove_edges[{i}][1]"))?;
                delta.remove_edge(u, w);
            }
        }
    }

    if let Some(ls) = v.get("remove_labels") {
        if !matches!(ls, Value::Null) {
            let ls = ls.as_arr().ok_or_else(|| {
                bad("remove_labels must be an array of [vertex, value] pairs".into())
            })?;
            for (i, pair) in ls.iter().enumerate() {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    bad(format!("remove_labels[{i}] must be a [vertex, value] pair"))
                })?;
                let vid = base_id(&pair[0], &format!("remove_labels[{i}][0]"))?;
                let value = pair[1]
                    .as_str()
                    .ok_or_else(|| bad(format!("remove_labels[{i}][1] must be a string")))?;
                delta.remove_label(vid, value);
            }
        }
    }

    if let Some(vs) = v.get("remove_vertices") {
        if !matches!(vs, Value::Null) {
            let vs = vs
                .as_arr()
                .ok_or_else(|| bad("remove_vertices must be an array of vertex ids".into()))?;
            for (i, id) in vs.iter().enumerate() {
                delta.remove_vertex(base_id(id, &format!("remove_vertices[{i}]"))?);
            }
        }
    }

    if let Some(cs) = v.get("change_labels") {
        if !matches!(cs, Value::Null) {
            let cs = cs.as_arr().ok_or_else(|| {
                bad("change_labels must be an array of [vertex, old, new] triples".into())
            })?;
            for (i, triple) in cs.iter().enumerate() {
                let triple = triple.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
                    bad(format!(
                        "change_labels[{i}] must be a [vertex, old, new] triple"
                    ))
                })?;
                let vid = base_id(&triple[0], &format!("change_labels[{i}][0]"))?;
                let old = triple[1]
                    .as_str()
                    .ok_or_else(|| bad(format!("change_labels[{i}][1] must be a string")))?;
                let new = triple[2]
                    .as_str()
                    .ok_or_else(|| bad(format!("change_labels[{i}][2] must be a string")))?;
                delta.change_label(vid, old, new);
            }
        }
    }

    if delta.is_empty() {
        return Err(bad(
            "delta changes nothing (need add_vertices, add_edges, add_labels, \
             remove_edges, remove_labels, remove_vertices, or change_labels)"
                .into(),
        ));
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_names_are_filesystem_safe() {
        assert!(valid_session_name("tenant-01.graph_a"));
        assert!(valid_session_name("A"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("."));
        assert!(!valid_session_name(".."));
        assert!(!valid_session_name("a/b"));
        assert!(!valid_session_name("a b"));
        assert!(!valid_session_name("naïve"));
        assert!(!valid_session_name(&"x".repeat(65)));
        assert!(valid_session_name(&"x".repeat(64)));
    }

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(
            parse_request(r#"{"op":"open","session":"t1"}"#).unwrap(),
            Request::Open {
                session: "t1".into(),
                graph: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"open","session":"t1","graph":"v 0 a\nv 1 a\ne 0 1\n"}"#)
                .unwrap(),
            Request::Open {
                session: "t1".into(),
                graph: Some("v 0 a\nv 1 a\ne 0 1\n".into())
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"mine","session":"t1","deadline_ms":250,"top":5}"#).unwrap(),
            Request::Mine {
                session: "t1".into(),
                deadline_ms: Some(250),
                top: Some(5)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"subscribe","session":"t1","deadline_ms":250,"top":5}"#)
                .unwrap(),
            Request::Subscribe {
                session: "t1".into(),
                deadline_ms: Some(250),
                top: Some(5)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats { session: None }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats","session":"t1"}"#).unwrap(),
            Request::Stats {
                session: Some("t1".into())
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"close","session":"t1"}"#).unwrap(),
            Request::Close {
                session: "t1".into()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn typed_errors_for_each_failure_mode() {
        let code = |line: &str| parse_request(line).unwrap_err().code;
        assert_eq!(code("not json"), ErrorCode::MalformedJson);
        assert_eq!(code("[1,2]"), ErrorCode::MalformedJson);
        assert_eq!(code(r#"{"op":"fly"}"#), ErrorCode::UnknownOp);
        assert_eq!(code(r#"{"session":"t1"}"#), ErrorCode::UnknownOp);
        assert_eq!(code(r#"{"op":"mine"}"#), ErrorCode::MissingField);
        assert_eq!(code(r#"{"op":"subscribe"}"#), ErrorCode::MissingField);
        assert_eq!(
            code(r#"{"op":"mine","session":7}"#),
            ErrorCode::InvalidField
        );
        assert_eq!(code(r#"{"op":"mine","session":"a/b"}"#), ErrorCode::BadName);
        assert_eq!(
            code(r#"{"op":"mine","session":"t1","deadline_ms":-5}"#),
            ErrorCode::InvalidField
        );
        assert_eq!(
            code(r#"{"op":"delta","session":"t1","add_edges":[[0]]}"#),
            ErrorCode::BadDelta
        );
        let long = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(MAX_FRAME));
        assert_eq!(code(&long), ErrorCode::OversizedFrame);
    }

    #[test]
    fn delta_builds_vertices_edges_labels() {
        let v = crate::json::parse(
            r#"{"add_vertices":[["a","b"],[]],
                "add_edges":[[0,{"new":0}],[{"new":0},{"new":1}]],
                "add_labels":[[2,"c"]]}"#,
        )
        .unwrap();
        let d = delta_from_value(&v).unwrap();
        assert_eq!(d.added_vertex_count(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn delta_builds_churn_fields() {
        let v = crate::json::parse(
            r#"{"remove_edges":[[0,2]],
                "remove_labels":[[1,"b"]],
                "remove_vertices":[4],
                "change_labels":[[3,"c","d"]]}"#,
        )
        .unwrap();
        let d = delta_from_value(&v).unwrap();
        assert!(d.has_churn());
        assert!(!d.is_empty());
        assert_eq!(d.added_vertex_count(), 0);
    }

    #[test]
    fn malformed_churn_fields_get_typed_errors() {
        let cases = [
            // Wrong arity, wrong element types, non-array fields, and
            // `{"new": i}` references (churn takes base ids only).
            r#"{"remove_edges":[[0]]}"#,
            r#"{"remove_edges":[[0,{"new":0}]]}"#,
            r#"{"remove_edges":"all"}"#,
            r#"{"remove_labels":[[1,2]]}"#,
            r#"{"remove_labels":[["a",1]]}"#,
            r#"{"remove_vertices":[-1]}"#,
            r#"{"remove_vertices":["v0"]}"#,
            r#"{"change_labels":[[3,"c"]]}"#,
            r#"{"change_labels":[[3,"c",4]]}"#,
            r#"{"change_labels":{"3":"c"}}"#,
        ];
        for case in cases {
            let v = crate::json::parse(case).unwrap();
            let e = delta_from_value(&v).unwrap_err();
            assert_eq!(e.code, ErrorCode::BadDelta, "{case}");
        }
    }

    #[test]
    fn delta_rejects_dangling_new_reference() {
        let v = crate::json::parse(r#"{"add_edges":[[0,{"new":3}]]}"#).unwrap();
        let e = delta_from_value(&v).unwrap_err();
        assert_eq!(e.code, ErrorCode::BadDelta);
        assert!(e.message.contains("adds only 0 vertices"));
    }

    #[test]
    fn empty_delta_is_rejected() {
        let v = crate::json::parse(r#"{"op":"delta","session":"t"}"#).unwrap();
        assert_eq!(delta_from_value(&v).unwrap_err().code, ErrorCode::BadDelta);
    }

    #[test]
    fn error_lines_are_wire_shaped() {
        let line = ProtoError::new(ErrorCode::UnknownOp, "unknown op \"fly\"").to_line();
        assert_eq!(
            line,
            r#"{"ok":false,"error":{"code":"unknown_op","message":"unknown op \"fly\""}}"#
        );
    }
}
