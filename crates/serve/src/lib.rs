//! Mining-as-a-service: the `cspm serve` daemon and its wire protocol.
//!
//! This crate turns the session stack into a long-running multi-tenant
//! server (the ROADMAP's "millions of users" shape): many named
//! sessions stay resident, accept graph deltas, and re-mine warm, over
//! a line-delimited JSON protocol on a Unix socket.
//!
//! | Module | Role |
//! |---|---|
//! | [`jsonfmt`] | push-down JSON writer (shared with the CLI's `--json` output) |
//! | [`json`] | defensive JSON parser: typed errors with byte offsets, depth-capped |
//! | [`proto`] | request/response grammar, typed [`proto::ErrorCode`]s, delta decoding |
//! | [`server`] | listener + connection loop, tenant registry, worker pool, eviction |
//! | `metrics` | per-op counters/latency histograms on the process-wide telemetry registry, scraped via the `metrics` op |
//!
//! The protocol grammar is documented normatively in `docs/FORMATS.md`
//! §7. The load-driver benchmark lives in `cspm-bench` (`bench_serve`);
//! the CLI front-ends (`cspm serve`, `cspm client`) in the root crate.
//!
//! # Guarantees
//!
//! - **Bit identity:** a mine through the daemon returns the same
//!   `final_dl_bits` as one-shot `cspm mine` on the same graph — the
//!   daemon adds routing, never arithmetic.
//! - **Robustness:** malformed lines, unknown ops, oversized frames
//!   (bounded memory even mid-line), and bad deltas each produce one
//!   typed error line; the connection and every other tenant keep
//!   working. A panicking mine surfaces as an `internal` error, not a
//!   dead daemon.
//! - **Deadlines:** `mine` requests carry `deadline_ms`, enforced via
//!   the engine's cooperative cancellation; expiry leaves the tenant's
//!   warm state untouched.
//! - **Memory budget:** under `--mem-budget` pressure the daemon first
//!   compacts fragmented posting arenas, then evicts idle tenants
//!   LRU-first — checkpointing durable ones so re-open is warm.

pub mod json;
pub mod jsonfmt;
mod metrics;
pub mod proto;
pub mod server;

pub use json::Value;
pub use jsonfmt::Json;
pub use proto::{ErrorCode, ProtoError, Request, MAX_FRAME};
pub use server::{dl_bits, Server, ServerConfig};
