//! Minimal hand-rolled JSON emission — the writer half of the wire
//! format (the parser half lives in [`crate::json`]).
//!
//! Grown from the CLI's `--json` output and now shared by the daemon
//! protocol: the workspace builds offline (no serde), and both surfaces
//! are small and flat, so a tiny push-down writer is all that is
//! needed. Strings are escaped per RFC 8259; non-finite floats (which
//! JSON cannot represent) serialise as `null`.

/// Incremental JSON writer. Call the `field_*`/`item_*` methods inside
/// matching `begin_*`/`end_*` pairs; commas are managed automatically.
#[derive(Debug, Default)]
pub struct Json {
    out: String,
    /// Per-nesting-level flag: does the next element need a comma?
    needs_comma: Vec<bool>,
}

impl Json {
    /// A writer positioned at the document root.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn key(&mut self, key: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(key, &mut self.out);
        self.out.push_str("\":");
    }

    /// Opens the root object (or an anonymous object inside an array).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Opens `"key": {`.
    pub fn begin_obj_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('{');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push('}');
        self
    }

    /// Opens `"key": [`.
    pub fn begin_arr_field(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('[');
        self.needs_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.needs_comma.pop();
        self.out.push(']');
        self
    }

    /// A bare `"value"` array element with escaping.
    pub fn item_str(&mut self, value: &str) -> &mut Self {
        self.pre_value();
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
        self
    }

    /// `"key": "value"` with escaping.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.out.push('"');
        escape_into(value, &mut self.out);
        self.out.push('"');
        self
    }

    /// `"key": 123`.
    pub fn field_int(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// `"key": 1.25` (shortest round-trip form; `null` if non-finite).
    pub fn field_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        push_f64(value, &mut self.out);
        self
    }

    /// `"key": true|false`.
    pub fn field_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// The finished document.
    ///
    /// # Panics
    /// Panics on unbalanced `begin_*`/`end_*` calls — shipping a
    /// truncated document to a JSON consumer is strictly worse than a
    /// loud failure, and this path is cold.
    pub fn finish(self) -> String {
        assert!(self.needs_comma.is_empty(), "unbalanced begin/end");
        self.out
    }
}

fn push_f64(value: f64, out: &mut String) {
    if value.is_finite() {
        // `{}` prints the shortest representation that round-trips,
        // which is always valid JSON for finite floats (e.g. "1", not
        // "1.0" — both are JSON numbers).
        out.push_str(&format!("{value}"));
    } else {
        out.push_str("null");
    }
}

pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_has_correct_commas() {
        let mut j = Json::new();
        j.begin_obj();
        j.field_str("name", "x");
        j.begin_obj_field("inner");
        j.field_int("a", 1)
            .field_num("b", 2.5)
            .field_bool("c", true);
        j.end_obj();
        j.begin_arr_field("items");
        j.begin_obj().field_int("i", 0).end_obj();
        j.begin_obj().field_int("i", 1).end_obj();
        j.end_arr();
        j.end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"x","inner":{"a":1,"b":2.5,"c":true},"items":[{"i":0},{"i":1}]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut j = Json::new();
        j.begin_obj();
        j.field_str("k\"ey", "a\\b\n\tc\u{1}");
        j.end_obj();
        assert_eq!(j.finish(), "{\"k\\\"ey\":\"a\\\\b\\n\\tc\\u0001\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut j = Json::new();
        j.begin_obj();
        j.field_num("nan", f64::NAN).field_num("inf", f64::INFINITY);
        j.field_num("int_like", 3.0);
        j.end_obj();
        assert_eq!(j.finish(), r#"{"nan":null,"inf":null,"int_like":3}"#);
    }
}
