//! Recursive-descent JSON parser — the reader half of the wire format.
//!
//! The daemon consumes one JSON object per request line from untrusted
//! clients, so unlike the writer ([`crate::jsonfmt`]) this side must be
//! defensive: every syntax error is a typed [`JsonError`] with a byte
//! offset (surfaced verbatim in `malformed_json` protocol errors),
//! nesting depth is capped so a pathological `[[[[…` line cannot blow
//! the connection thread's stack, and nothing here panics on any input.
//!
//! Objects preserve insertion order in a flat `Vec<(String, Value)>` —
//! request objects have a handful of keys, so linear [`Value::get`] is
//! faster than hashing, and duplicate keys resolve deterministically
//! (first wins, matching the common serde configuration).

use std::fmt;

/// Nesting cap: a request line is a flat object with at most a graph /
/// delta payload two levels down; 64 leaves two orders of magnitude of
/// headroom while keeping recursion trivially stack-safe.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first occurrence), if this is an
    /// object that has one.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly
    /// (protocol counts and ids must not be silently truncated floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialises back to compact JSON (RFC 8259 escaping, shortest
    /// round-trip numbers) — used by the client CLI to echo responses.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                crate::jsonfmt::escape_into(s, out);
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    crate::jsonfmt::escape_into(k, out);
                    out.push_str("\":");
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Why a line failed to parse, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended inside a value.
    UnexpectedEnd,
    /// A byte that cannot start or continue the expected production.
    UnexpectedChar(char),
    /// `\x` where `x` is not a JSON escape, or a bad `\uXXXX`.
    BadEscape,
    /// A number token that does not parse as a finite f64.
    BadNumber,
    /// A lone or mismatched UTF-16 surrogate in a `\u` escape.
    BadSurrogate,
    /// Nesting deeper than the parser's 64-level cap.
    TooDeep,
    /// Valid JSON value followed by trailing non-whitespace.
    TrailingData,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ErrorKind::UnexpectedEnd => "unexpected end of input".to_string(),
            ErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ErrorKind::BadEscape => "invalid escape sequence".to_string(),
            ErrorKind::BadNumber => "invalid number".to_string(),
            ErrorKind::BadSurrogate => "invalid unicode surrogate".to_string(),
            ErrorKind::TooDeep => format!("nesting deeper than {MAX_DEPTH}"),
            ErrorKind::TrailingData => "trailing data after value".to_string(),
        };
        write!(f, "{what} at byte {}", self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value spanning the whole input (surrounding
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> JsonError {
        JsonError {
            offset: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(got) if got == b => {
                self.pos += 1;
                Ok(())
            }
            Some(got) => Err(self.err(ErrorKind::UnexpectedChar(got as char))),
            None => Err(self.err(ErrorKind::UnexpectedEnd)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(ErrorKind::UnexpectedChar(self.bytes[self.pos] as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEnd)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(ErrorKind::UnexpectedChar(other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                Some(other) => return Err(self.err(ErrorKind::UnexpectedChar(other as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                Some(other) => return Err(self.err(ErrorKind::UnexpectedChar(other as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err(ErrorKind::UnexpectedEnd))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => {
                            self.pos -= 1;
                            return Err(self.err(ErrorKind::BadEscape));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err(ErrorKind::UnexpectedChar(b as char)));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err(ErrorKind::BadEscape))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            self.pos = self.bytes.len();
            return Err(self.err(ErrorKind::UnexpectedEnd));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err(ErrorKind::BadEscape))?;
        self.pos = end;
        Ok(hex)
    }

    /// After `\u`: one BMP scalar, or a UTF-16 surrogate pair.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        match hi {
            0xD800..=0xDBFF => {
                // High surrogate: a `\uXXXX` low surrogate must follow.
                if self.bytes[self.pos..].starts_with(b"\\u") {
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err(ErrorKind::BadSurrogate));
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(c).ok_or_else(|| self.err(ErrorKind::BadSurrogate))
                } else {
                    Err(self.err(ErrorKind::BadSurrogate))
                }
            }
            0xDC00..=0xDFFF => Err(self.err(ErrorKind::BadSurrogate)),
            c => char::from_u32(c).ok_or_else(|| self.err(ErrorKind::BadSurrogate)),
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(match self.peek() {
                Some(b) => self.err(ErrorKind::UnexpectedChar(b as char)),
                None => self.err(ErrorKind::UnexpectedEnd),
            });
        }
        // JSON forbids leading zeros ("01"); tolerate them here — the
        // value is unambiguous and strictness buys no safety.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err(ErrorKind::BadNumber));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err(ErrorKind::BadNumber));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            kind: ErrorKind::BadNumber,
        })?;
        if !n.is_finite() {
            // e.g. "1e999": syntactically fine, not representable.
            return Err(JsonError {
                offset: start,
                kind: ErrorKind::BadNumber,
            });
        }
        Ok(Value::Num(n))
    }
}

/// Length of the UTF-8 sequence starting with `first` (input comes from
/// a `&str`, so the byte is always a valid sequence start).
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Obj(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Num(0.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"op":"mine","n":3,"tags":["a",null,[1,2]],"deep":{"x":{}}}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("mine"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        let tags = v.get("tags").unwrap().as_arr().unwrap();
        assert_eq!(tags.len(), 3);
        assert_eq!(tags[1], Value::Null);
        assert!(v
            .get("deep")
            .unwrap()
            .get("x")
            .unwrap()
            .as_obj()
            .unwrap()
            .is_empty());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = parse(r#""a\"b\\c\/\n\tAé😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/\n\tAé😀"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("3.0").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse(r#"{"a":}"#).unwrap_err();
        assert_eq!(e.offset, 5);
        assert_eq!(e.kind, ErrorKind::UnexpectedChar('}'));
        assert_eq!(parse("").unwrap_err().kind, ErrorKind::UnexpectedEnd);
        assert_eq!(parse("{}x").unwrap_err().kind, ErrorKind::TrailingData);
        assert_eq!(parse(r#""\q""#).unwrap_err().kind, ErrorKind::BadEscape);
        assert_eq!(parse("1e999").unwrap_err().kind, ErrorKind::BadNumber);
        assert_eq!(
            parse(r#""\ud800x""#).unwrap_err().kind,
            ErrorKind::BadSurrogate
        );
        // Leading zeros are tolerated (unambiguous, see number()).
        assert_eq!(parse("01").unwrap(), Value::Num(1.0));
    }

    #[test]
    fn depth_bomb_is_rejected_not_overflowed() {
        let bomb = "[".repeat(100_000);
        assert_eq!(parse(&bomb).unwrap_err().kind, ErrorKind::TooDeep);
    }

    #[test]
    fn duplicate_keys_resolve_first_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn to_json_roundtrips() {
        let v = obj(&[
            ("s", Value::Str("a\"b\n".into())),
            ("n", Value::Num(1.5)),
            ("b", Value::Bool(false)),
            ("z", Value::Null),
            (
                "a",
                Value::Arr(vec![Value::Num(1.0), Value::Str("x".into())]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"s":"a\"b\n","n":1.5,"b":false,"z":null,"a":[1,"x"]}"#
        );
    }
}
