//! Live-daemon protocol tests: an in-process [`Server`] on a real Unix
//! socket, driven by raw line clients.
//!
//! Covers the robustness contract — malformed JSON, unknown ops,
//! oversized frames, bad deltas, expired deadlines — and the service
//! contract: daemon mining is bit-identical to a direct session run,
//! deltas patch warm state, eviction under a memory budget round-trips
//! through the store, and shutdown leaves no socket file behind.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use cspm_core::Miner;
use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
use cspm_graph::fixtures::{labelled_path, paper_example};
use cspm_graph::{write_graph, AttributedGraph};
use cspm_serve::json::{parse, Value};
use cspm_serve::server::dl_bits;
use cspm_serve::{Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cspm-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn graph_text(g: &AttributedGraph) -> String {
    let mut buf = Vec::new();
    write_graph(g, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

/// One protocol client: write a request line, read a response line.
struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(socket: &Path) -> Client {
        // The daemon binds before spawn() returns, so no retry loop.
        let stream = UnixStream::connect(socket).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send_raw(&mut self, line: &str) -> Value {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response line");
        assert!(line.ends_with('\n'), "daemon closed mid-response: {line:?}");
        parse(line.trim_end()).expect("response is valid JSON")
    }

    fn request(&mut self, line: &str) -> Value {
        let v = self.send_raw(line);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "expected ok response for {line}, got {}",
            v.to_json()
        );
        v
    }

    fn request_err(&mut self, line: &str) -> String {
        let v = self.send_raw(line);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(false),
            "expected error response for {line}, got {}",
            v.to_json()
        );
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .expect("typed error code")
            .to_string()
    }

    fn open_with_graph(&mut self, session: &str, g: &AttributedGraph) -> Value {
        let mut req = cspm_serve::Json::new();
        req.begin_obj();
        req.field_str("op", "open")
            .field_str("session", session)
            .field_str("graph", &graph_text(g));
        req.end_obj();
        self.request(&req.finish())
    }

    fn mine(&mut self, session: &str) -> Value {
        self.request(&format!(r#"{{"op":"mine","session":"{session}"}}"#))
    }
}

fn one_shot_bits(g: &AttributedGraph) -> String {
    let result = Miner::new().threads(1).build().mine(g);
    dl_bits(result.final_dl)
}

#[test]
fn daemon_mining_is_bit_identical_to_one_shot() {
    let dir = temp_dir("bits");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    let (g, _) = paper_example();

    let mut c = Client::connect(server.socket());
    let opened = c.open_with_graph("t1", &g);
    assert_eq!(opened.get("vertices").unwrap().as_u64(), Some(5));
    assert_eq!(opened.get("warm").unwrap().as_bool(), Some(false));

    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g).as_str()),
        "daemon DL must be bit-identical to a one-shot mine"
    );
    // Warm re-mine: same bits again.
    let again = c.mine("t1");
    assert_eq!(
        again.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g).as_str())
    );
    server.stop().unwrap();
}

#[test]
fn deltas_patch_warm_state_bit_identically() {
    let dir = temp_dir("delta");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    let (g, _) = paper_example();

    let mut c = Client::connect(server.socket());
    c.open_with_graph("t1", &g);
    c.mine("t1");

    // Grow through the protocol: one new "a" vertex linked to v1 and v5.
    let resp = c.request(
        r#"{"op":"delta","session":"t1","add_vertices":[["a"]],"add_edges":[[0,{"new":0}],[{"new":0},4]]}"#,
    );
    assert!(resp.get("dirty_centers").unwrap().as_u64().unwrap() > 0);

    // Reference: the same growth applied directly.
    let mut delta = GraphDelta::new();
    let v = delta.add_vertex(["a"]);
    delta.add_edge(DeltaVertex::Existing(0), v);
    delta.add_edge(v, DeltaVertex::Existing(4));
    let grown = delta.apply(&g).unwrap().graph;

    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&grown).as_str()),
        "warm delta-patched mining must equal a cold mine of the grown graph"
    );
    server.stop().unwrap();
}

#[test]
fn churn_deltas_keep_a_warm_tenant_bit_identical_to_one_shot() {
    let dir = temp_dir("churn");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    let (g, _) = paper_example();

    let mut c = Client::connect(server.socket());
    c.open_with_graph("t1", &g);
    c.mine("t1");

    // Churn round 1: drop an edge, swap a label, grow one vertex.
    let resp = c.request(
        r#"{"op":"delta","session":"t1","remove_edges":[[0,1]],"change_labels":[[4,"b","c"]],"add_vertices":[["a"]],"add_edges":[[{"new":0},2]]}"#,
    );
    assert!(resp.get("dirty_centers").unwrap().as_u64().unwrap() > 0);
    let mut d1 = GraphDelta::new();
    d1.remove_edge(0, 1);
    d1.change_label(4, "b", "c");
    let v = d1.add_vertex(["a"]);
    d1.add_edge(v, DeltaVertex::Existing(2));
    let after1 = d1.apply(&g).unwrap().graph;
    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&after1).as_str()),
        "churn round 1: warm mining must equal a cold mine of the evolved graph"
    );

    // Churn round 2: detach a vertex and strip the last "b" — the
    // vanished attribute forces the session down its rebuild fallback,
    // which must be just as bit-identical.
    c.request(r#"{"op":"delta","session":"t1","remove_vertices":[1],"remove_labels":[[3,"b"]]}"#);
    let mut d2 = GraphDelta::new();
    d2.remove_vertex(1);
    d2.remove_label(3, "b");
    let after2 = d2.apply(&after1).unwrap().graph;
    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&after2).as_str()),
        "churn round 2: rebuild fallback must stay bit-identical"
    );
    server.stop().unwrap();
}

#[test]
fn malformed_input_gets_typed_errors_and_never_wedges_the_connection() {
    let dir = temp_dir("errors");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    let (g, _) = paper_example();

    let mut c = Client::connect(server.socket());
    c.open_with_graph("t1", &g);

    assert_eq!(c.request_err("this is not json"), "malformed_json");
    assert_eq!(c.request_err("[1,2,3]"), "malformed_json");
    assert_eq!(c.request_err(r#"{"op":"explode"}"#), "unknown_op");
    assert_eq!(c.request_err(r#"{"op":"mine"}"#), "missing_field");
    assert_eq!(
        c.request_err(r#"{"op":"mine","session":42}"#),
        "invalid_field"
    );
    assert_eq!(
        c.request_err(r#"{"op":"mine","session":"../etc"}"#),
        "bad_name"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"ghost","add_labels":[[0,"x"]]}"#),
        "unknown_session"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","add_edges":[[0,{"new":9}]]}"#),
        "bad_delta"
    );
    // A delta naming a nonexistent base vertex fails at apply time —
    // still typed, and the session survives.
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","add_labels":[[999,"x"]]}"#),
        "bad_delta"
    );
    // Malformed churn ops: wrong arity, wrong types, `{"new": i}`
    // where only base ids are allowed, out-of-range targets.
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","remove_edges":[[0]]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","remove_edges":[[0,{"new":0}]]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","remove_labels":[[0,7]]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","remove_vertices":["v0"]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","remove_vertices":[999]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"delta","session":"t1","change_labels":[[0,"a"]]}"#),
        "bad_delta"
    );
    assert_eq!(
        c.request_err(r#"{"op":"open","session":"t1","graph":"v 0 a\n"}"#),
        "session_exists"
    );
    assert_eq!(
        c.request_err(r#"{"op":"open","session":"t2","graph":"w 0 oops\n"}"#),
        "bad_graph"
    );

    // Oversized frame: drained, answered, connection stays usable.
    let huge = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(9 * 1024 * 1024));
    assert_eq!(c.request_err(&huge), "oversized_frame");
    c.request(r#"{"op":"ping"}"#);

    // The session behind all that abuse still mines correctly.
    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g).as_str())
    );
    server.stop().unwrap();
}

#[test]
fn expired_deadline_cancels_cleanly_and_preserves_the_session() {
    let dir = temp_dir("deadline");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    // Enough structure that the merge loop runs many iterations.
    let g = labelled_path(120, 3);

    let mut c = Client::connect(server.socket());
    c.open_with_graph("t1", &g);
    assert_eq!(
        c.request_err(r#"{"op":"mine","session":"t1","deadline_ms":0}"#),
        "deadline_exceeded"
    );
    // The pristine database is untouched: a deadline-free mine still
    // produces the exact one-shot model.
    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g).as_str())
    );
    server.stop().unwrap();
}

#[test]
fn concurrent_tenants_mine_independently() {
    let dir = temp_dir("tenants");
    let mut config = ServerConfig::new(dir.join("d.sock"));
    config.threads = 2;
    let server = Server::spawn(config).unwrap();

    let handles: Vec<_> = (0..3)
        .map(|i| {
            let socket = server.socket().to_path_buf();
            std::thread::spawn(move || {
                let g = labelled_path(40 + 10 * i, 2 + i);
                let name = format!("tenant-{i}");
                let mut c = Client::connect(&socket);
                c.open_with_graph(&name, &g);
                let mined = c.mine(&name);
                let got = mined
                    .get("final_dl_bits")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string();
                assert_eq!(got, one_shot_bits(&g), "tenant {i} DL mismatch");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.stop().unwrap();
}

#[test]
fn eviction_under_budget_checkpoints_and_reopens_warm() {
    let dir = temp_dir("evict");
    let mut config = ServerConfig::new(dir.join("d.sock"));
    config.store_dir = Some(dir.join("store"));
    // A budget small enough that two resident tenants always exceed it.
    config.mem_budget = Some(1);
    let server = Server::spawn(config).unwrap();
    let (g, _) = paper_example();
    let g2 = labelled_path(30, 3);

    let mut c = Client::connect(server.socket());
    let opened = c.open_with_graph("keep", &g2);
    assert_eq!(opened.get("durable").unwrap().as_bool(), Some(true));
    // Opening a second tenant trips the budget; "keep" is the LRU one.
    c.open_with_graph("fresh", &g);
    let stats = c.request(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("sessions").unwrap().as_u64(), Some(1));
    assert!(
        stats
            .get("counters")
            .unwrap()
            .get("evictions")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );

    // The evicted tenant is stored, not lost…
    let s = c.request(r#"{"op":"stats","session":"keep"}"#);
    assert_eq!(s.get("resident").unwrap().as_bool(), Some(false));
    assert_eq!(s.get("stored").unwrap().as_bool(), Some(true));

    // …and a graph-less open warm-restores it, mining bit-identically.
    let reopened = c.request(r#"{"op":"open","session":"keep"}"#);
    assert_eq!(reopened.get("warm").unwrap().as_bool(), Some(true));
    assert_eq!(
        reopened.get("vertices").unwrap().as_u64(),
        Some(30),
        "warm reopen must restore the checkpointed graph"
    );
    let mined = c.mine("keep");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g2).as_str())
    );
    server.stop().unwrap();
}

#[test]
fn close_releases_and_durable_close_survives_reopen() {
    let dir = temp_dir("close");
    let mut config = ServerConfig::new(dir.join("d.sock"));
    config.store_dir = Some(dir.join("store"));
    let server = Server::spawn(config).unwrap();
    let (g, _) = paper_example();

    let mut c = Client::connect(server.socket());
    c.open_with_graph("t1", &g);
    let closed = c.request(r#"{"op":"close","session":"t1"}"#);
    assert_eq!(closed.get("checkpointed").unwrap().as_bool(), Some(true));
    assert_eq!(
        c.request_err(r#"{"op":"mine","session":"t1"}"#),
        "unknown_session"
    );
    let reopened = c.request(r#"{"op":"open","session":"t1"}"#);
    assert_eq!(reopened.get("warm").unwrap().as_bool(), Some(true));
    let mined = c.mine("t1");
    assert_eq!(
        mined.get("final_dl_bits").unwrap().as_str(),
        Some(one_shot_bits(&g).as_str())
    );
    server.stop().unwrap();
}

#[test]
fn shutdown_op_drains_and_removes_the_socket() {
    let dir = temp_dir("shutdown");
    let server = Server::spawn(ServerConfig::new(dir.join("d.sock"))).unwrap();
    let socket = server.socket().to_path_buf();

    let mut c = Client::connect(&socket);
    c.request(r#"{"op":"ping"}"#);
    c.request(r#"{"op":"shutdown"}"#);
    server.stop().unwrap();
    assert!(!socket.exists(), "shutdown must remove the socket file");
    assert!(UnixStream::connect(&socket).is_err());
}

#[test]
fn stale_socket_file_is_replaced_on_bind() {
    let dir = temp_dir("stale");
    let socket = dir.join("d.sock");
    // A dead daemon's leftover: a socket file nobody is accepting on.
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists());
    let server = Server::spawn(ServerConfig::new(socket.clone())).unwrap();
    let mut c = Client::connect(&socket);
    c.request(r#"{"op":"ping"}"#);
    server.stop().unwrap();
}
