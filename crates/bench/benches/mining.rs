//! Criterion micro-benchmarks for the mining core: inverted-database
//! construction, pair-gain evaluation, merging, and the two CSPM
//! variants end to end.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cspm_core::{cspm_basic, cspm_partial, CoresetMode, CspmConfig, GainPolicy, InvertedDb};
use cspm_datasets::{dblp_like, usflight_like, Scale};

fn bench_inverted_db(c: &mut Criterion) {
    let mut g = c.benchmark_group("inverted_db_build");
    for (name, d) in [
        ("dblp_tiny", dblp_like(Scale::Tiny, 1)),
        ("dblp_small", dblp_like(Scale::Small, 1)),
        ("usflight_paper", usflight_like(Scale::Paper, 1)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                InvertedDb::build(
                    black_box(&d.graph),
                    CoresetMode::SingleValue,
                    GainPolicy::Total,
                )
            })
        });
    }
    g.finish();
}

fn bench_gain_and_merge(c: &mut Criterion) {
    let d = dblp_like(Scale::Small, 1);
    let db = InvertedDb::build(&d.graph, CoresetMode::SingleValue, GainPolicy::Total);
    let pairs = db.sharing_pairs();
    c.bench_function("pair_gain_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(x, y) in pairs.iter().take(256) {
                acc += db.pair_gain(black_box(x), black_box(y));
            }
            acc
        })
    });
    // Merge the best pair, starting from a fresh clone each iteration.
    let best = pairs
        .iter()
        .copied()
        .max_by(|&(a, b), &(x, y)| db.pair_gain(a, b).partial_cmp(&db.pair_gain(x, y)).unwrap())
        .expect("non-empty candidate set");
    c.bench_function("merge_best_pair", |b| {
        b.iter_batched(
            || db.clone(),
            |mut fresh| fresh.merge(black_box(best.0), black_box(best.1)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cspm_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("cspm_end_to_end");
    g.sample_size(10);
    let tiny = dblp_like(Scale::Tiny, 1);
    g.bench_function("basic_dblp_tiny", |b| {
        b.iter(|| cspm_basic(black_box(&tiny.graph), CspmConfig::default()))
    });
    g.bench_function("partial_dblp_tiny", |b| {
        b.iter(|| cspm_partial(black_box(&tiny.graph), CspmConfig::default()))
    });
    let small = dblp_like(Scale::Small, 1);
    g.bench_function("partial_dblp_small", |b| {
        b.iter(|| cspm_partial(black_box(&small.graph), CspmConfig::default()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_inverted_db,
    bench_gain_and_merge,
    bench_cspm_variants
);
criterion_main!(benches);
