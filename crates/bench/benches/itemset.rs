//! Criterion micro-benchmarks for the itemset substrate: Eclat mining,
//! Krimp and SLIM compression.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cspm_itemset::{eclat, krimp, slim, KrimpConfig, SlimConfig, TransactionDb};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A transaction database with planted patterns plus noise.
fn synthetic_db(n_transactions: usize, n_items: u32, seed: u64) -> TransactionDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_transactions);
    for _ in 0..n_transactions {
        let mut t = Vec::new();
        // Planted block: items 0..3 co-occur 40% of the time.
        if rng.gen::<f64>() < 0.4 {
            t.extend_from_slice(&[0, 1, 2]);
        }
        for _ in 0..rng.gen_range(1..5) {
            t.push(rng.gen_range(0..n_items));
        }
        rows.push(t);
    }
    TransactionDb::from_rows(rows)
}

fn bench_eclat(c: &mut Criterion) {
    let db = synthetic_db(500, 40, 7);
    let mut g = c.benchmark_group("eclat");
    for minsup in [5u32, 20, 80] {
        g.bench_function(format!("minsup_{minsup}"), |b| {
            b.iter(|| eclat(black_box(&db), minsup))
        });
    }
    g.finish();
}

fn bench_compressors(c: &mut Criterion) {
    let db = synthetic_db(300, 30, 7);
    let mut g = c.benchmark_group("compressors");
    g.sample_size(10);
    g.bench_function("krimp", |b| {
        b.iter(|| {
            krimp(
                black_box(&db),
                KrimpConfig {
                    min_support: 10,
                    prune: false,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("slim", |b| {
        b.iter(|| slim(black_box(&db), SlimConfig::default()))
    });
    g.finish();
}

fn bench_cover(c: &mut Criterion) {
    let db = synthetic_db(1000, 50, 7);
    let res = slim(
        &db,
        SlimConfig {
            max_accepted: Some(8),
            ..Default::default()
        },
    );
    c.bench_function("code_table_cover", |b| {
        b.iter(|| res.code_table.cover(black_box(&db)))
    });
}

criterion_group!(benches, bench_eclat, bench_compressors, bench_cover);
criterion_main!(benches);
