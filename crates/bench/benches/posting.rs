//! Microbenchmarks for the adaptive posting-row kernels: every
//! representation pairing (sparse×sparse two-pointer and galloping,
//! sparse×bitmap word probes, bitmap×bitmap word loops) across a
//! density × size grid, for all four hot set operations.
//!
//! Row shapes are chosen against the store's flip thresholds
//! (`BITMAP_MIN_LEN` = 128 elements, flip-in at ≥ 1/8 density), so the
//! pairing in each bench name reflects the layout the store actually
//! picks. CI runs this with `CSPM_BENCH_JSON` set and uploads the
//! resulting lines as an artifact next to the engine suite.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cspm_core::PostingStore;

/// A sorted row of `len` ids spaced `stride` apart starting at `base`.
/// Density is `1/stride` bits, so `stride` < 8 lands past the bitmap
/// flip-in threshold for `len` ≥ 128 and `stride` ≥ 16 stays sparse.
fn row(base: u32, len: usize, stride: u32) -> Vec<u32> {
    (0..len as u32).map(|i| base + i * stride).collect()
}

/// The grid: `(pairing, a, b)`. The `b` rows are offset by half a
/// stride on odd elements so roughly half of each pair intersects —
/// kernels see real hit/miss mixes, not all-hit or all-miss edges.
fn grid() -> Vec<(&'static str, Vec<u32>, Vec<u32>)> {
    let mut cases = Vec::new();
    for &len in &[512usize, 4096] {
        let offset =
            |s: u32| -> Vec<u32> { (0..len as u32).map(|i| i * s + (i % 2) * (s / 2)).collect() };
        // stride 64 → 1/64 density: sparse. stride 2 → 1/2: bitmap.
        // stride 8 → exactly the 1/8 flip-in boundary: bitmap.
        cases.push(("sparse_sparse", row(0, len, 64), offset(64)));
        cases.push(("sparse_bitmap", row(0, len, 64), offset(2)));
        cases.push(("bitmap_bitmap", row(0, len, 2), offset(2)));
        cases.push(("bitmap_boundary", row(0, len, 8), offset(8)));
    }
    // ≥8× length skew between two sparse rows: the galloping path.
    cases.push(("sparse_sparse_skew", row(0, 64, 64), row(0, 4096, 64)));
    cases
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("posting_kernels");
    g.sample_size(20);
    for (pairing, a, b) in grid() {
        let tag = format!("{pairing}/a{}_b{}", a.len(), b.len());
        let mut store = PostingStore::new();
        let (ra, rb) = (store.insert(&a), store.insert(&b));

        g.bench_function(format!("intersect_count/{tag}"), |bench| {
            bench.iter(|| black_box(&store).intersect_count(ra, rb))
        });
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        g.bench_function(format!("intersect_into/{tag}"), |bench| {
            bench.iter(|| {
                black_box(&store).intersect_into(ra, rb, &mut out);
                out.len()
            })
        });
        // The mutating kernels run on a fresh clone per iteration so
        // every measurement sees the same starting layout (difference
        // can demote a bitmap; union can flip a sparse row in).
        g.bench_function(format!("difference/{tag}"), |bench| {
            bench.iter_batched(
                || store.clone(),
                |mut s| s.difference(ra, black_box(&b)),
                BatchSize::LargeInput,
            )
        });
        g.bench_function(format!("union_in_place/{tag}"), |bench| {
            bench.iter_batched(
                || store.clone(),
                |mut s| s.union_in_place(ra, black_box(&b)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
