//! Criterion benchmarks for the unified mining engine: the flat
//! posting-list store against the seed's HashMap-row baseline on an
//! identical merge schedule, plus the engine's two scheduling policies
//! end to end.
//!
//! Acceptance gate for the engine PR: `posting_store/flat/*` must be at
//! least as fast as `posting_store/hashmap_rows/*` on the small-scale
//! generated datasets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cspm_bench::enginebench::MergeWorkload;
use cspm_core::engine::{mine_with_policy, run_on_db, SchedulePolicy};
use cspm_core::{CoresetMode, CspmConfig, GainPolicy, InvertedDb};
use cspm_datasets::{dblp_like, pokec_like, Scale};

fn bench_posting_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("posting_store");
    g.sample_size(5);
    for (name, d) in [
        ("dblp_small", dblp_like(Scale::Small, 1)),
        ("pokec_tiny", pokec_like(Scale::Tiny, 1)),
        ("pokec_small", pokec_like(Scale::Small, 1)),
    ] {
        let w = MergeWorkload::from_graph(&d.graph);
        assert_eq!(
            w.replay_flat(),
            w.replay_hashmap(),
            "backends must do identical work"
        );
        g.bench_function(format!("flat/{name}"), |b| {
            b.iter(|| black_box(&w).replay_flat())
        });
        g.bench_function(format!("hashmap_rows/{name}"), |b| {
            b.iter(|| black_box(&w).replay_hashmap())
        });
    }
    g.finish();
}

fn bench_merge_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_loop");
    let d = dblp_like(Scale::Small, 1);
    let db = InvertedDb::build(&d.graph, CoresetMode::SingleValue, GainPolicy::Total);
    for (name, policy) in [
        ("incremental", SchedulePolicy::Incremental),
        ("full_regeneration", SchedulePolicy::FullRegeneration),
    ] {
        g.bench_function(name, |b| {
            // Clone outside the timing: the measurement tracks the
            // merge loop, not InvertedDb::clone.
            b.iter_batched(
                || db.clone(),
                |db| run_on_db(black_box(db), policy, CspmConfig::default()),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_end_to_end");
    let d = pokec_like(Scale::Tiny, 1);
    g.bench_function("partial_pokec_tiny", |b| {
        b.iter(|| {
            mine_with_policy(
                black_box(&d.graph),
                SchedulePolicy::Incremental,
                CspmConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_posting_store,
    bench_merge_loop,
    bench_end_to_end
);
criterion_main!(benches);
