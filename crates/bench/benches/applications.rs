//! Criterion micro-benchmarks for the application layers: the CSPM
//! scoring module (Algorithm 5), score fusion, the alarm pipeline
//! stages, and the nn substrate kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cspm_alarm::{
    acor_rank, build_window_graph, simulate, RuleLibrary, SimConfig, TelecomTopology,
};
use cspm_completion::{fuse_scores, CompletionTask, CspmScorer};
use cspm_datasets::{citation_completion, CompletionKind, Scale};
use cspm_nn::{Matrix, SparseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_scoring(c: &mut Criterion) {
    let d = citation_completion(CompletionKind::Dblp, Scale::Tiny, 3);
    let task = CompletionTask::split(&d.graph, 0.4, 9);
    let scorer = CspmScorer::fit(&task);
    c.bench_function("alg5_score_all", |b| {
        b.iter(|| scorer.score_all(black_box(&task)))
    });
    let scores = scorer.score_all(&task);
    let model = Matrix::zeros(scores.rows(), scores.cols());
    c.bench_function("fig7_fuse_scores", |b| {
        b.iter(|| fuse_scores(black_box(&model), black_box(&scores)))
    });
}

fn bench_alarm_pipeline(c: &mut Criterion) {
    let topo = TelecomTopology::generate(3, 8, 40, 5);
    let rules = RuleLibrary::generate(5, 12, 40, 6);
    let cfg = SimConfig {
        n_events: 5000,
        n_windows: 50,
        ..Default::default()
    };
    c.bench_function("alarm_simulate_5k", |b| {
        b.iter(|| simulate(black_box(&topo), black_box(&rules), &cfg))
    });
    let events = simulate(&topo, &rules, &cfg);
    c.bench_function("alarm_window_graph", |b| {
        b.iter(|| build_window_graph(black_box(&topo), black_box(&events), cfg.window_ms))
    });
    c.bench_function("alarm_acor_rank", |b| {
        b.iter(|| acor_rank(black_box(&topo), black_box(&events), cfg.window_ms))
    });
}

fn bench_nn_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Matrix::xavier(128, 64, &mut rng);
    let b2 = Matrix::xavier(64, 128, &mut rng);
    c.bench_function("matmul_128x64x128", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&b2)))
    });
    let nbrs: Vec<Vec<u32>> = (0..256u32)
        .map(|i| vec![(i + 1) % 256, (i + 7) % 256, (i + 31) % 256])
        .collect();
    let p = SparseMatrix::normalized_adjacency(&nbrs, 1.0);
    let x = Matrix::xavier(256, 64, &mut rng);
    c.bench_function("spmm_256x64", |b| {
        b.iter(|| black_box(&p).spmm(black_box(&x)))
    });
}

criterion_group!(
    benches,
    bench_scoring,
    bench_alarm_pipeline,
    bench_nn_kernels
);
criterion_main!(benches);
