//! Shared harness utilities for the experiment binaries.
//!
//! Every table and figure of the paper has a dedicated binary in
//! `src/bin/`; see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded outcomes. All binaries accept:
//!
//! * `--paper` — run at the paper's Table II scale (slow; Pokec is 1.6M
//!   vertices). Default is the `Small` scale with identical structure.
//! * `--seed <u64>` — generator seed (default 2022).
//!
//! `bench_engine` additionally accepts `--input <dump>` (with the
//! `real-data` feature) to benchmark real dataset fixtures, recording
//! the parse phase separately from the merge loops; `bench_compare`
//! gates CI on merge-loop regressions against the committed
//! `BENCH_engine.json`.
//!
//! # Example
//!
//! ```
//! use cspm_bench::{fmt_secs, HarnessArgs};
//!
//! let args = HarnessArgs::default();
//! assert_eq!(args.seed, 2022);
//! assert_eq!(fmt_secs(0.25), "0.250s");
//! assert_eq!(fmt_secs(150.0), "2.5min");
//! ```

use cspm_datasets::Scale;

pub mod enginebench;

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Requested generation scale.
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 2022,
        }
    }
}

/// Parses `--paper`, `--tiny` and `--seed N` from `std::env::args`.
pub fn parse_args() -> HarnessArgs {
    let mut out = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper" => out.scale = Scale::Paper,
            "--tiny" => out.scale = Scale::Tiny,
            "--seed" => {
                out.seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            other => panic!("unknown argument '{other}' (expected --paper, --tiny, --seed N)"),
        }
    }
    out
}

/// Prints a horizontal rule sized to `width`.
pub fn hr(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.3}s", s)
    } else if s < 120.0 {
        format!("{:.2}s", s)
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::default();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 2022);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.5), "0.500s");
        assert_eq!(fmt_secs(5.0), "5.00s");
        assert_eq!(fmt_secs(180.0), "3.0min");
    }
}
