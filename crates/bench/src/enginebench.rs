//! Storage-layer benchmark harness for the mining engine.
//!
//! The PR that introduced the flat [`PostingStore`] replaced the seed's
//! `HashMap<LeafsetId, Vec<VertexId>>` row store, in which every merge
//! allocated fresh vectors for intersections and unions. To measure
//! exactly that swap (and to keep the old shape honest as a baseline),
//! this module extracts a *storage-agnostic merge workload* from a real
//! inverted database — the initial rows plus a deterministic merge
//! schedule — and replays the §IV-E storage mutations on either backend:
//!
//! * [`MergeWorkload::replay_flat`] — arena spans, in-place difference
//!   and union, free-list reuse;
//! * [`MergeWorkload::replay_hashmap`] — the seed's allocation-heavy
//!   row shape, one heap `Vec` per row, rebuilt on every union.
//!
//! Both replays perform the identical logical work and return the same
//! checksum, so their wall-clock difference isolates the storage layer.

use std::collections::HashMap;

use cspm_core::positions::{difference_inplace, intersect, union};
use cspm_core::{CoresetMode, GainPolicy, InvertedDb, PostingStore};
use cspm_graph::{AttributedGraph, VertexId};

/// A storage-agnostic replay of the merge loop's row mutations.
#[derive(Debug, Clone)]
pub struct MergeWorkload {
    /// Initial rows: `(coreset, leafset, sorted positions)`.
    rows: Vec<(u32, u32, Vec<VertexId>)>,
    /// Merge schedule: `(x, y, union leafset)` triples.
    schedule: Vec<(u32, u32, u32)>,
    /// Number of coresets.
    n_coresets: usize,
}

impl MergeWorkload {
    /// Builds the workload from a graph: the initial inverted database's
    /// rows plus a schedule that merges every initially-sharing leafset
    /// pair in deterministic order.
    pub fn from_graph(g: &AttributedGraph) -> Self {
        let db = InvertedDb::build(g, CoresetMode::SingleValue, GainPolicy::Total);
        let rows: Vec<(u32, u32, Vec<VertexId>)> =
            db.iter_rows().map(|(e, l, p)| (e, l, p.to_vec())).collect();
        // Union ids are hashed into a small bucket space above the
        // existing leafset ids: distinct pairs can land on the same
        // union row, so the replay exercises union *growth* (in-place
        // merge and relocation), not just union creation. Bucket ids
        // never collide with scheduled parents (those all pre-exist).
        let base = rows.iter().map(|&(_, l, _)| l).max().unwrap_or(0) + 1;
        let schedule = db
            .sharing_pairs()
            .into_iter()
            .map(|(x, y)| (x, y, base + (x.wrapping_mul(31).wrapping_add(y)) % 64))
            .collect();
        Self {
            rows,
            schedule,
            n_coresets: db.coreset_count(),
        }
    }

    /// Total scheduled merges.
    pub fn merge_count(&self) -> usize {
        self.schedule.len()
    }

    /// Replays the schedule on the flat posting-list arena. Returns a
    /// position-sum checksum of the surviving rows.
    pub fn replay_flat(&self) -> u64 {
        let mut store =
            PostingStore::with_capacity(self.rows.iter().map(|(_, _, p)| p.len()).sum());
        let mut maps: Vec<HashMap<u32, cspm_core::RowId>> = vec![HashMap::new(); self.n_coresets];
        for (e, l, p) in &self.rows {
            maps[*e as usize].insert(*l, store.insert(p));
        }
        let mut common = Vec::new();
        for &(x, y, n) in &self.schedule {
            for map in maps.iter_mut() {
                // Short-circuit lookups, mirrored by `replay_hashmap` —
                // the drivers must only differ in the storage layer.
                let Some(&rx) = map.get(&x) else { continue };
                let Some(&ry) = map.get(&y) else { continue };
                store.intersect_into(rx, ry, &mut common);
                if common.is_empty() {
                    continue;
                }
                for (parent, row) in [(x, rx), (y, ry)] {
                    if store.difference(row, &common) == 0 {
                        map.remove(&parent);
                        store.release(row);
                    }
                }
                match map.get(&n) {
                    Some(&rn) => {
                        store.union_in_place(rn, &common);
                    }
                    None => {
                        let rn = store.insert(&common);
                        map.insert(n, rn);
                    }
                }
            }
        }
        maps.iter()
            .flat_map(|m| m.values())
            .map(|&r| store.positions(r).iter().map(|&v| v as u64).sum::<u64>())
            .sum()
    }

    /// Replays the schedule on the seed's `HashMap<LeafsetId, Vec<_>>`
    /// row shape (fresh allocations per intersection and union), for
    /// comparison. Returns the same checksum as [`Self::replay_flat`].
    pub fn replay_hashmap(&self) -> u64 {
        let mut maps: Vec<HashMap<u32, Vec<VertexId>>> = vec![HashMap::new(); self.n_coresets];
        for (e, l, p) in &self.rows {
            maps[*e as usize].insert(*l, p.clone());
        }
        for &(x, y, n) in &self.schedule {
            for map in maps.iter_mut() {
                let common = {
                    let Some(px) = map.get(&x) else { continue };
                    let Some(py) = map.get(&y) else { continue };
                    intersect(px, py)
                };
                if common.is_empty() {
                    continue;
                }
                for parent in [x, y] {
                    let row = map.get_mut(&parent).expect("parent row present");
                    difference_inplace(row, &common);
                    if row.is_empty() {
                        map.remove(&parent);
                    }
                }
                match map.get_mut(&n) {
                    Some(row) => *row = union(row, &common),
                    None => {
                        map.insert(n, common);
                    }
                }
            }
        }
        maps.iter()
            .flat_map(|m| m.values())
            .map(|row| row.iter().map(|&v| v as u64).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_datasets::{dblp_like, Scale};

    #[test]
    fn backends_do_identical_work() {
        let d = dblp_like(Scale::Tiny, 7);
        let w = MergeWorkload::from_graph(&d.graph);
        assert!(w.merge_count() > 0);
        assert_eq!(w.replay_flat(), w.replay_hashmap());
    }

    #[test]
    fn paper_example_checksums_agree() {
        let (g, _) = cspm_graph::fixtures::paper_example();
        let w = MergeWorkload::from_graph(&g);
        assert_eq!(w.replay_flat(), w.replay_hashmap());
    }
}
