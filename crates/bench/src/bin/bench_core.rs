//! Regenerates `BENCH_core.json`: end-to-end mining runs per dataset ×
//! algorithm × posting backend, proving the adaptive posting layout is
//! a pure speedup — every backend pair must report bit-identical merge
//! counts and description lengths.
//!
//! ```text
//! bench_core [--tiny|--paper] [--seed N] [--threads N] [--out FILE]
//! ```
//!
//! Backends are the two [`PostingPolicy`] values: `sparse` forces
//! sorted id slices everywhere (the pre-adaptive layout), `adaptive`
//! lets dense rows flip to chunked bitmaps. Algorithms are the paper's
//! two variants; `basic` runs with delegation disabled so the row
//! times genuine full-regeneration sweeps (Algorithm 1). The headline
//! records the adaptive-over-sparse speedup on the largest dataset's
//! merge-heavy run plus the cross-backend identity checks that gate it.

use std::io::Write as _;
use std::time::Instant;

use cspm_bench::fmt_secs;
use cspm_core::engine::{run_on_db, SchedulePolicy};
use cspm_core::{CoresetMode, CspmConfig, CspmResult, InvertedDb, PostingPolicy};
use cspm_datasets::{dblp_like, pokec_like, usflight_like, Dataset, Scale};

struct Run {
    dataset: String,
    algorithm: &'static str,
    backend: &'static str,
    wall_secs: f64,
    mine_secs: f64,
    result: CspmResult,
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 2022u64;
    let mut threads = 1usize;
    let mut out_path = "BENCH_core.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper" => scale = Scale::Paper,
            "--tiny" => scale = Scale::Tiny,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N")
            }
            "--out" => out_path = args.next().expect("--out FILE"),
            other => panic!("unknown argument '{other}'"),
        }
    }

    let datasets: Vec<Dataset> = vec![
        pokec_like(
            if scale == Scale::Paper {
                Scale::Small
            } else {
                scale
            },
            seed,
        ),
        dblp_like(scale, seed),
        usflight_like(scale, seed),
    ];
    let config = CspmConfig::default().with_threads(threads);

    let mut runs: Vec<Run> = Vec::new();
    for d in &datasets {
        let (n, m, a) = d.statistics();
        println!("== {} ({n} vertices, {m} edges, {a} attrs) ==", d.name);
        for (algorithm, policy) in [
            ("basic", SchedulePolicy::FullRegeneration),
            ("partial", SchedulePolicy::Incremental),
        ] {
            for (backend, posting) in [
                ("sparse", PostingPolicy::SparseOnly),
                ("adaptive", PostingPolicy::Adaptive),
            ] {
                // Honour the requested policy: a delegated "basic" row
                // would just re-measure the incremental schedule.
                let config = CspmConfig {
                    full_regen_max_pairs: None,
                    ..config
                };
                let wall = Instant::now();
                let db = InvertedDb::build_with_posting(
                    &d.graph,
                    CoresetMode::SingleValue,
                    config.gain_policy,
                    posting,
                );
                let mine = Instant::now();
                let result = run_on_db(db, policy, config);
                let mine_secs = mine.elapsed().as_secs_f64();
                let wall_secs = wall.elapsed().as_secs_f64();
                let p = result.stats.posting;
                println!(
                    "  {algorithm}/{backend}: {} ({} merges, {} bitmap rows live)",
                    fmt_secs(mine_secs),
                    result.merges,
                    p.bitmap_rows,
                );
                runs.push(Run {
                    dataset: d.name.to_string(),
                    algorithm,
                    backend,
                    wall_secs,
                    mine_secs,
                    result,
                });
            }
        }
    }

    // The backends must be indistinguishable in everything but time.
    let mut identical = true;
    for pair in runs.chunks(2) {
        let (s, a) = (&pair[0], &pair[1]);
        assert_eq!(
            (s.dataset.as_str(), s.algorithm),
            (a.dataset.as_str(), a.algorithm)
        );
        identical &= s.result.merges == a.result.merges
            && s.result.final_dl.to_bits() == a.result.final_dl.to_bits()
            && s.result.stats.total_gain_evals == a.result.stats.total_gain_evals
            && s.result.model.len() == a.result.model.len();
    }
    assert!(identical, "adaptive backend changed the mined model");

    // Headline: adaptive-over-sparse on the largest dataset's basic
    // (merge-heavy) run; the first four runs are Pokec basic/partial.
    let speedup = runs[0].mine_secs / runs[1].mine_secs;
    println!(
        "headline: adaptive {:.3}x over sparse on {} basic",
        speedup, runs[0].dataset
    );

    let mut f = std::fs::File::create(&out_path).expect("can create output file");
    writeln!(f, "{{").unwrap();
    writeln!(
        f,
        "  \"meta\": {{\"bench\": \"bench_core\", \"scale\": \"{}\", \"seed\": {seed}, \"threads\": {threads}}},",
        format!("{scale:?}").to_lowercase()
    )
    .unwrap();
    writeln!(
        f,
        "  \"headline\": {{\"dataset\": \"{}\", \"algorithm\": \"basic\", \"speedup_adaptive_over_sparse\": {:.4}, \"identical_final_dl\": {identical}, \"identical_merges\": {identical}}},",
        runs[0].dataset, speedup
    )
    .unwrap();
    writeln!(f, "  \"runs\": [").unwrap();
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let p = r.result.stats.posting;
        writeln!(
            f,
            "    {{\"dataset\": \"{}\", \"algorithm\": \"{}\", \"backend\": \"{}\", \"wall_secs\": {:.6}, \"mine_secs\": {:.6}, \"gain_evals\": {}, \"merges\": {}, \"initial_dl\": {:.6}, \"final_dl\": {:.6}, \"astars\": {}, \"bitmap_rows\": {}, \"flips_to_bitmap\": {}}}{comma}",
            r.dataset,
            r.algorithm,
            r.backend,
            r.wall_secs,
            r.mine_secs,
            r.result.stats.total_gain_evals,
            r.result.merges,
            r.result.initial_dl,
            r.result.final_dl,
            r.result.model.len(),
            p.bitmap_rows,
            p.flips_to_bitmap,
        )
        .unwrap();
    }
    writeln!(f, "  ]").unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote {out_path}");
}
