//! Ablation A2 (DESIGN.md §4): what the rdict partial-update heuristic
//! costs and buys.
//!
//! CSPM-Partial re-evaluates only rdict-derived pairs after each merge
//! (§V); this binary quantifies (a) the saved gain evaluations, (b) the
//! wall-clock speedup, and (c) the quality gap (final DL and merge count
//! vs CSPM-Basic's exhaustive regeneration).
//!
//! ```text
//! cargo run --release -p cspm-bench --bin ablation_partial_updates
//! ```

use cspm_bench::{fmt_secs, hr, parse_args};
use cspm_core::{cspm_basic, cspm_partial, CspmConfig};
use cspm_datasets::benchmark_suite;

fn main() {
    let args = parse_args();
    println!(
        "Ablation: partial updates (Basic vs Partial), scale {:?}, seed {}\n",
        args.scale, args.seed
    );
    println!(
        "{:<22} {:>9} {:>8} {:>13} {:>12} {:>10} {:>9}",
        "Dataset", "variant", "merges", "gain evals", "final DL", "time", "DL gap%"
    );
    hr(92);
    for d in benchmark_suite(args.scale, args.seed) {
        // CSPM-Basic is quadratic in candidates per iteration; on the
        // Pokec-scale graph it is reported as "-" in the paper too.
        if d.graph.vertex_count() > 10_000 {
            continue;
        }
        let t = std::time::Instant::now();
        let basic = cspm_basic(&d.graph, CspmConfig::instrumented());
        let tb = t.elapsed().as_secs_f64();
        let t = std::time::Instant::now();
        let partial = cspm_partial(&d.graph, CspmConfig::instrumented());
        let tp = t.elapsed().as_secs_f64();
        let gap = (partial.final_dl / basic.final_dl - 1.0) * 100.0;
        println!(
            "{:<22} {:>9} {:>8} {:>13} {:>12.1} {:>10} {:>9}",
            d.name,
            "Basic",
            basic.merges,
            basic.stats.total_gain_evals,
            basic.final_dl,
            fmt_secs(tb),
            "0.00"
        );
        println!(
            "{:<22} {:>9} {:>8} {:>13} {:>12.1} {:>10} {:>9.2}",
            d.name,
            "Partial",
            partial.merges,
            partial.stats.total_gain_evals,
            partial.final_dl,
            fmt_secs(tp),
            gap
        );
    }
    println!("\nreading: Partial trades a small DL gap (rdict misses some late");
    println!("candidates) for far fewer gain evaluations — the §V optimization.");
}
