//! Load driver for the `cspm serve` daemon: N tenants hammering an
//! in-process server with a delta/mine mix, recording round-trip
//! latency percentiles and throughput into `BENCH_serve.json` (the
//! `BENCH_engine.json` shape, suite `"serve"`).
//!
//! ```text
//! bench_serve [--tenants N] [--rounds R] [--tiny|--small] [--seed N]
//!             [--threads N] [--out FILE]
//! ```
//!
//! Each tenant runs on its own OS thread with its own connection:
//! `open` (inline graph text), then R rounds of `delta` + `mine`. Every
//! tenant also evolves a local replica of its graph through the *same*
//! wire-decoded deltas and cold-mines the final shape with the engine
//! the daemon uses (single scoring thread); the daemon's last
//! `final_dl_bits` digest must match bit-for-bit — a load test that
//! silently mined garbage would be worse than none.
//!
//! Records are named `serve/<op>_p{50,99}` (client-measured round
//! trips) and `serve/daemon_<op>_p{50,99}` (daemon-side, recovered from
//! the `metrics` op's `cspm_serve_request_seconds` histogram buckets —
//! parse-to-rendered-response on the server's own clock, free of socket
//! scheduling), plus `serve/req_interval_mean` (inverse throughput, so
//! smaller is better like every other timing). `bench_compare` reports
//! `serve/…` records but never gates on them: round-trip latency on a
//! shared 1-core CI runner is dominated by scheduling jitter, not the
//! merge loop.

use std::io::{BufRead as _, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::time::Instant;

use cspm_core::Miner;
use cspm_datasets::{dblp_like, Scale};
use cspm_graph::write_graph;
use cspm_serve::json::{parse, Value};
use cspm_serve::proto::delta_from_value;
use cspm_serve::server::dl_bits;
use cspm_serve::{Server, ServerConfig};

struct OneRequest {
    op: &'static str,
    secs: f64,
}

/// One tenant's whole conversation; returns per-request timings.
/// Panics (failing the bench) on any protocol error or digest mismatch.
fn drive_tenant(
    socket: &std::path::Path,
    tenant: usize,
    scale: Scale,
    seed: u64,
    rounds: usize,
) -> Vec<OneRequest> {
    let name = format!("tenant{tenant}");
    let mut local = dblp_like(scale, seed + tenant as u64).graph;
    let mut graph_text = Vec::new();
    write_graph(&local, &mut graph_text).expect("serialize tenant graph");
    let graph_text = String::from_utf8(graph_text).expect("graph text is UTF-8");

    let stream = UnixStream::connect(socket).expect("connect to daemon");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut timings = Vec::new();
    let mut round_trip = |req: String, op: &'static str| -> Value {
        let t = Instant::now();
        writer.write_all(req.as_bytes()).expect("send request");
        writer.write_all(b"\n").expect("send newline");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        timings.push(OneRequest {
            op,
            secs: t.elapsed().as_secs_f64(),
        });
        let v = parse(line.trim_end()).expect("daemon speaks JSON");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "daemon refused {op} for {name}: {line}"
        );
        v
    };

    let open = Value::Obj(vec![
        ("op".into(), Value::Str("open".into())),
        ("session".into(), Value::Str(name.clone())),
        ("graph".into(), Value::Str(graph_text)),
    ])
    .to_json();
    round_trip(open, "open");

    let mut last_digest = String::new();
    for round in 0..rounds {
        // A small structural delta: one new vertex labelled with a
        // fresh value, wired to a deterministic existing vertex and to
        // the previous round's vertex when there is one.
        let anchor = (round * 7 + tenant) % local.vertex_count();
        let delta_req = format!(
            r#"{{"op":"delta","session":"{name}","add_vertices":[["v{tenant}_{round}"]],"add_edges":[[{anchor},{{"new":0}}]]}}"#
        );
        // Evolve the local replica through the identical wire decoding
        // path, so bench and daemon apply byte-for-byte the same delta.
        let delta = delta_from_value(&parse(&delta_req).expect("delta request is JSON"))
            .expect("delta decodes");
        local = delta.apply(&local).expect("delta applies locally").graph;
        round_trip(delta_req, "delta");

        let mine_req = format!(r#"{{"op":"mine","session":"{name}"}}"#);
        let resp = round_trip(mine_req, "mine");
        last_digest = resp
            .get("final_dl_bits")
            .and_then(Value::as_str)
            .expect("mine response carries final_dl_bits")
            .to_string();
    }

    // Bit-identity gate: cold-mining the locally evolved replica with
    // the daemon's engine configuration must land on the same DL bits.
    let expected = dl_bits(Miner::new().threads(1).build().mine(&local).final_dl);
    assert_eq!(
        last_digest, expected,
        "{name}: daemon DL digest diverged from one-shot mining"
    );

    round_trip(format!(r#"{{"op":"close","session":"{name}"}}"#), "close");
    timings
}

fn percentile(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Round-trips `{"op":"metrics"}` and returns the Prometheus text.
fn scrape_metrics(socket: &std::path::Path) -> String {
    let stream = UnixStream::connect(socket).expect("connect for metrics scrape");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"{\"op\":\"metrics\"}\n")
        .expect("send metrics request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics response");
    let v = parse(line.trim_end()).expect("daemon speaks JSON");
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "metrics scrape refused: {line}"
    );
    v.get("text")
        .and_then(Value::as_str)
        .expect("metrics response carries exposition text")
        .to_string()
}

/// Quantile estimate from cumulative histogram buckets, linearly
/// interpolated inside the containing bucket (the `histogram_quantile`
/// estimator). An observation in the `+Inf` bucket reports the last
/// finite bound — there is nothing to interpolate towards.
fn bucket_quantile(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total = buckets.last().map_or(0, |b| b.1);
    let rank = ((q * total as f64).ceil()).max(1.0) as u64;
    let mut lower = 0.0;
    let mut prev_count = 0u64;
    for &(bound, count) in buckets {
        if count >= rank {
            if bound.is_infinite() {
                return lower;
            }
            let in_bucket = (count - prev_count) as f64;
            return lower + (bound - lower) * ((rank - prev_count) as f64 / in_bucket);
        }
        prev_count = count;
        lower = bound;
    }
    lower
}

/// Parses one op's `<family>_bucket{op="…",le="…"}` series out of an
/// exposition and returns `(p50, p99)`; `None` when the op never ran.
fn daemon_quantiles(exposition: &str, family: &str, op: &str) -> Option<(f64, f64)> {
    let prefix = format!("{family}_bucket{{op=\"{op}\",le=\"");
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in exposition.lines() {
        let Some(rest) = line.strip_prefix(prefix.as_str()) else {
            continue;
        };
        let (le, count) = rest.split_once("\"} ")?;
        let bound = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().ok()?
        };
        buckets.push((bound, count.parse::<f64>().ok()? as u64));
    }
    if buckets.last().is_none_or(|b| b.1 == 0) {
        return None;
    }
    Some((
        bucket_quantile(&buckets, 0.50),
        bucket_quantile(&buckets, 0.99),
    ))
}

fn main() {
    let mut tenants = 3usize;
    let mut rounds = 4usize;
    let mut scale = Scale::Tiny;
    let mut seed = 2022u64;
    let mut threads = 2usize;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => {
                tenants = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tenants N")
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--rounds R")
            }
            "--tiny" => scale = Scale::Tiny,
            "--small" => scale = Scale::Small,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N")
            }
            "--out" => out_path = args.next().expect("--out FILE"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(
        tenants > 0 && rounds > 0,
        "need at least one tenant and one round"
    );

    let dir = std::env::temp_dir().join(format!("cspm-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let socket = dir.join("bench.sock");
    let mut config = ServerConfig::new(&socket);
    config.threads = threads;
    let server = Server::spawn(config).expect("daemon starts");

    let wall = Instant::now();
    let mut all: Vec<OneRequest> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let socket = socket.clone();
                scope.spawn(move || drive_tenant(&socket, t, scale, seed, rounds))
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tenant thread"))
            .collect()
    });
    let wall_secs = wall.elapsed().as_secs_f64();
    let exposition = scrape_metrics(&socket);
    server.stop().expect("clean daemon shutdown");
    std::fs::remove_dir_all(&dir).ok();

    all.sort_by(|a, b| a.op.cmp(b.op));
    let mut records: Vec<(String, f64)> = Vec::new();
    for op in ["open", "delta", "mine", "close"] {
        let mut secs: Vec<f64> = all.iter().filter(|r| r.op == op).map(|r| r.secs).collect();
        if secs.is_empty() {
            continue;
        }
        secs.sort_by(f64::total_cmp);
        records.push((format!("serve/{op}_p50"), percentile(&secs, 50.0)));
        records.push((format!("serve/{op}_p99"), percentile(&secs, 99.0)));
        // Same op as the daemon saw it: histogram buckets scraped over
        // the wire, so client-vs-daemon deltas isolate socket overhead.
        let (p50, p99) = daemon_quantiles(&exposition, "cspm_serve_request_seconds", op)
            .unwrap_or_else(|| panic!("daemon histogram empty for op '{op}'"));
        records.push((format!("serve/daemon_{op}_p50"), p50));
        records.push((format!("serve/daemon_{op}_p99"), p99));
    }
    let requests = all.len();
    records.push((
        "serve/req_interval_mean".to_string(),
        wall_secs / requests as f64,
    ));

    println!(
        "bench_serve: {tenants} tenants x {rounds} rounds ({requests} requests) in {wall_secs:.3}s \
         = {:.1} req/s; DL digests bit-identical to one-shot mining",
        requests as f64 / wall_secs
    );
    for (name, secs) in &records {
        println!("  {name}: {:.6}s", secs);
    }

    let mut f = std::fs::File::create(&out_path).expect("can create output file");
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"suite\": \"serve\",").unwrap();
    writeln!(f, "  \"scale\": \"{scale:?}\",").unwrap();
    writeln!(f, "  \"seed\": {seed},").unwrap();
    writeln!(f, "  \"timings_secs\": {{").unwrap();
    for (i, (name, secs)) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(f, "    \"{name}\": {secs:.6}{comma}").unwrap();
    }
    writeln!(f, "  }}").unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote {out_path}");
}
