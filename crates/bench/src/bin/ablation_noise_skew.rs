//! Ablation A3: sensitivity of the Fig. 8 result to noise-type skew.
//!
//! CSPM ranks rules by MDL code length, i.e. by (penalised) joint
//! probability; ACOR by a normalised per-pair correlation. When the
//! noise-type popularity distribution is flat (rule-dominated logs, the
//! paper's regime) CSPM's curve dominates; as noise concentrates into
//! chatty types, sheer frequency starts to outrank genuine correlation
//! and the advantage erodes. This binary sweeps that knob so the
//! boundary of the reproduction claim is explicit.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin ablation_noise_skew
//! ```

use cspm_alarm::{
    acor_rank, coverage_curve, cspm_rank, simulate, RuleLibrary, SimConfig, TelecomTopology,
};
use cspm_bench::{hr, parse_args};
use cspm_datasets::Scale;

fn main() {
    let args = parse_args();
    let (n_events, n_windows, devices) = match args.scale {
        Scale::Paper => (1_000_000, 1000, (8, 40, 1000)),
        Scale::Small => (100_000, 300, (6, 24, 400)),
        Scale::Tiny => (20_000, 100, (4, 12, 80)),
    };
    let topo = TelecomTopology::generate(devices.0, devices.1, devices.2, args.seed);
    let rules = RuleLibrary::generate(11, 121, 300, args.seed.wrapping_add(1));
    let valid = rules.pair_rules();
    let ks: Vec<usize> = (1..=20).map(|i| i * 25).collect();

    println!(
        "Ablation: noise-skew sensitivity of Fig. 8 (scale {:?})\n",
        args.scale
    );
    println!(
        "{:>10} {:>12} {:>12} {:>16} {:>16}",
        "zipf s", "CSPM AUC", "ACOR AUC", "CSPM cov@121", "ACOR cov@121"
    );
    hr(72);
    for skew in [0.0, 0.3, 0.6, 0.9, 1.2] {
        let cfg = SimConfig {
            n_events,
            n_windows,
            noise_fraction: 0.45,
            derivative_prob: 0.7,
            noise_zipf_exponent: skew,
            ..Default::default()
        };
        let events = simulate(&topo, &rules, &cfg);
        let cspm = cspm_rank(&topo, &events, cfg.window_ms);
        let acor = acor_rank(&topo, &events, cfg.window_ms);
        let auc = |ranked| {
            coverage_curve(&valid, ranked, &ks)
                .iter()
                .map(|&(_, v)| v)
                .sum::<f64>()
        };
        let at_v = |ranked| coverage_curve(&valid, ranked, &[valid.len()])[0].1;
        println!(
            "{:>10.1} {:>12.2} {:>12.2} {:>16.3} {:>16.3}",
            skew,
            auc(&cspm),
            auc(&acor),
            at_v(&cspm),
            at_v(&acor)
        );
    }
    println!("\nreading: the paper's dominance claim (Fig. 8) holds in the");
    println!("rule-dominated regime (low skew); chatty noise erodes it.");
}
