//! Table IV: profiling evaluation for node attribute completion —
//! Recall@K and NDCG@K for six baselines, plain and CSPM-fused, on three
//! citation benchmarks.
//!
//! The shape to reproduce: fusing CSPM scores improves every (or nearly
//! every) baseline, with the largest relative gains on the weak ones
//! (NeighAggre, VAE); the average-improvement row is positive across all
//! metrics.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin table4_completion [--paper]
//! ```

use cspm_bench::{hr, parse_args};
use cspm_completion::{run_completion, ExperimentConfig};
use cspm_datasets::{citation_completion, CompletionKind, Scale};
use cspm_nn::NetConfig;

fn main() {
    let args = parse_args();
    println!(
        "Table IV: node attribute completion (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    let kinds = [
        CompletionKind::Cora,
        CompletionKind::Citeseer,
        CompletionKind::Dblp,
    ];
    let epochs = match args.scale {
        Scale::Paper => 150,
        Scale::Small => 120,
        Scale::Tiny => 60,
    };
    for kind in kinds {
        let d = citation_completion(kind, args.scale, args.seed);
        let cfg = ExperimentConfig {
            test_fraction: 0.4,
            seed: args.seed ^ 0x5eed,
            net: NetConfig {
                hidden: 32,
                epochs,
                ..Default::default()
            },
            ks: d.ks,
        };
        let rows = run_completion(&d.graph, &cfg);
        let [k1, k2, k3] = d.ks;
        println!("== {} ==", d.name);
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "Method",
            format!("R@{k1}"),
            format!("R@{k2}"),
            format!("R@{k3}"),
            format!("N@{k1}"),
            format!("N@{k2}"),
            format!("N@{k3}")
        );
        hr(78);
        let mut improvement = [0.0f64; 6];
        let mut counted = 0usize;
        for (plain, fused) in &rows {
            for o in [plain, fused] {
                println!(
                    "{:<18} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                    o.model, o.recall[0], o.recall[1], o.recall[2], o.ndcg[0], o.ndcg[1], o.ndcg[2]
                );
            }
            counted += 1;
            for i in 0..3 {
                if plain.recall[i] > 0.0 {
                    improvement[i] += (fused.recall[i] / plain.recall[i] - 1.0) * 100.0;
                }
                if plain.ndcg[i] > 0.0 {
                    improvement[3 + i] += (fused.ndcg[i] / plain.ndcg[i] - 1.0) * 100.0;
                }
            }
        }
        hr(78);
        print!("{:<18}", "Avg.improv.(%)");
        for v in improvement {
            print!(" {:>9.2}", v / counted as f64);
        }
        println!("\n");
    }
    println!("paper reference (Table IV): avg. improvement +9.3%..+30.7% across");
    println!("datasets and metrics; largest lifts on NeighAggre and VAE.");
}
