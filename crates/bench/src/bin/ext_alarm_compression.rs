//! Extension experiment: alarm compression with mined rules — the AABD
//! deployment use case the paper motivates in §VI-D ("reduce the number
//! of alarms presented to maintenance workers").
//!
//! Sweeps the number of top-ranked rules used for suppression and
//! reports compression ratio and suppression precision for both CSPM
//! and ACOR rule lists.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin ext_alarm_compression
//! ```

use cspm_alarm::{
    acor_rank, compress_log, cspm_rank, simulate, RuleLibrary, SimConfig, TelecomTopology,
};
use cspm_bench::{hr, parse_args};
use cspm_datasets::Scale;

fn main() {
    let args = parse_args();
    let (n_events, n_windows, devices) = match args.scale {
        Scale::Paper => (2_000_000, 1000, (8, 40, 1000)),
        Scale::Small => (200_000, 400, (6, 24, 400)),
        Scale::Tiny => (20_000, 100, (4, 12, 80)),
    };
    let topo = TelecomTopology::generate(devices.0, devices.1, devices.2, args.seed);
    let rules = RuleLibrary::generate(11, 121, 300, args.seed.wrapping_add(1));
    let cfg = SimConfig {
        n_events,
        n_windows,
        ..Default::default()
    };
    let events = simulate(&topo, &rules, &cfg);
    println!(
        "Extension: alarm compression ({} alarms, {} valid pair rules)\n",
        events.len(),
        rules.pair_rules().len()
    );

    let ranked_cspm = cspm_rank(&topo, &events, cfg.window_ms);
    let ranked_acor = acor_rank(&topo, &events, cfg.window_ms);

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "top-K", "CSPM ratio", "CSPM prec", "ACOR ratio", "ACOR prec"
    );
    hr(62);
    for k in [30usize, 60, 121, 242, 500] {
        let c = compress_log(&topo, &events, &ranked_cspm, k, cfg.window_ms, Some(&rules));
        let a = compress_log(&topo, &events, &ranked_acor, k, cfg.window_ms, Some(&rules));
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            k,
            c.compression_ratio,
            c.suppression_precision(),
            a.compression_ratio,
            a.suppression_precision()
        );
    }
    println!("\nreading: with the valid rules ranked on top, CSPM reaches high");
    println!("compression at small K while keeping suppression precision high.");
}
