//! Fig. 5: gain update ratio per iteration, CSPM-Basic vs CSPM-Partial,
//! on the four benchmark datasets.
//!
//! The shape to reproduce: CSPM-Partial's ratio sits at or below
//! CSPM-Basic's in (almost) every iteration, which is why it is faster.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin fig5_update_ratio [--paper]
//! ```

use cspm_bench::{hr, parse_args};
use cspm_core::{cspm_basic, cspm_partial, CspmConfig, RunStats};
use cspm_datasets::benchmark_suite;

/// Summarises a ratio series at up to `points` evenly spaced iterations.
fn series(stats: &RunStats, points: usize) -> Vec<(usize, f64)> {
    let n = stats.iterations.len();
    if n == 0 {
        return Vec::new();
    }
    let step = (n / points).max(1);
    (0..n)
        .step_by(step)
        .map(|i| (i + 1, stats.iterations[i].update_ratio()))
        .collect()
}

fn main() {
    let args = parse_args();
    println!(
        "Fig. 5: gain update ratio per iteration (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    const BASIC_VERTEX_CAP: usize = 10_000;

    for d in benchmark_suite(args.scale, args.seed) {
        println!("== {} ==", d.name);
        let partial = cspm_partial(&d.graph, CspmConfig::instrumented());
        let basic = (d.graph.vertex_count() <= BASIC_VERTEX_CAP)
            .then(|| cspm_basic(&d.graph, CspmConfig::instrumented()));

        println!("{:>10} {:>14} {:>14}", "iteration", "Basic", "Partial");
        hr(42);
        let ps = series(&partial.stats, 12);
        let bs = basic
            .as_ref()
            .map(|b| series(&b.stats, 12))
            .unwrap_or_default();
        let rows = ps.len().max(bs.len());
        for i in 0..rows {
            let iteration = ps
                .get(i)
                .map(|&(it, _)| it)
                .or_else(|| bs.get(i).map(|&(it, _)| it))
                .unwrap_or(0);
            let b = bs
                .get(i)
                .map(|&(_, r)| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into());
            let p = ps
                .get(i)
                .map(|&(_, r)| format!("{r:.4}"))
                .unwrap_or_else(|| "-".into());
            println!("{iteration:>10} {b:>14} {p:>14}");
        }
        let mean = |s: &RunStats| {
            if s.iterations.is_empty() {
                0.0
            } else {
                s.iterations.iter().map(|i| i.update_ratio()).sum::<f64>()
                    / s.iterations.len() as f64
            }
        };
        match &basic {
            Some(b) => println!(
                "mean ratio: Basic {:.4} vs Partial {:.4}; total gain evals {} vs {}\n",
                mean(&b.stats),
                mean(&partial.stats),
                b.stats.total_gain_evals,
                partial.stats.total_gain_evals
            ),
            None => println!(
                "mean ratio: Basic skipped (too large) vs Partial {:.4}; Partial evals {}\n",
                mean(&partial.stats),
                partial.stats.total_gain_evals
            ),
        }
    }
    println!("expected shape (paper Fig. 5): Partial's ratio <= Basic's nearly everywhere.");
}
