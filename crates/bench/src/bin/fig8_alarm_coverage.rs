//! Fig. 8: coverage ratio of CSPM vs ACOR for alarm correlation
//! analysis on the simulated telecom log.
//!
//! The shape to reproduce: both curves rise to 1.0 as more rules are
//! selected; CSPM ranks the valid rules higher, so its curve dominates
//! ACOR's at small top-K.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin fig8_alarm_coverage [--paper]
//! ```

use cspm_alarm::{
    acor_rank, coverage_curve, cspm_rank, simulate, RuleLibrary, SimConfig, TelecomTopology,
};
use cspm_bench::{hr, parse_args};
use cspm_datasets::Scale;

fn main() {
    let args = parse_args();
    // Paper shape: 300 alarm types, 11 rules → 121 pairs, ~6M alarms.
    // Smaller scales keep the structure but shrink the log.
    let (n_events, n_windows, devices) = match args.scale {
        Scale::Paper => (6_000_000, 2000, (8, 60, 1500)),
        Scale::Small => (200_000, 400, (6, 24, 400)),
        Scale::Tiny => (20_000, 100, (4, 12, 80)),
    };
    let topo = TelecomTopology::generate(devices.0, devices.1, devices.2, args.seed);
    let rules = RuleLibrary::generate(11, 121, 300, args.seed.wrapping_add(1));
    let cfg = SimConfig {
        n_events,
        n_windows,
        noise_fraction: 0.45,
        derivative_prob: 0.7,
        ..Default::default()
    };
    let events = simulate(&topo, &rules, &cfg);
    println!(
        "Fig. 8: alarm-rule coverage (scale {:?}): {} alarms, {} devices, {} valid pair rules\n",
        args.scale,
        events.len(),
        topo.n_devices(),
        rules.pair_rules().len()
    );

    let t = std::time::Instant::now();
    let cspm = cspm_rank(&topo, &events, cfg.window_ms);
    let cspm_time = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let acor = acor_rank(&topo, &events, cfg.window_ms);
    let acor_time = t.elapsed().as_secs_f64();
    println!(
        "CSPM: {} ranked rules in {:.1}s; ACOR: {} ranked rules in {:.1}s\n",
        cspm.len(),
        cspm_time,
        acor.len(),
        acor_time
    );

    let valid = rules.pair_rules();
    let ks: Vec<usize> = [
        10, 25, 50, 75, 100, 150, 200, 300, 400, 600, 800, 1000, 1500, 2000,
    ]
    .into_iter()
    .filter(|&k| k <= cspm.len().max(acor.len()))
    .collect();
    println!("{:>7} {:>10} {:>10}", "top-K", "CSPM", "ACOR");
    hr(30);
    let c1 = coverage_curve(&valid, &cspm, &ks);
    let c2 = coverage_curve(&valid, &acor, &ks);
    let mut auc = (0.0, 0.0);
    for ((k, a), (_, b)) in c1.iter().zip(&c2) {
        println!("{k:>7} {a:>10.3} {b:>10.3}");
        auc.0 += a;
        auc.1 += b;
    }
    hr(30);
    let verdict = if auc.0 > auc.1 {
        "CSPM dominates — matches Fig. 8"
    } else if auc.0 == auc.1 {
        "tie (both rank every valid rule ahead of the noise at this scale)"
    } else {
        "ACOR dominates — deviates from Fig. 8"
    };
    println!(
        "area under curve: CSPM {:.2} vs ACOR {:.2} ({verdict})",
        auc.0, auc.1
    );
}
