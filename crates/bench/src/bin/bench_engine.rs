//! Records merge-loop timings for the unified engine into
//! `BENCH_engine.json`, so successive PRs can track the perf trajectory.
//!
//! ```text
//! bench_engine [--tiny|--paper] [--seed N] [--out FILE]
//!              [--input FILE]… [--format pokec|dblp|usflight|native|auto]
//! ```
//!
//! Measures, per dataset: the posting-store replay (flat arena vs the
//! seed's HashMap-row baseline over an identical merge schedule — see
//! `cspm_bench::enginebench`), the engine's two scheduling policies
//! end to end on a pre-built inverted database, a thread sweep of
//! the incremental merge loop (`merge_loop_incremental_t{1,2,4,8}`),
//! and the session warm-path pair: `merge_loop_session_cold` (cold
//! `MiningSession::mine` of a delta-grown graph) vs
//! `merge_loop_session_warm` (`apply_delta` on a session that already
//! holds the base graph — same merge loop, but database *patching*
//! replaces database *construction*; results are asserted
//! bit-identical), the windowed-stream pair: `windowed_stream_patch`
//! (one warm session driven through insert-front/expire-back deltas,
//! re-mining after each step) vs `windowed_stream_rebuild` (cold mine
//! of each step's surviving window; every step's model asserted
//! bit-identical, and the warm arena's end-of-drive fragmentation
//! recorded as `windowed_stream_fragmentation`), and the
//! durable-store open pair:
//! `store_rebuild_cold` (open the snapshot, rebuild the database from
//! the recovered graph) vs `store_open_warm` (decode the snapshot's
//! serialized DB section instead — `InvertedDb::from_pristine_rows`;
//! description lengths asserted bit-identical). FullRegeneration is
//! recorded on every dataset: past
//! the delegation threshold (Pokec) it completes by delegating to the
//! incremental policy instead of being skipped.
//!
//! With `--input` (requires the `real-data` feature), the generator
//! suite is replaced by the given real dataset dumps; the parse phase
//! is recorded separately from the merge loops as `<name>/parse`
//! (snapshot caching is disabled so the record times the parser, not
//! the cache), and `--out` defaults to `BENCH_engine.inputs.json` so a
//! fixture run never clobbers the committed generator-suite baseline
//! that `bench_compare` gates on.
//!
//! `bench_compare` diffs the emitted JSON against the committed
//! baseline and gates CI on merge-loop regressions.

use std::io::Write as _;
use std::time::Instant;

use cspm_bench::enginebench::MergeWorkload;
use cspm_bench::fmt_secs;
use cspm_core::engine::{run_on_db, SchedulePolicy};
use cspm_core::{CoresetMode, CspmConfig, GainPolicy, InvertedDb, Miner};
use cspm_datasets::{dblp_like, pokec_like, usflight_like, Dataset, Scale};
use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
use cspm_graph::AttributedGraph;

/// Median of `reps` timed runs of `f`, in seconds.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    median_secs_batched(reps, || (), |()| f())
}

/// Median of `reps` timed runs of `routine` on fresh inputs from
/// `setup`; setup (e.g. cloning a database) stays outside the timing so
/// recorded trajectories track the routine alone.
fn median_secs_batched<I, T>(
    reps: usize,
    mut setup: impl FnMut() -> I,
    mut routine: impl FnMut(I) -> T,
) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Record {
    name: String,
    secs: f64,
}

/// A deterministic, modest evolution step for the session benchmark:
/// ~1% new vertices (at least 4), each cloning the labels of an
/// existing vertex and wired to it, plus a handful of fresh edges
/// between existing vertices. Small relative to the graph, so the warm
/// path's patch-instead-of-rebuild advantage is visible.
fn session_delta(g: &AttributedGraph) -> GraphDelta {
    let n = g.vertex_count();
    let mut delta = GraphDelta::new();
    for i in 0..(n / 100).max(4) {
        let anchor = ((i * 37 + 11) % n) as u32;
        let labels: Vec<&str> = g
            .labels(anchor)
            .iter()
            .filter_map(|&a| g.attrs().name(a))
            .collect();
        let v = delta.add_vertex(labels);
        delta.add_edge(v, DeltaVertex::Existing(anchor));
    }
    for i in 0..4usize {
        let (u, w) = (((i * 53 + 7) % n) as u32, ((i * 101 + 29) % n) as u32);
        if u != w {
            delta.add_edge(DeltaVertex::Existing(u), DeltaVertex::Existing(w));
        }
    }
    delta
}

/// One windowed-stream step over the rolling graph: `batch` new
/// vertices arrive (each cloning the labels of a surviving anchor and
/// wired to it), and the `batch` oldest original vertices starting at
/// `expire_from` leave (detached: labels and incident edges dropped,
/// id slots retained). Anchors are drawn from the original-id range
/// that survives this step, so arrivals never wire to a ghost.
fn window_delta(g: &AttributedGraph, expire_from: u32, batch: usize, orig_n: u32) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let live_lo = expire_from + batch as u32;
    let live_span = (orig_n - live_lo) as usize;
    for i in 0..batch {
        let anchor = live_lo + ((i * 37 + 11) % live_span) as u32;
        let labels: Vec<&str> = g
            .labels(anchor)
            .iter()
            .filter_map(|&a| g.attrs().name(a))
            .collect();
        let v = delta.add_vertex(labels);
        delta.add_edge(v, DeltaVertex::Existing(anchor));
    }
    for v in expire_from..expire_from + batch as u32 {
        delta.remove_vertex(v);
    }
    delta
}

/// Parses `--input` dumps into datasets, recording one `<name>/parse`
/// timing each (snapshots off: the record must time the parser).
#[cfg(feature = "real-data")]
fn ingest_inputs(inputs: &[String], format: &str, records: &mut Vec<Record>) -> Vec<Dataset> {
    use cspm_datasets::ingest::{self, SnapshotPolicy};
    let format = ingest::Format::from_cli(format).unwrap_or_else(|e| panic!("{e}"));
    inputs
        .iter()
        .map(|p| {
            let report = ingest::ingest(std::path::Path::new(p), format, SnapshotPolicy::Off)
                .unwrap_or_else(|e| panic!("cannot ingest {p}: {e}"));
            println!(
                "parsed {p} as {} in {}",
                report.format,
                fmt_secs(report.parse_secs)
            );
            records.push(Record {
                name: format!("{}/parse", report.dataset.name),
                secs: report.parse_secs,
            });
            report.dataset
        })
        .collect()
}

#[cfg(not(feature = "real-data"))]
fn ingest_inputs(_inputs: &[String], _format: &str, _records: &mut Vec<Record>) -> Vec<Dataset> {
    panic!("--input needs real-dataset support: rebuild with --features real-data");
}

fn main() {
    let mut scale = Scale::Small;
    let mut seed = 2022u64;
    let mut out_path: Option<String> = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut format = "auto".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--paper" => scale = Scale::Paper,
            "--tiny" => scale = Scale::Tiny,
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--out" => out_path = Some(args.next().expect("--out FILE")),
            "--input" => inputs.push(args.next().expect("--input FILE")),
            "--format" => format = args.next().expect("--format NAME"),
            other => panic!("unknown argument '{other}'"),
        }
    }
    // Fixture runs default to their own output file: BENCH_engine.json
    // is the committed CI baseline for the *generator* suite, and
    // silently replacing it would neuter the bench_compare gate.
    let out_path = out_path.unwrap_or_else(|| {
        if inputs.is_empty() {
            "BENCH_engine.json".to_string()
        } else {
            "BENCH_engine.inputs.json".to_string()
        }
    });

    let mut records: Vec<Record> = Vec::new();
    let datasets: Vec<Dataset> = if inputs.is_empty() {
        vec![
            dblp_like(scale, seed),
            usflight_like(scale, seed),
            pokec_like(
                if scale == Scale::Paper {
                    Scale::Small
                } else {
                    scale
                },
                seed,
            ),
        ]
    } else {
        ingest_inputs(&inputs, &format, &mut records)
    };
    let reps = 3;

    for d in &datasets {
        let (n, m, a) = d.statistics();
        println!("== {} ({n} vertices, {m} edges, {a} attrs) ==", d.name);

        let w = MergeWorkload::from_graph(&d.graph);
        assert_eq!(
            w.replay_flat(),
            w.replay_hashmap(),
            "backends must do identical work"
        );
        let flat = median_secs(reps, || w.replay_flat());
        let hash = median_secs(reps, || w.replay_hashmap());
        println!(
            "  posting store replay ({} merges): flat {} vs hashmap-rows {} ({:.2}x)",
            w.merge_count(),
            fmt_secs(flat),
            fmt_secs(hash),
            hash / flat
        );
        records.push(Record {
            name: format!("{}/replay_flat", d.name),
            secs: flat,
        });
        records.push(Record {
            name: format!("{}/replay_hashmap_rows", d.name),
            secs: hash,
        });

        let db = InvertedDb::build(&d.graph, CoresetMode::SingleValue, GainPolicy::Total);
        let initial_pairs = db.sharing_pairs().len();
        for (label, policy) in [
            ("incremental", SchedulePolicy::Incremental),
            ("full_regeneration", SchedulePolicy::FullRegeneration),
        ] {
            // Full regeneration is O(pairs × merges); past the
            // delegation threshold (Pokec at this scale) the run
            // completes by delegating to the incremental policy —
            // previously it had to be skipped outright.
            let config = CspmConfig {
                full_regen_max_pairs: Some(5_000),
                ..CspmConfig::default()
            };
            let mut delegated = false;
            let (mut evals, mut pruned) = (0u64, 0u64);
            let secs = median_secs_batched(
                reps,
                || db.clone(),
                |db| {
                    let res = run_on_db(db, policy, config);
                    delegated = res.stats.delegated;
                    evals = res.stats.total_gain_evals;
                    pruned = res.stats.pruned_pairs;
                    res
                },
            );
            let note = if delegated {
                format!(" (delegated: {initial_pairs} initial pairs)")
            } else {
                String::new()
            };
            println!(
                "  merge loop [{label}]: {}{note} ({pruned}/{evals} evals pruned)",
                fmt_secs(secs)
            );
            records.push(Record {
                name: format!("{}/merge_loop_{label}", d.name),
                secs,
            });
        }

        // Thread sweep over the incremental merge loop: scoring fans
        // out across scoped workers; results are bit-identical at every
        // count (asserted against the single-thread reference).
        let reference = run_on_db(
            db.clone(),
            SchedulePolicy::Incremental,
            CspmConfig::default().with_threads(1),
        );
        for threads in [1usize, 2, 4, 8] {
            let config = CspmConfig::default().with_threads(threads);
            let mut final_dl = f64::NAN;
            let secs = median_secs_batched(
                reps,
                || db.clone(),
                |db| {
                    let res = run_on_db(db, SchedulePolicy::Incremental, config);
                    final_dl = res.final_dl;
                    res
                },
            );
            assert_eq!(
                final_dl, reference.final_dl,
                "parallel scoring must be deterministic"
            );
            println!(
                "  merge loop [incremental, t={threads}]: {}",
                fmt_secs(secs)
            );
            records.push(Record {
                name: format!("{}/merge_loop_incremental_t{threads}", d.name),
                secs,
            });
        }

        // Session warm path: the graph grows by one delta, and a
        // session already holding the base graph re-mines it warm
        // (patch + merge loop) vs a cold session mine of the grown
        // graph (build + merge loop). Models must be bit-identical;
        // the delta is the only thing the warm path re-reads.
        let delta = session_delta(&d.graph);
        let applied = delta.apply(&d.graph).expect("synthetic delta applies");
        let dirty = applied.dirty_centers.len();
        let grown = applied.graph;
        let mut cold_dl = f64::NAN;
        let cold = median_secs_batched(
            reps,
            || Miner::new().build(),
            |mut session| {
                let res = session.mine(&grown);
                cold_dl = res.final_dl;
                res
            },
        );
        let mut warm_template = Miner::new().build();
        warm_template.load(&d.graph);
        let mut warm_dl = f64::NAN;
        let warm = median_secs_batched(
            reps,
            || warm_template.clone(),
            |mut session| {
                let res = session.apply_delta(&delta).expect("delta applies");
                warm_dl = res.final_dl;
                res
            },
        );
        assert_eq!(
            warm_dl.to_bits(),
            cold_dl.to_bits(),
            "warm re-mine must be bit-identical to the cold mine"
        );
        println!(
            "  merge loop [session]: cold {} vs warm {} ({:.2}x, {dirty} dirty of {} vertices)",
            fmt_secs(cold),
            fmt_secs(warm),
            cold / warm,
            grown.vertex_count()
        );
        records.push(Record {
            name: format!("{}/merge_loop_session_cold", d.name),
            secs: cold,
        });
        records.push(Record {
            name: format!("{}/merge_loop_session_warm", d.name),
            secs: warm,
        });

        // Windowed stream: insert new vertices at the front, expire
        // the oldest at the back (vertex detachment), one delta per
        // step. The patch driver advances one warm session's database
        // through every step (`stage_delta`: dirty-center patching of
        // retained posting rows); the rebuild driver reconstructs the
        // database from each step's surviving window (`InvertedDb::
        // build`, the cost a rebuild-based streamer would pay per
        // step). Mining the drive's final window warm is asserted
        // bit-identical to cold-mining it from scratch — the
        // windowed-stream correctness contract — and the warm arena's
        // end-of-drive fragmentation is recorded alongside the
        // timings. (Per-step bit-identity across threads and posting
        // policies is covered exhaustively by tests/stream_churn.rs.)
        let steps = 4usize;
        let batch = (d.graph.vertex_count() / 100).max(4);
        let orig_n = d.graph.vertex_count() as u32;
        let mut rolling = d.graph.clone();
        let mut window_deltas = Vec::new();
        let mut step_graphs = Vec::new();
        for k in 0..steps {
            let delta = window_delta(&rolling, (k * batch) as u32, batch, orig_n);
            rolling = delta.apply(&rolling).expect("window delta applies").graph;
            window_deltas.push(delta);
            step_graphs.push(rolling.clone());
        }
        let mut warm_template = Miner::new().build();
        warm_template.load(&d.graph);
        let mut frag = f64::NAN;
        let mut driven: Option<cspm_core::MiningSession> = None;
        let patch = median_secs_batched(
            reps,
            || warm_template.clone(),
            |mut session| {
                for delta in &window_deltas {
                    session.stage_delta(delta).expect("window delta stages");
                }
                frag = session.fragmentation();
                driven = Some(session);
            },
        );
        let rebuild = median_secs(reps, || {
            for g in &step_graphs {
                std::hint::black_box(InvertedDb::build(
                    g,
                    CoresetMode::SingleValue,
                    GainPolicy::Total,
                ));
            }
        });
        let warm_final = driven
            .take()
            .expect("at least one timed drive ran")
            .run_detached()
            .expect("driven session mines");
        let cold_final = Miner::new().build().mine(step_graphs.last().unwrap());
        assert_eq!(
            warm_final.final_dl.to_bits(),
            cold_final.final_dl.to_bits(),
            "windowed-stream mining must be bit-identical to cold re-mining \
             the surviving window"
        );
        // Gate only where the timings clear the jitter floor: at
        // --tiny scale both drivers finish in single-digit
        // milliseconds and the comparison is noise.
        if d.name.starts_with("Pokec") && rebuild > 0.05 {
            assert!(
                patch < rebuild,
                "patched windowed streaming must beat per-step rebuild on {}: \
                 patch {} vs rebuild {}",
                d.name,
                fmt_secs(patch),
                fmt_secs(rebuild)
            );
        }
        println!(
            "  windowed stream ({steps} steps × {batch} in/out): patch {} vs rebuild {} \
             ({:.2}x, fragmentation {frag:.3})",
            fmt_secs(patch),
            fmt_secs(rebuild),
            rebuild / patch
        );
        records.push(Record {
            name: format!("{}/windowed_stream_patch", d.name),
            secs: patch,
        });
        records.push(Record {
            name: format!("{}/windowed_stream_rebuild", d.name),
            secs: rebuild,
        });
        records.push(Record {
            name: format!("{}/windowed_stream_fragmentation", d.name),
            secs: frag,
        });

        // Durable store open: a checkpointed store restores the
        // pristine database by decoding the snapshot's DB section
        // (`InvertedDb::from_pristine_rows`) instead of re-scanning
        // the recovered graph (`InvertedDb::build`). Both opens read
        // the same snapshot bytes; the restored databases must carry
        // bit-identical description lengths.
        let store_path = std::env::temp_dir()
            .join("cspm-bench-store")
            .join(format!("{}.csps", d.name.replace(['/', ' '], "_")));
        std::fs::create_dir_all(store_path.parent().unwrap()).expect("can create store dir");
        std::fs::remove_file(&store_path).ok();
        {
            use cspm_store::Durable;
            let mut durable = Miner::new()
                .durable(&store_path)
                .expect("store opens fresh");
            durable.mine(&d.graph).expect("seeding mine persists");
        }
        let open_state = || {
            let (_, recovered) = cspm_store::SessionStore::open(&store_path).expect("store opens");
            recovered.state.expect("checkpointed store has state")
        };
        let mut warm_dl = f64::NAN;
        let store_warm = median_secs(reps, || {
            let state = open_state();
            let db = InvertedDb::from_pristine_rows(
                &state.graph,
                GainPolicy::Total,
                state
                    .db
                    .as_ref()
                    .expect("single-value snapshot has a DB section")
                    .iter(),
            )
            .expect("serialized rows restore");
            warm_dl = db.total_dl();
            db
        });
        let mut cold_dl = f64::NAN;
        let store_cold = median_secs(reps, || {
            let state = open_state();
            let db = InvertedDb::build(&state.graph, CoresetMode::SingleValue, GainPolicy::Total);
            cold_dl = db.total_dl();
            db
        });
        assert_eq!(
            warm_dl.to_bits(),
            cold_dl.to_bits(),
            "warm store open must restore the cold-built database exactly"
        );
        println!(
            "  store open: cold rebuild {} vs warm restore {} ({:.2}x)",
            fmt_secs(store_cold),
            fmt_secs(store_warm),
            store_cold / store_warm
        );
        records.push(Record {
            name: format!("{}/store_rebuild_cold", d.name),
            secs: store_cold,
        });
        records.push(Record {
            name: format!("{}/store_open_warm", d.name),
            secs: store_warm,
        });
        std::fs::remove_file(&store_path).ok();
        std::fs::remove_file(store_path.with_extension("csps.wal")).ok();
    }

    let mut f = std::fs::File::create(&out_path).expect("can create output file");
    writeln!(f, "{{").unwrap();
    writeln!(f, "  \"suite\": \"engine\",").unwrap();
    writeln!(f, "  \"scale\": \"{scale:?}\",").unwrap();
    writeln!(f, "  \"seed\": {seed},").unwrap();
    writeln!(f, "  \"timings_secs\": {{").unwrap();
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        writeln!(f, "    \"{}\": {:.6}{comma}", r.name, r.secs).unwrap();
    }
    writeln!(f, "  }}").unwrap();
    writeln!(f, "}}").unwrap();
    println!("wrote {out_path}");
}
