//! Table I: qualitative comparison between CSPM and related work.
//!
//! The table is definitional; this binary verifies each claim against
//! the codebase mechanically where possible (e.g. CSPM consumes an
//! attributed graph; SLIM generates candidates on the fly) and prints
//! the paper's matrix.

fn main() {
    println!("Table I: Comparison between CSPM and related work\n");
    println!(
        "{:<28} {:>6} {:>6} {:>6} {:>10} {:>6}",
        "", "CSPM", "Krimp", "SLIM", "GraphMDL", "VOG"
    );
    let rows = [
        ("Attributed graph?", [true, false, false, false, false]),
        ("Attribute patterns?", [true, false, false, false, false]),
        ("Compressing patterns?", [true, true, true, true, false]),
        ("On-the-fly candidates?", [true, false, true, false, false]),
    ];
    for (label, marks) in rows {
        print!("{label:<28}");
        for m in marks {
            print!(" {:>6}", if m { "yes" } else { "no" });
        }
        println!();
    }

    println!("\nmechanical checks against this implementation:");
    // CSPM consumes an attributed graph and emits attribute patterns.
    let (g, _) = cspm_graph::fixtures::paper_example();
    let res = cspm_core::cspm_partial(&g, cspm_core::CspmConfig::default());
    println!(
        "  [ok] CSPM input = attributed graph ({} vertices, {} attrs), output = {} a-stars",
        g.vertex_count(),
        g.attr_count(),
        res.model.len()
    );
    // Krimp needs a pre-mined candidate collection (Eclat), SLIM does not.
    let db = cspm_itemset::TransactionDb::from_rows(vec![vec![0, 1], vec![0, 1], vec![2]]);
    let k = cspm_itemset::krimp(&db, cspm_itemset::KrimpConfig::default());
    let s = cspm_itemset::slim(&db, cspm_itemset::SlimConfig::default());
    println!(
        "  [ok] Krimp evaluated {} pre-mined candidates; SLIM generated {} on the fly",
        k.evaluated, s.evaluated
    );
    println!(
        "  [ok] both compress: Krimp ratio {:.3}, SLIM ratio {:.3}",
        k.compression_ratio(),
        s.compression_ratio()
    );
}
