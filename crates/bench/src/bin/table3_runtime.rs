//! Table III: runtime comparison — SLIM vs CSPM-Basic vs CSPM-Partial on
//! the four benchmark datasets.
//!
//! The paper's shape to reproduce: CSPM-Basic ≈ 10× slower than SLIM;
//! CSPM-Partial much faster than CSPM-Basic (orders of magnitude on the
//! largest dataset, where Basic did not even terminate within 48h — we
//! likewise cap Basic with a merge budget on Pokec-scale input and
//! report `-`).
//!
//! ```text
//! cargo run --release -p cspm-bench --bin table3_runtime [--paper]
//! ```

use std::time::Instant;

use cspm_bench::{fmt_secs, hr, parse_args};
use cspm_core::{cspm_basic, cspm_partial, CspmConfig};
use cspm_datasets::benchmark_suite;
use cspm_graph::AttributedGraph;
use cspm_itemset::{slim, SlimConfig, TransactionDb};

/// The paper's SLIM-on-graphs protocol: one transaction per adjacency
/// tuple, containing the vertex's and its neighbours' attribute values.
fn graph_transactions(g: &AttributedGraph) -> TransactionDb {
    let rows = g
        .vertices()
        .map(|v| {
            let mut t: Vec<u32> = g.labels(v).to_vec();
            for &u in g.neighbors(v) {
                t.extend_from_slice(g.labels(u));
            }
            t
        })
        .collect();
    TransactionDb::with_item_universe(rows, g.attr_count())
}

fn main() {
    let args = parse_args();
    println!(
        "Table III: Runtime comparison (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>9} {:>9}",
        "Dataset", "SLIM", "CSPM-Basic", "CSPM-Partial", "merges-B", "merges-P"
    );
    hr(86);

    // Beyond these sizes the quadratic algorithms are reported as "-",
    // mirroring the paper's own "-" for CSPM-Basic on Pokec (it did not
    // terminate within 48 h; SLIM needed 46 h there). CSPM-Partial runs
    // everywhere — that asymmetry *is* the Table III result.
    const BASIC_VERTEX_CAP: usize = 10_000;
    const SLIM_VERTEX_CAP: usize = 10_000;

    for d in benchmark_suite(args.scale, args.seed) {
        let g = &d.graph;

        let slim_cell = if g.vertex_count() <= SLIM_VERTEX_CAP {
            let t = Instant::now();
            let s = slim(&graph_transactions(g), SlimConfig::default());
            let _ = s;
            fmt_secs(t.elapsed().as_secs_f64())
        } else {
            "-".to_owned()
        };

        let (basic_cell, merges_b) = if g.vertex_count() <= BASIC_VERTEX_CAP {
            let t = Instant::now();
            let b = cspm_basic(g, CspmConfig::default());
            (fmt_secs(t.elapsed().as_secs_f64()), b.merges.to_string())
        } else {
            ("-".to_owned(), "-".to_owned())
        };

        let t = Instant::now();
        let p = cspm_partial(g, CspmConfig::default());
        let partial_time = t.elapsed().as_secs_f64();

        println!(
            "{:<22} {:>12} {:>14} {:>14} {:>9} {:>9}",
            d.name,
            slim_cell,
            basic_cell,
            fmt_secs(partial_time),
            merges_b,
            p.merges
        );
    }
    println!();
    println!("paper reference (Table III, seconds): DBLP 4.69/43.13/0.98;");
    println!("DBLP-Trend 48.69/956.61/25.46; USFlight 1.25/10.16/1.43;");
    println!("Pokec 166,678.3/-/1,403.21");
}
