//! CI bench-regression gate: diffs a fresh `BENCH_engine.json` against
//! the committed baseline and fails on merge-loop slowdowns.
//!
//! ```text
//! bench_compare [--baseline FILE] [--fresh FILE] [--threshold PCT] [--floor-ms MS]
//! ```
//!
//! Prints a markdown table of every timing either way. The gate applies
//! only to `merge_loop` timings present in both files: the job fails
//! (exit 1) when a fresh timing exceeds the baseline by more than
//! `--threshold` percent (default 15) *and* by more than `--floor-ms`
//! milliseconds (default 0.5 — microsecond-scale timings jitter far
//! beyond 15% on shared CI runners, and a relative gate alone would
//! flake). Replay timings and timings missing from either side are
//! reported but never gated.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_path = "BENCH_engine.json".to_string();
    let mut fresh_path = "BENCH_engine.fresh.json".to_string();
    let mut threshold_pct = 15.0f64;
    let mut floor_ms = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline_path = args.next().expect("--baseline FILE"),
            "--fresh" => fresh_path = args.next().expect("--fresh FILE"),
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threshold PCT");
            }
            "--floor-ms" => {
                floor_ms = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--floor-ms MS");
            }
            other => panic!("unknown argument '{other}'"),
        }
    }

    let baseline = read_timings(&baseline_path);
    let fresh = read_timings(&fresh_path);
    let mut failures: Vec<String> = Vec::new();

    println!("## Engine bench comparison");
    println!();
    println!("baseline `{baseline_path}` vs fresh `{fresh_path}`");
    println!();
    println!("| timing | baseline (s) | fresh (s) | Δ | gate |");
    println!("|---|---:|---:|---:|---|");
    let mut names: Vec<&String> = baseline.keys().chain(fresh.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let gated = name.contains("merge_loop");
        match (baseline.get(name), fresh.get(name)) {
            (Some(&b), Some(&f)) => {
                let delta_pct = if b > 0.0 { (f - b) / b * 100.0 } else { 0.0 };
                let regressed = gated && delta_pct > threshold_pct && (f - b) * 1e3 > floor_ms;
                let verdict = match (gated, regressed) {
                    (true, true) => "**FAIL**",
                    (true, false) => "ok",
                    (false, _) => "info",
                };
                println!("| {name} | {b:.6} | {f:.6} | {delta_pct:+.1}% | {verdict} |");
                if regressed {
                    failures.push(format!("{name}: {b:.6}s -> {f:.6}s ({delta_pct:+.1}%)"));
                }
            }
            (Some(&b), None) => println!("| {name} | {b:.6} | — | | removed |"),
            (None, Some(&f)) => println!("| {name} | — | {f:.6} | | new |"),
            (None, None) => unreachable!(),
        }
    }
    println!();
    if failures.is_empty() {
        println!("No merge-loop timing regressed beyond {threshold_pct}% (+{floor_ms}ms floor).");
        ExitCode::SUCCESS
    } else {
        println!("Merge-loop regressions beyond {threshold_pct}%:");
        for f in &failures {
            println!("- {f}");
        }
        ExitCode::FAILURE
    }
}

/// Parses the `timings_secs` object of a `BENCH_engine.json`. The file
/// is written by `bench_engine` in a fixed shape (one `"name": secs`
/// pair per line), so a line-oriented parse is sufficient and keeps the
/// gate dependency-free.
fn read_timings(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run bench_engine first)"));
    let mut out = BTreeMap::new();
    let mut in_timings = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"timings_secs\"") {
            in_timings = true;
            continue;
        }
        if !in_timings {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(secs) = value.parse::<f64>() {
            out.insert(key.to_string(), secs);
        }
    }
    assert!(
        !out.is_empty(),
        "no timings found in {path}: not a bench_engine output?"
    );
    out
}
