//! CI bench-regression gate: diffs a fresh `BENCH_engine.json` against
//! the committed baseline and fails on merge-loop slowdowns.
//!
//! ```text
//! bench_compare [--baseline FILE] [--fresh FILE] [--threshold PCT] [--floor-ms MS]
//! ```
//!
//! Prints a markdown table of every timing either way. The gate applies
//! only to `merge_loop` timings present in both files: the job fails
//! (exit 1) when a fresh timing exceeds the baseline by more than
//! `--threshold` percent (default 15) *and* by more than `--floor-ms`
//! milliseconds (default 0.5 — microsecond-scale timings jitter far
//! beyond 15% on shared CI runners, and a relative gate alone would
//! flake). Replay timings are reported but never gated, and so are
//! records present on only one side: a record absent from the baseline
//! is a **new** benchmark landing in this PR (e.g.
//! `merge_loop_session_warm`) — it has nothing to regress against and
//! must not fail the job; its timing becomes gate-relevant once the
//! refreshed baseline is committed. A record absent from the fresh run
//! is reported as **removed**.
//!
//! `serve/…` records (the `bench_serve` load driver: daemon round-trip
//! latencies, dominated by socket scheduling rather than the merge
//! loop) are never gated regardless of name — they report as `new` or
//! `info` only, so a fresh `BENCH_serve.json` can ride through the gate
//! before any serve baseline exists.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_path = "BENCH_engine.json".to_string();
    let mut fresh_path = "BENCH_engine.fresh.json".to_string();
    let mut threshold_pct = 15.0f64;
    let mut floor_ms = 0.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline_path = args.next().expect("--baseline FILE"),
            "--fresh" => fresh_path = args.next().expect("--fresh FILE"),
            "--threshold" => {
                threshold_pct = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--threshold PCT");
            }
            "--floor-ms" => {
                floor_ms = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--floor-ms MS");
            }
            other => panic!("unknown argument '{other}'"),
        }
    }

    let baseline = read_timings(&baseline_path);
    let fresh = read_timings(&fresh_path);
    let report = compare(&baseline, &fresh, threshold_pct, floor_ms);

    println!("## Engine bench comparison");
    println!();
    println!("baseline `{baseline_path}` vs fresh `{fresh_path}`");
    println!();
    println!("| timing | baseline (s) | fresh (s) | Δ | gate |");
    println!("|---|---:|---:|---:|---|");
    for row in &report.rows {
        println!("{}", row.markdown());
    }
    println!();
    if !report.new_names.is_empty() {
        println!(
            "{} new benchmark(s) with no baseline yet: {} — refresh the committed \
             baseline to start gating them.",
            report.new_names.len(),
            report.new_names.join(", ")
        );
        println!();
    }
    if report.failures.is_empty() {
        println!("No merge-loop timing regressed beyond {threshold_pct}% (+{floor_ms}ms floor).");
        ExitCode::SUCCESS
    } else {
        println!("Merge-loop regressions beyond {threshold_pct}%:");
        for f in &report.failures {
            println!("- {f}");
        }
        ExitCode::FAILURE
    }
}

/// How one timing fared in the diff.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Gated and regressed: fails the job.
    Fail { delta_pct: f64 },
    /// Gated, within bounds.
    Ok { delta_pct: f64 },
    /// Reported only (replay timings etc.).
    Info { delta_pct: f64 },
    /// Present in the fresh run only — a benchmark landing in this PR.
    New,
    /// Present in the baseline only.
    Removed,
}

#[derive(Debug, Clone)]
struct Row {
    name: String,
    baseline: Option<f64>,
    fresh: Option<f64>,
    verdict: Verdict,
}

impl Row {
    fn markdown(&self) -> String {
        let num = |v: Option<f64>| v.map_or("—".to_string(), |s| format!("{s:.6}"));
        let (delta, verdict) = match &self.verdict {
            Verdict::Fail { delta_pct } => (format!("{delta_pct:+.1}%"), "**FAIL**"),
            Verdict::Ok { delta_pct } => (format!("{delta_pct:+.1}%"), "ok"),
            Verdict::Info { delta_pct } => (format!("{delta_pct:+.1}%"), "info"),
            Verdict::New => (String::new(), "new"),
            Verdict::Removed => (String::new(), "removed"),
        };
        format!(
            "| {} | {} | {} | {delta} | {verdict} |",
            self.name,
            num(self.baseline),
            num(self.fresh)
        )
    }
}

#[derive(Debug, Default)]
struct Report {
    rows: Vec<Row>,
    /// Human-readable descriptions of gated regressions.
    failures: Vec<String>,
    /// Names present in the fresh run but not the baseline.
    new_names: Vec<String>,
}

/// Diffs two timing maps. Only `merge_loop` records present in *both*
/// are gated; fresh-only records are `new` (never a failure — they are
/// this PR's benchmarks), baseline-only records are `removed`.
fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold_pct: f64,
    floor_ms: f64,
) -> Report {
    let mut report = Report::default();
    let mut names: Vec<&String> = baseline.keys().chain(fresh.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        let gated = name.contains("merge_loop") && !name.starts_with("serve/");
        let (b, f) = (baseline.get(name).copied(), fresh.get(name).copied());
        let verdict = match (b, f) {
            (Some(b), Some(f)) => {
                let delta_pct = if b > 0.0 { (f - b) / b * 100.0 } else { 0.0 };
                let regressed = gated && delta_pct > threshold_pct && (f - b) * 1e3 > floor_ms;
                match (gated, regressed) {
                    (true, true) => {
                        report
                            .failures
                            .push(format!("{name}: {b:.6}s -> {f:.6}s ({delta_pct:+.1}%)"));
                        Verdict::Fail { delta_pct }
                    }
                    (true, false) => Verdict::Ok { delta_pct },
                    (false, _) => Verdict::Info { delta_pct },
                }
            }
            (None, Some(_)) => {
                report.new_names.push(name.clone());
                Verdict::New
            }
            (Some(_), None) => Verdict::Removed,
            (None, None) => unreachable!("name came from one of the maps"),
        };
        report.rows.push(Row {
            name: name.clone(),
            baseline: b,
            fresh: f,
            verdict,
        });
    }
    report
}

/// Parses the `timings_secs` object of a `BENCH_engine.json`. The file
/// is written by `bench_engine` in a fixed shape (one `"name": secs`
/// pair per line), so a line-oriented parse is sufficient and keeps the
/// gate dependency-free.
fn read_timings(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run bench_engine first)"));
    let out = parse_timings(&text);
    assert!(
        !out.is_empty(),
        "no timings found in {path}: not a bench_engine output?"
    );
    out
}

fn parse_timings(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut in_timings = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with("\"timings_secs\"") {
            in_timings = true;
            continue;
        }
        if !in_timings {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim().trim_end_matches(',');
        if let Ok(secs) = value.parse::<f64>() {
            out.insert(key.to_string(), secs);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    /// The scenario this PR ships: a brand-new `merge_loop_session_warm`
    /// record exists only in the fresh run. It must be reported as
    /// `new` — never as a gate failure.
    #[test]
    fn fresh_only_merge_loop_record_is_new_not_a_failure() {
        let baseline = timings(&[("Pokec/merge_loop_incremental", 1.70)]);
        let fresh = timings(&[
            ("Pokec/merge_loop_incremental", 1.71),
            ("Pokec/merge_loop_session_warm", 1.75),
            ("Pokec/merge_loop_session_cold", 1.85),
        ]);
        let report = compare(&baseline, &fresh, 15.0, 0.5);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(
            report.new_names,
            vec![
                "Pokec/merge_loop_session_cold".to_string(),
                "Pokec/merge_loop_session_warm".to_string(),
            ]
        );
        let warm = report
            .rows
            .iter()
            .find(|r| r.name.ends_with("session_warm"))
            .unwrap();
        assert_eq!(warm.verdict, Verdict::New);
        assert!(warm.markdown().contains("| new |"));
        assert!(warm.markdown().contains("| — |"), "no baseline column");
    }

    /// Daemon round-trip latencies jitter with socket scheduling, so
    /// `serve/…` records never gate: fresh-only ones are `new`, and
    /// even a wild swing in a record present on both sides only informs
    /// — including names that would otherwise match the merge-loop gate.
    #[test]
    fn serve_records_report_but_never_gate() {
        let baseline = timings(&[("serve/mine_merge_loop_p99", 0.010)]);
        let fresh = timings(&[
            ("serve/mine_merge_loop_p99", 0.100),
            ("serve/delta_p50", 0.002),
        ]);
        let report = compare(&baseline, &fresh, 15.0, 0.5);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.new_names, vec!["serve/delta_p50".to_string()]);
        let p99 = report
            .rows
            .iter()
            .find(|r| r.name.ends_with("p99"))
            .unwrap();
        assert!(matches!(p99.verdict, Verdict::Info { .. }));
        let p50 = report
            .rows
            .iter()
            .find(|r| r.name.ends_with("p50"))
            .unwrap();
        assert_eq!(p50.verdict, Verdict::New);
    }

    #[test]
    fn gated_regression_fails_and_is_listed() {
        let baseline = timings(&[("D/merge_loop_incremental", 0.100)]);
        let fresh = timings(&[("D/merge_loop_incremental", 0.150)]);
        let report = compare(&baseline, &fresh, 15.0, 0.5);
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].contains("+50.0%"));
        assert!(matches!(report.rows[0].verdict, Verdict::Fail { .. }));
    }

    #[test]
    fn jitter_floor_spares_microsecond_timings() {
        // +60% but only +0.3ms: under the absolute floor, not a failure.
        let baseline = timings(&[("D/merge_loop_incremental", 0.0005)]);
        let fresh = timings(&[("D/merge_loop_incremental", 0.0008)]);
        let report = compare(&baseline, &fresh, 15.0, 0.5);
        assert!(report.failures.is_empty());
        assert!(matches!(report.rows[0].verdict, Verdict::Ok { .. }));
    }

    #[test]
    fn ungated_records_only_inform() {
        let baseline = timings(&[("D/replay_flat", 0.001), ("D/gone", 1.0)]);
        let fresh = timings(&[("D/replay_flat", 0.9)]);
        let report = compare(&baseline, &fresh, 15.0, 0.5);
        assert!(report.failures.is_empty());
        let replay = report
            .rows
            .iter()
            .find(|r| r.name.ends_with("flat"))
            .unwrap();
        assert!(matches!(replay.verdict, Verdict::Info { .. }));
        let gone = report
            .rows
            .iter()
            .find(|r| r.name.ends_with("gone"))
            .unwrap();
        assert_eq!(gone.verdict, Verdict::Removed);
    }

    #[test]
    fn parse_reads_bench_engine_shape() {
        let text = r#"{
  "suite": "engine",
  "scale": "Small",
  "seed": 2022,
  "timings_secs": {
    "A/merge_loop_incremental": 0.001458,
    "A/merge_loop_session_warm": 1.754776
  }
}"#;
        let t = parse_timings(text);
        assert_eq!(t.len(), 2);
        assert_eq!(t["A/merge_loop_session_warm"], 1.754776);
    }
}
