//! Fig. 6 + §VI-B: example a-stars mined from DBLP, DBLP-Trend, USFlight
//! and Pokec — the pattern-analysis experiment.
//!
//! The shape to reproduce: venue patterns cluster by research area
//! (Fig. 6(a)–(b)), flight patterns pair `NbDepart-` cores with
//! `NbDepart+`/`DelayArriv-` leaves (§VI-B(2)), and music patterns bundle
//! the young/old taste communities (Fig. 6(c)).
//!
//! ```text
//! cargo run --release -p cspm-bench --bin fig6_patterns [--paper]
//! ```

use cspm_bench::parse_args;
use cspm_core::{cspm_partial, CspmConfig};
use cspm_datasets::benchmark_suite;

fn main() {
    let args = parse_args();
    println!(
        "Fig. 6: example a-stars (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    for d in benchmark_suite(args.scale, args.seed) {
        let g = &d.graph;
        let result = cspm_partial(g, CspmConfig::default());
        println!(
            "== {} == ({} a-stars, {} merges, ratio {:.3})",
            d.name,
            result.model.len(),
            result.merges,
            result.compression_ratio()
        );
        for m in result.model.non_trivial(2).take(6) {
            println!(
                "  {}  fL={} L={:.2} bits",
                m.astar.display(g.attrs()),
                m.frequency,
                m.code_len
            );
        }
        println!();
    }
    println!("paper reference: ({{ICDM,EDBT}},{{PODS,ICDM,EDBT}}) on DBLP;");
    println!("({{NbDepart-}},{{NbDepart+,DelayArriv-}}) on USFlight;");
    println!("({{rap}},{{rock,metal,pop,sladaky}}) and ({{disko}},{{oldies,disko}}) on Pokec.");
}
