//! Extension experiment (paper §VII future work, item 1): graph
//! classification with a-star features.
//!
//! Classes share the same attribute vocabulary but wire attributes
//! differently around hubs; a-star occurrence features therefore beat a
//! structure-blind attribute-histogram baseline.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin ext_graph_classification
//! ```

use cspm_bench::{hr, parse_args};
use cspm_classify::{labeled_graph_collection, train_classifier, CollectionConfig};
use cspm_datasets::Scale;
use cspm_nn::NetConfig;

fn main() {
    let args = parse_args();
    let (graphs_per_class, motifs) = match args.scale {
        Scale::Paper => (60, 16),
        Scale::Small => (30, 10),
        Scale::Tiny => (15, 6),
    };
    println!(
        "Extension: graph classification with a-star features (scale {:?})\n",
        args.scale
    );
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>10}",
        "classes", "fidelity", "a-star acc", "histogram acc", "dims"
    );
    hr(62);
    for n_classes in [2usize, 3] {
        for fidelity in [0.95, 0.85, 0.7] {
            let data = labeled_graph_collection(
                n_classes,
                CollectionConfig {
                    graphs_per_class,
                    motifs_per_graph: motifs,
                    signature_fidelity: fidelity,
                    seed: args.seed,
                },
            );
            let cfg = NetConfig {
                hidden: 16,
                epochs: 250,
                ..Default::default()
            };
            let report = train_classifier(&data, 0.3, 24, &cfg, args.seed ^ 7);
            println!(
                "{:>8} {:>10.2} {:>14.3} {:>14.3} {:>10}",
                n_classes,
                fidelity,
                report.astar_accuracy,
                report.histogram_accuracy,
                report.astar_dims
            );
        }
    }
    println!("\nreading: a-star features separate structurally-defined classes that");
    println!("attribute histograms cannot; the gap narrows as signature fidelity drops.");
}
