//! Table II: statistics about the (synthetic) benchmark datasets,
//! including the inverted-database coreset count `|Sc^M|`.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin table2_datasets [--paper]
//! ```

use cspm_bench::{hr, parse_args};
use cspm_core::{CoresetMode, GainPolicy, InvertedDb};
use cspm_datasets::benchmark_suite;

fn main() {
    let args = parse_args();
    println!(
        "Table II: Statistics about datasets (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!(
        "{:<22} {:>10} {:>14} {:>8} {:>8} {:>10}",
        "Dataset", "#Nodes", "#Total edges", "|A|", "|Sc^M|", "Category"
    );
    hr(78);
    for d in benchmark_suite(args.scale, args.seed) {
        let (n, m, a) = d.statistics();
        let db = InvertedDb::build(&d.graph, CoresetMode::SingleValue, GainPolicy::Total);
        println!(
            "{:<22} {:>10} {:>14} {:>8} {:>8} {:>10}",
            d.name,
            n,
            m,
            a,
            db.coreset_count(),
            d.category
        );
    }
    println!();
    println!(
        "paper reference (Table II): DBLP 2,723/3,464/|Sc^M|=127; DBLP-Trend 2,723/3,464/271;"
    );
    println!("USFlight 280/4,030/70; Pokec 1,632,803/30,622,564/914");
}
