//! Ablation A1 (DESIGN.md §3.3): gain accounting policy.
//!
//! `GainPolicy::Total` (paper default: data gain minus the model-cost
//! delta) vs `GainPolicy::DataOnly` (raw Eq. 9). DataOnly accepts more
//! merges and shrinks `L(I|M)` further, but grows the code tables; Total
//! is the better *total* description.
//!
//! ```text
//! cargo run --release -p cspm-bench --bin ablation_gain_policy
//! ```

use cspm_bench::{fmt_secs, hr, parse_args};
use cspm_core::{cspm_partial, CspmConfig, GainPolicy};
use cspm_datasets::benchmark_suite;

fn main() {
    let args = parse_args();
    println!(
        "Ablation: gain policy (Total vs DataOnly), scale {:?}, seed {}\n",
        args.scale, args.seed
    );
    println!(
        "{:<22} {:>9} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "Dataset", "policy", "merges", "L(I|M)", "L(M)", "total DL", "time"
    );
    hr(92);
    for d in benchmark_suite(args.scale, args.seed) {
        if d.graph.vertex_count() > 10_000 {
            // keep the ablation affordable: DataOnly accepts many more
            // merges and is slow on the Pokec-scale graph
            continue;
        }
        for policy in [GainPolicy::Total, GainPolicy::DataOnly] {
            let cfg = CspmConfig {
                gain_policy: policy,
                ..Default::default()
            };
            let t = std::time::Instant::now();
            let res = cspm_partial(&d.graph, cfg);
            let time = t.elapsed().as_secs_f64();
            println!(
                "{:<22} {:>9} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>10}",
                d.name,
                format!("{policy:?}"),
                res.merges,
                res.db.data_cost(),
                res.db.model_cost(),
                res.final_dl,
                fmt_secs(time)
            );
        }
    }
    println!("\nreading: DataOnly minimises column L(I|M); Total minimises column total DL.");
}
