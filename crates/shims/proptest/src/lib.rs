//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / `any` strategies,
//! [`collection::vec`], the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic
//! seeded RNG; there is no shrinking — failures report the case number
//! and seed so a failing case can be replayed by re-running the test.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Test-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for `case` of the test seeded by `seed`.
    pub fn for_case(seed: u64, case: u32) -> Self {
        Self(StdRng::seed_from_u64(
            seed ^ (0x9E37_79B9 + case as u64).wrapping_mul(0x1000_0001),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    fn uniform_f64(&mut self) -> f64 {
        self.0.gen()
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n.max(1))
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.uniform_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full domain of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Element counts accepted by [`vec()`]: a fixed size or a size range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + rng.below(self.end() - self.start() + 1)
        }
    }

    /// Strategy for vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// The result of [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not apply.
    Reject,
}

/// Runs `body` for every case; used by the [`proptest!`] expansion.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-test seed: tests are reproducible run over run.
    let seed = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    let mut rejected = 0u32;
    let mut case = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    let mut run = 0u32;
    while run < config.cases {
        if rejected > max_rejects {
            panic!("{test_name}: too many prop_assume! rejections ({rejected})");
        }
        let mut rng = TestRng::for_case(seed, case);
        case += 1;
        match body(&mut rng) {
            Ok(()) => run += 1,
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Supports the upstream surface form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(any::<bool>(), 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::new_value(&($strategy), rng);)*
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Skips cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..25, f in -1.0f64..1.0) {
            prop_assert!((5..25).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_honours_len(v in crate::collection::vec(0u32..7, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|n| n * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30, "unexpected {}", n);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
            prop_assert_ne!(a % 2, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
