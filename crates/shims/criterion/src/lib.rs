//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the benchmarking subset the workspace's `benches/` use:
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple adaptive loop —
//! warm up, then time batches until a wall-clock budget is spent — and
//! the median per-iteration time is printed in criterion's familiar
//! `name  time: [..]` shape. Set `CSPM_BENCH_JSON=<path>` to also append
//! `{"name", "median_ns", "iters"}` JSON lines for machine consumption.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup (accepted, not acted upon).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Minimum measured iterations.
    min_iters: u64,
    /// Wall-clock budget for measurement.
    budget: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            min_iters: 10,
            budget: Duration::from_millis(800),
        }
    }
}

/// One recorded result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark id (`group/name` for grouped benches).
    pub name: String,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
    samples: Vec<Sample>,
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            settings: self.settings,
            times_ns: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        let sample = b.finish(&name.into());
        report(&sample);
        self.samples.push(sample);
        self
    }

    /// Starts a named group; benchmarks inside are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            settings,
        }
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Caps the measured iterations (upstream semantics: statistical
    /// sample count; here: the minimum iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.min_iters = (n as u64).max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            settings: self.settings,
            times_ns: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        let sample = b.finish(&format!("{}/{}", self.prefix, name.into()));
        report(&sample);
        self.criterion.samples.push(sample);
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Measures a routine.
pub struct Bencher {
    settings: Settings,
    times_ns: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = Instant::now();
        let mut warm = 0u64;
        while warm < 2 || (warmup.elapsed() < Duration::from_millis(50) && warm < 1_000) {
            std::hint::black_box(routine());
            warm += 1;
        }
        let started = Instant::now();
        while self.iters < self.settings.min_iters || started.elapsed() < self.settings.budget {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.times_ns.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        while self.iters < self.settings.min_iters || started.elapsed() < self.settings.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.times_ns.push(t.elapsed().as_nanos() as f64);
            self.iters += 1;
            if self.iters >= 1_000_000 {
                break;
            }
        }
    }

    fn finish(mut self, name: &str) -> Sample {
        self.times_ns.sort_by(f64::total_cmp);
        let median_ns = if self.times_ns.is_empty() {
            0.0
        } else {
            self.times_ns[self.times_ns.len() / 2]
        };
        Sample {
            name: name.to_string(),
            median_ns,
            iters: self.iters,
        }
    }
}

fn report(sample: &Sample) {
    println!(
        "{:<40} time: [{}]  ({} iters)",
        sample.name,
        fmt_ns(sample.median_ns),
        sample.iters
    );
    if let Ok(path) = std::env::var("CSPM_BENCH_JSON") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\":\"{}\",\"median_ns\":{:.1},\"iters\":{}}}",
                sample.name, sample.median_ns, sample.iters
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_sample() {
        // Tiny budget so the test is fast.
        let mut c = Criterion {
            settings: Settings {
                min_iters: 3,
                budget: Duration::from_millis(1),
            },
            ..Default::default()
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.samples().len(), 1);
        assert!(c.samples()[0].iters >= 3);
        assert!(c.samples()[0].median_ns >= 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            settings: Settings {
                min_iters: 1,
                budget: Duration::from_millis(1),
            },
            ..Default::default()
        };
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            g.bench_function("x", |b| {
                b.iter_batched(|| 7u64, |v| v * 2, BatchSize::SmallInput)
            });
            g.finish();
        }
        assert_eq!(c.samples()[0].name, "grp/x");
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
