//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the *exact API subset* the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle` —
//! over a xoshiro256++ generator. Streams are deterministic per seed but
//! intentionally *not* bit-compatible with upstream `rand`; all
//! workspace consumers only rely on seeded determinism, never on a
//! specific stream.

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the (non-empty) range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; state is
    /// expanded from the seed with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` on an empty slice.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_honoured() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
    }
}
