//! Krimp: mining itemsets that compress (Vreeken et al., DMKD 2011).

use crate::cover::{CodeTable, DlBreakdown, Pattern};
use crate::eclat::{eclat, FrequentItemset};
use crate::transaction::TransactionDb;

/// Configuration for [`krimp`].
#[derive(Debug, Clone, Copy)]
pub struct KrimpConfig {
    /// Absolute minimum support handed to the candidate miner (Eclat).
    /// This is the parameter the CSPM paper criticises: results depend on
    /// it, which motivates CSPM's parameter-free design.
    pub min_support: u32,
    /// Whether to apply post-acceptance pruning: after accepting a
    /// candidate, retry removing code-table patterns whose usage dropped.
    pub prune: bool,
    /// Restrict candidates to *closed* itemsets (the Krimp paper's
    /// recommended setting): same reachable models, far fewer
    /// evaluations on redundant data.
    pub closed_candidates: bool,
}

impl Default for KrimpConfig {
    fn default() -> Self {
        Self {
            min_support: 2,
            prune: true,
            closed_candidates: false,
        }
    }
}

/// Result of a Krimp run.
#[derive(Debug, Clone)]
pub struct KrimpResult {
    /// The final code table.
    pub code_table: CodeTable,
    /// Description length of the final model+data.
    pub dl: DlBreakdown,
    /// Description length of the singleton-only baseline.
    pub baseline: DlBreakdown,
    /// Number of accepted (kept) candidate patterns.
    pub accepted: usize,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

impl KrimpResult {
    /// Achieved compression ratio `L(CT,D)/L(ST,D)` (lower is better).
    pub fn compression_ratio(&self) -> f64 {
        self.dl.total() / self.baseline.total()
    }
}

/// Runs Krimp: mines frequent itemsets, considers them in the *standard
/// candidate order* (support desc, then length desc, then lexicographic),
/// and keeps each candidate only if it lowers the total description
/// length.
pub fn krimp(db: &TransactionDb, config: KrimpConfig) -> KrimpResult {
    let mined = if config.closed_candidates {
        crate::closed::closed_only(eclat(db, config.min_support))
    } else {
        eclat(db, config.min_support)
    };
    let mut candidates: Vec<FrequentItemset> =
        mined.into_iter().filter(|f| f.items.len() >= 2).collect();
    candidates.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.items.len().cmp(&a.items.len()))
            .then(a.items.cmp(&b.items))
    });

    let mut ct = CodeTable::singletons(db);
    let (_, baseline) = ct.evaluate(db);
    let mut best = baseline;
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    for cand in candidates {
        if ct.contains(&cand.items) {
            continue;
        }
        evaluated += 1;
        let idx = ct.insert(Pattern::new(cand.items, cand.support));
        let (_, dl) = ct.evaluate(db);
        if dl.total() < best.total() - 1e-9 {
            best = dl;
            accepted += 1;
            if config.prune {
                let (pruned_dl, removed) = prune(&mut ct, db, best);
                best = pruned_dl;
                accepted -= removed.min(accepted);
            }
        } else {
            ct.remove(idx);
        }
    }

    KrimpResult {
        code_table: ct,
        dl: best,
        baseline,
        accepted,
        evaluated,
    }
}

/// Post-acceptance pruning: repeatedly try to drop the non-singleton
/// pattern whose removal lowers the DL the most; stop when none helps.
/// Returns the improved DL and the number of removed patterns.
fn prune(ct: &mut CodeTable, db: &TransactionDb, mut best: DlBreakdown) -> (DlBreakdown, usize) {
    let mut removed = 0usize;
    loop {
        let mut best_removal: Option<(usize, DlBreakdown)> = None;
        let non_singletons: Vec<usize> = ct
            .patterns()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.len() > 1)
            .map(|(i, _)| i)
            .collect();
        for idx in non_singletons {
            let mut trial = ct.clone();
            trial.remove(idx);
            let (_, dl) = trial.evaluate(db);
            if dl.total() < best.total() - 1e-9
                && best_removal
                    .as_ref()
                    .is_none_or(|(_, b)| dl.total() < b.total())
            {
                best_removal = Some((idx, dl));
            }
        }
        match best_removal {
            Some((idx, dl)) => {
                ct.remove(idx);
                best = dl;
                removed += 1;
            }
            None => return (best, removed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Database with one strongly repeated pattern {0,1,2} plus noise.
    fn patterned_db() -> TransactionDb {
        let mut rows = Vec::new();
        for _ in 0..20 {
            rows.push(vec![0, 1, 2]);
        }
        rows.push(vec![0, 3]);
        rows.push(vec![1, 4]);
        rows.push(vec![2, 5]);
        rows.push(vec![3, 4, 5]);
        TransactionDb::from_rows(rows)
    }

    #[test]
    fn krimp_finds_the_planted_pattern() {
        let res = krimp(&patterned_db(), KrimpConfig::default());
        assert!(res.accepted >= 1);
        assert!(res.code_table.contains(&[0, 1, 2]));
        assert!(res.dl.total() < res.baseline.total());
        assert!(res.compression_ratio() < 1.0);
    }

    #[test]
    fn krimp_never_worsens_dl() {
        let db = TransactionDb::from_rows(vec![vec![0], vec![1], vec![2], vec![0, 1, 2]]);
        let res = krimp(&db, KrimpConfig::default());
        assert!(res.dl.total() <= res.baseline.total() + 1e-9);
    }

    #[test]
    fn higher_min_support_finds_fewer_or_equal_patterns() {
        let db = patterned_db();
        let low = krimp(
            &db,
            KrimpConfig {
                min_support: 2,
                prune: false,
                ..Default::default()
            },
        );
        let high = krimp(
            &db,
            KrimpConfig {
                min_support: 10,
                prune: false,
                ..Default::default()
            },
        );
        assert!(high.evaluated <= low.evaluated);
    }

    #[test]
    fn pruning_does_not_hurt() {
        let db = patterned_db();
        let unpruned = krimp(
            &db,
            KrimpConfig {
                min_support: 2,
                prune: false,
                ..Default::default()
            },
        );
        let pruned = krimp(
            &db,
            KrimpConfig {
                min_support: 2,
                prune: true,
                ..Default::default()
            },
        );
        assert!(pruned.dl.total() <= unpruned.dl.total() + 1e-9);
    }

    #[test]
    fn closed_candidates_need_fewer_evaluations() {
        let db = patterned_db();
        let all = krimp(
            &db,
            KrimpConfig {
                closed_candidates: false,
                ..Default::default()
            },
        );
        let closed = krimp(
            &db,
            KrimpConfig {
                closed_candidates: true,
                ..Default::default()
            },
        );
        assert!(closed.evaluated <= all.evaluated);
        // Both still find the planted pattern and compress comparably.
        assert!(closed.code_table.contains(&[0, 1, 2]));
        assert!(closed.dl.total() <= all.dl.total() * 1.1);
    }
}
