//! Code tables and database covering, shared by Krimp and SLIM.
//!
//! A model is a *code table*: a list of itemset patterns, each with a
//! Shannon code priced by its usage in the greedy cover of the database.
//! The description length is `L(CT, D) = L(CT|D) + L(D|CT)` exactly as in
//! Krimp (§III of the CSPM paper summarises the framework).

use cspm_mdl::StandardCodeTable;

use crate::transaction::{Item, TransactionDb};

/// An itemset pattern stored in a code table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    items: Vec<Item>,
    support: u32,
}

impl Pattern {
    /// Creates a pattern; items are sorted and deduplicated. `support` is
    /// its support in the database (used only for ordering).
    pub fn new(mut items: Vec<Item>, support: u32) -> Self {
        assert!(!items.is_empty(), "patterns must be non-empty");
        items.sort_unstable();
        items.dedup();
        Self { items, support }
    }

    /// Sorted items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Support recorded at insertion.
    pub fn support(&self) -> u32 {
        self.support
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false; patterns are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Result of covering a database with a code table.
#[derive(Debug, Clone)]
pub struct CoverResult {
    /// Usage count per pattern (index-aligned with the code table).
    pub usages: Vec<u64>,
    /// Sum of all usages.
    pub total_usage: u64,
    /// Per-transaction list of pattern indices used in its cover.
    pub covers: Vec<Vec<u32>>,
}

/// Description-length breakdown in bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DlBreakdown {
    /// `L(CT|D)`: cost of materialising the code table.
    pub model: f64,
    /// `L(D|CT)`: cost of the database encoded with the table.
    pub data: f64,
}

impl DlBreakdown {
    /// `L(CT, D) = L(CT|D) + L(D|CT)`.
    pub fn total(&self) -> f64 {
        self.model + self.data
    }
}

/// A Krimp/SLIM code table over a fixed database universe.
///
/// Patterns are kept in the *standard cover order*: longer first, then
/// higher support, then lexicographically smaller. Singletons for every
/// item are always present, guaranteeing every transaction is coverable.
#[derive(Debug, Clone)]
pub struct CodeTable {
    patterns: Vec<Pattern>,
    st: StandardCodeTable,
    n_items: usize,
}

impl CodeTable {
    /// Builds the initial table containing only singletons — the standard
    /// code table state.
    pub fn singletons(db: &TransactionDb) -> Self {
        let counts = db.item_counts();
        let st = StandardCodeTable::from_counts(counts.clone());
        let mut patterns: Vec<Pattern> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| Pattern::new(vec![i as Item], c as u32))
            .collect();
        sort_cover_order(&mut patterns);
        Self {
            patterns,
            st,
            n_items: db.n_items(),
        }
    }

    /// The standard code table used to price materialised patterns.
    pub fn st(&self) -> &StandardCodeTable {
        &self.st
    }

    /// Patterns in cover order.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Number of patterns (including singletons).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Always false: singletons are always present.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Whether an identical itemset is already present.
    pub fn contains(&self, items: &[Item]) -> bool {
        self.patterns.iter().any(|p| p.items() == items)
    }

    /// Inserts `pattern` at its cover-order position; returns its index.
    pub fn insert(&mut self, pattern: Pattern) -> usize {
        let pos = self
            .patterns
            .partition_point(|p| cover_order_key(p) < cover_order_key(&pattern));
        self.patterns.insert(pos, pattern);
        pos
    }

    /// Removes the pattern at `idx`.
    ///
    /// # Panics
    /// Panics if the pattern is a singleton (those must stay).
    pub fn remove(&mut self, idx: usize) -> Pattern {
        assert!(self.patterns[idx].len() > 1, "singletons cannot be removed");
        self.patterns.remove(idx)
    }

    /// Greedily covers every transaction: patterns are tried in cover
    /// order and used when all their items are present and still
    /// uncovered (Krimp's no-overlap cover).
    pub fn cover(&self, db: &TransactionDb) -> CoverResult {
        let mut usages = vec![0u64; self.patterns.len()];
        let mut covers = Vec::with_capacity(db.len());
        // Scratch: 0 = absent, 1 = present & uncovered, 2 = covered.
        let mut state = vec![0u8; self.n_items];
        for t in db.iter() {
            for &i in t {
                state[i as usize] = 1;
            }
            let mut remaining = t.len();
            let mut used = Vec::new();
            for (idx, p) in self.patterns.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                if p.len() > remaining {
                    continue;
                }
                if p.items().iter().all(|&i| state[i as usize] == 1) {
                    for &i in p.items() {
                        state[i as usize] = 2;
                    }
                    remaining -= p.len();
                    usages[idx] += 1;
                    used.push(idx as u32);
                }
            }
            debug_assert_eq!(remaining, 0, "singletons guarantee a full cover");
            for &i in t {
                state[i as usize] = 0;
            }
            covers.push(used);
        }
        let total_usage = usages.iter().sum();
        CoverResult {
            usages,
            total_usage,
            covers,
        }
    }

    /// Description length given a cover of the database.
    ///
    /// * `L(D|CT) = Σ_p usage_p · (-log2(usage_p / s))`;
    /// * `L(CT|D) = Σ_{p: usage>0} (Σ_{i∈p} L_ST(i)) + (-log2(usage_p / s))`
    ///   — each in-use pattern is materialised with ST codes on the left
    ///   and its own code on the right (unused patterns cost nothing and
    ///   are pruned on the fly).
    pub fn description_length(&self, cover: &CoverResult) -> DlBreakdown {
        let s = cover.total_usage as f64;
        let mut model = 0.0;
        let mut data = 0.0;
        for (p, &u) in self.patterns.iter().zip(&cover.usages) {
            if u == 0 {
                continue;
            }
            let code = -((u as f64 / s).log2());
            data += u as f64 * code;
            model += self.st.set_cost(p.items().iter().map(|&i| i as usize)) + code;
        }
        DlBreakdown { model, data }
    }

    /// Convenience: cover then compute the description length.
    pub fn evaluate(&self, db: &TransactionDb) -> (CoverResult, DlBreakdown) {
        let cover = self.cover(db);
        let dl = self.description_length(&cover);
        (cover, dl)
    }
}

fn cover_order_key(p: &Pattern) -> (std::cmp::Reverse<usize>, std::cmp::Reverse<u32>, Vec<Item>) {
    (
        std::cmp::Reverse(p.len()),
        std::cmp::Reverse(p.support()),
        p.items().to_vec(),
    )
}

fn sort_cover_order(patterns: &mut [Pattern]) {
    patterns.sort_by_key(cover_order_key);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        TransactionDb::from_rows(vec![vec![0, 1], vec![0, 1], vec![0, 1, 2], vec![2]])
    }

    #[test]
    fn singleton_table_covers_each_item_individually() {
        let db = db();
        let ct = CodeTable::singletons(&db);
        let (cover, dl) = ct.evaluate(&db);
        assert_eq!(cover.total_usage, db.total_incidences());
        // Data cost with singletons equals the ST baseline cost.
        assert!((dl.data - ct.st().baseline_data_cost()).abs() < 1e-9);
    }

    #[test]
    fn adding_a_shared_pattern_reduces_dl() {
        let db = db();
        let mut ct = CodeTable::singletons(&db);
        let (_, before) = ct.evaluate(&db);
        ct.insert(Pattern::new(vec![0, 1], 3));
        let (cover, after) = ct.evaluate(&db);
        assert!(after.total() < before.total());
        // The pair is used three times; singletons 0 and 1 fall to zero.
        let pair_idx = ct
            .patterns()
            .iter()
            .position(|p| p.items() == [0, 1])
            .unwrap();
        assert_eq!(cover.usages[pair_idx], 3);
    }

    #[test]
    fn cover_is_lossless_partition() {
        let db = db();
        let mut ct = CodeTable::singletons(&db);
        ct.insert(Pattern::new(vec![0, 1], 3));
        let cover = ct.cover(&db);
        for (t, used) in db.iter().zip(&cover.covers) {
            let mut reconstructed: Vec<Item> = used
                .iter()
                .flat_map(|&idx| ct.patterns()[idx as usize].items().iter().copied())
                .collect();
            reconstructed.sort_unstable();
            assert_eq!(
                reconstructed, t,
                "cover must reproduce the transaction exactly"
            );
        }
    }

    #[test]
    fn cover_order_prefers_longer_then_more_frequent() {
        let mut patterns = vec![
            Pattern::new(vec![3], 9),
            Pattern::new(vec![0, 1], 2),
            Pattern::new(vec![0, 1, 2], 1),
            Pattern::new(vec![0, 2], 5),
        ];
        sort_cover_order(&mut patterns);
        let lens: Vec<usize> = patterns.iter().map(Pattern::len).collect();
        assert_eq!(lens, vec![3, 2, 2, 1]);
        assert_eq!(patterns[1].items(), &[0, 2]); // support 5 beats support 2
    }

    #[test]
    #[should_panic(expected = "singletons cannot be removed")]
    fn singleton_removal_is_refused() {
        let db = db();
        let mut ct = CodeTable::singletons(&db);
        ct.remove(0);
    }

    #[test]
    fn insert_keeps_order() {
        let db = db();
        let mut ct = CodeTable::singletons(&db);
        let idx = ct.insert(Pattern::new(vec![0, 2], 1));
        assert_eq!(idx, 0, "longest pattern sorts first");
    }
}
