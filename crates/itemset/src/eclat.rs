//! Eclat frequent-itemset mining (vertical tid-list intersection).
//!
//! Krimp requires a pre-mined candidate collection; Eclat is the
//! classical choice for dense ids and moderate database sizes.

use crate::transaction::{Item, TransactionDb};

/// A frequent itemset with its support (number of containing
/// transactions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted items.
    pub items: Vec<Item>,
    /// Number of transactions containing all the items.
    pub support: u32,
}

/// Mines all itemsets with `support >= min_support` (absolute count,
/// ≥ 1). Returns itemsets of every length, including singletons.
///
/// Depth-first Eclat: each recursion extends a prefix with items larger
/// than the last, intersecting tid-lists.
pub fn eclat(db: &TransactionDb, min_support: u32) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "support threshold must be at least 1");
    // Vertical layout: tid lists per item.
    let mut tids: Vec<Vec<u32>> = vec![Vec::new(); db.n_items()];
    for (t, row) in db.iter().enumerate() {
        for &i in row {
            tids[i as usize].push(t as u32);
        }
    }
    let frequent: Vec<(Item, Vec<u32>)> = tids
        .into_iter()
        .enumerate()
        .filter(|(_, t)| t.len() >= min_support as usize)
        .map(|(i, t)| (i as Item, t))
        .collect();

    let mut out = Vec::new();
    // Singletons first.
    for (item, t) in &frequent {
        out.push(FrequentItemset {
            items: vec![*item],
            support: t.len() as u32,
        });
    }
    // Depth-first extension.
    for (idx, (item, t)) in frequent.iter().enumerate() {
        extend(
            &mut vec![*item],
            t,
            &frequent[idx + 1..],
            min_support,
            &mut out,
        );
    }
    out
}

fn extend(
    prefix: &mut Vec<Item>,
    prefix_tids: &[u32],
    rest: &[(Item, Vec<u32>)],
    min_support: u32,
    out: &mut Vec<FrequentItemset>,
) {
    for (idx, (item, t)) in rest.iter().enumerate() {
        let joint = intersect(prefix_tids, t);
        if joint.len() >= min_support as usize {
            prefix.push(*item);
            out.push(FrequentItemset {
                items: prefix.clone(),
                support: joint.len() as u32,
            });
            extend(prefix, &joint, &rest[idx + 1..], min_support, out);
            prefix.pop();
        }
    }
}

/// Intersection of two sorted tid lists.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn toy_db() -> TransactionDb {
        TransactionDb::from_rows(vec![
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2],
        ])
    }

    /// Brute-force reference: enumerate all subsets of the item universe.
    fn brute_force(db: &TransactionDb, min_support: u32) -> BTreeSet<(Vec<Item>, u32)> {
        let n = db.n_items();
        let mut out = BTreeSet::new();
        for mask in 1u32..(1 << n) {
            let items: Vec<Item> = (0..n as u32).filter(|i| mask & (1 << i) != 0).collect();
            let support = db
                .iter()
                .filter(|t| items.iter().all(|i| t.binary_search(i).is_ok()))
                .count() as u32;
            if support >= min_support {
                out.insert((items, support));
            }
        }
        out
    }

    #[test]
    fn matches_brute_force() {
        let db = toy_db();
        for min_support in 1..=5 {
            let got: BTreeSet<_> = eclat(&db, min_support)
                .into_iter()
                .map(|f| (f.items, f.support))
                .collect();
            assert_eq!(got, brute_force(&db, min_support), "minsup={min_support}");
        }
    }

    #[test]
    fn known_supports() {
        let db = toy_db();
        let found = eclat(&db, 3);
        let get = |items: &[Item]| found.iter().find(|f| f.items == items).map(|f| f.support);
        assert_eq!(get(&[0]), Some(4));
        assert_eq!(get(&[0, 1]), Some(3));
        assert_eq!(get(&[0, 1, 2]), None); // support 2 < 3
    }

    #[test]
    fn empty_db_yields_nothing() {
        let db = TransactionDb::from_rows(vec![]);
        assert!(eclat(&db, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_support_rejected() {
        let db = toy_db();
        let _ = eclat(&db, 0);
    }
}
