//! Transaction databases (binary tables) for Krimp and SLIM.

/// Dense item identifier.
pub type Item = u32;

/// A transaction database: a bag of transactions, each a sorted,
/// deduplicated set of items with ids in `0..n_items`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionDb {
    transactions: Vec<Vec<Item>>,
    n_items: usize,
}

impl TransactionDb {
    /// Builds a database from rows; rows are sorted and deduplicated,
    /// `n_items` is inferred as `max item + 1`.
    pub fn from_rows(rows: Vec<Vec<Item>>) -> Self {
        let mut transactions = rows;
        let mut n_items = 0usize;
        for t in &mut transactions {
            t.sort_unstable();
            t.dedup();
            if let Some(&m) = t.last() {
                n_items = n_items.max(m as usize + 1);
            }
        }
        Self {
            transactions,
            n_items,
        }
    }

    /// Builds a database with an explicit item universe size (useful when
    /// some items never occur).
    pub fn with_item_universe(rows: Vec<Vec<Item>>, n_items: usize) -> Self {
        let mut db = Self::from_rows(rows);
        assert!(
            db.n_items <= n_items,
            "row references item outside universe"
        );
        db.n_items = n_items;
        db
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// The `i`-th transaction (sorted items).
    pub fn transaction(&self, i: usize) -> &[Item] {
        &self.transactions[i]
    }

    /// Iterates over all transactions.
    pub fn iter(&self) -> impl Iterator<Item = &[Item]> {
        self.transactions.iter().map(Vec::as_slice)
    }

    /// Per-item occurrence counts (supports of singletons).
    pub fn item_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_items];
        for t in &self.transactions {
            for &i in t {
                counts[i as usize] += 1;
            }
        }
        counts
    }

    /// Total number of `(transaction, item)` incidences.
    pub fn total_incidences(&self) -> u64 {
        self.transactions.iter().map(|t| t.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_normalised() {
        let db = TransactionDb::from_rows(vec![vec![2, 0, 2], vec![1]]);
        assert_eq!(db.transaction(0), &[0, 2]);
        assert_eq!(db.n_items(), 3);
        assert_eq!(db.len(), 2);
        assert_eq!(db.total_incidences(), 3);
    }

    #[test]
    fn item_counts_are_supports() {
        let db = TransactionDb::from_rows(vec![vec![0, 1], vec![0], vec![1, 2]]);
        assert_eq!(db.item_counts(), vec![2, 2, 1]);
    }

    #[test]
    fn explicit_universe() {
        let db = TransactionDb::with_item_universe(vec![vec![0]], 5);
        assert_eq!(db.n_items(), 5);
        assert_eq!(db.item_counts(), vec![1, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn universe_must_cover_rows() {
        let _ = TransactionDb::with_item_universe(vec![vec![7]], 3);
    }
}
