//! Closed frequent itemsets.
//!
//! An itemset is *closed* when no proper superset has the same support.
//! The Krimp paper recommends mining closed itemsets as candidates:
//! they carry the same support information as the full collection at a
//! fraction of the size, which shortens Krimp's candidate pass without
//! changing what can be found.

use std::collections::HashMap;

use crate::eclat::{eclat, FrequentItemset};
use crate::transaction::TransactionDb;

/// Filters a mined collection down to the closed itemsets.
///
/// Implementation: group by support, then drop any itemset that has a
/// proper superset with identical support (supersets can only appear in
/// the same support group by anti-monotonicity).
pub fn closed_only(mut itemsets: Vec<FrequentItemset>) -> Vec<FrequentItemset> {
    let mut by_support: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, f) in itemsets.iter().enumerate() {
        by_support.entry(f.support).or_default().push(i);
    }
    let mut keep = vec![true; itemsets.len()];
    for group in by_support.values() {
        for &small in group {
            for &large in group {
                if small == large || itemsets[small].items.len() >= itemsets[large].items.len() {
                    continue;
                }
                let is_subset = itemsets[small]
                    .items
                    .iter()
                    .all(|i| itemsets[large].items.binary_search(i).is_ok());
                if is_subset {
                    keep[small] = false;
                    break;
                }
            }
        }
    }
    let mut idx = 0;
    itemsets.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
    itemsets
}

/// Mines the closed frequent itemsets directly (Eclat + closure filter).
pub fn closed_itemsets(db: &TransactionDb, min_support: u32) -> Vec<FrequentItemset> {
    closed_only(eclat(db, min_support))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TransactionDb {
        // {0,1} always co-occur; {2} sometimes joins them.
        TransactionDb::from_rows(vec![
            vec![0, 1],
            vec![0, 1],
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![3],
        ])
    }

    #[test]
    fn non_closed_subsets_are_dropped() {
        let closed = closed_itemsets(&db(), 1);
        let has = |items: &[u32]| closed.iter().any(|f| f.items == items);
        // {0} and {1} have support 4, same as {0,1}: not closed.
        assert!(!has(&[0]));
        assert!(!has(&[1]));
        assert!(has(&[0, 1])); // support 4, no equal-support superset
                               // {2} has support 2, same as {0,1,2}: not closed.
        assert!(!has(&[2]));
        assert!(has(&[0, 1, 2]));
        assert!(has(&[3]));
    }

    #[test]
    fn closure_preserves_support_information() {
        // Every frequent itemset's support equals the support of some
        // closed superset — the defining property of the closed family.
        let all = eclat(&db(), 1);
        let closed = closed_itemsets(&db(), 1);
        for f in &all {
            let witness = closed.iter().any(|c| {
                c.support == f.support && f.items.iter().all(|i| c.items.binary_search(i).is_ok())
            });
            assert!(witness, "no closed witness for {:?}", f.items);
        }
        assert!(closed.len() < all.len());
    }

    #[test]
    fn distinct_supports_are_all_closed() {
        // A database where every itemset has a unique support keeps all.
        let db = TransactionDb::from_rows(vec![vec![0], vec![0, 1], vec![0, 1]]);
        let all = eclat(&db, 1);
        let closed = closed_itemsets(&db, 1);
        // {1} support 2 == {0,1} support 2 -> dropped; {0} support 3 kept.
        assert_eq!(closed.len(), all.len() - 1);
    }
}
