//! SLIM: directly mining descriptive patterns (Smets & Vreeken, SDM 2012).
//!
//! Unlike Krimp, SLIM needs no pre-mined candidate collection: in every
//! iteration it considers pairwise unions `X ∪ Y` of current code-table
//! entries, ranked by an estimated description-length gain derived from
//! their co-usage, and accepts the first union that *actually* lowers the
//! total DL. This on-the-fly candidate generation is what CSPM borrows
//! (§II: "inspired by an improved version of Krimp, named SLIM").

use std::collections::HashMap;

use crate::cover::{CodeTable, CoverResult, DlBreakdown, Pattern};
use crate::transaction::{Item, TransactionDb};

/// Configuration for [`slim`].
#[derive(Debug, Clone, Copy)]
pub struct SlimConfig {
    /// Upper bound on accepted merges; `None` runs to convergence.
    /// (A safety valve for very large inputs, not an algorithm knob.)
    pub max_accepted: Option<usize>,
    /// Evaluate at most this many top-ranked candidates per iteration
    /// before giving up on the iteration. SLIM's estimate ordering means
    /// the accepted candidate is almost always near the front.
    pub eval_budget_per_iter: usize,
}

impl Default for SlimConfig {
    fn default() -> Self {
        Self {
            max_accepted: None,
            eval_budget_per_iter: 64,
        }
    }
}

/// Result of a SLIM run.
#[derive(Debug, Clone)]
pub struct SlimResult {
    /// Final code table.
    pub code_table: CodeTable,
    /// Final cover of the database.
    pub cover: CoverResult,
    /// Final description length.
    pub dl: DlBreakdown,
    /// Singleton-only baseline description length.
    pub baseline: DlBreakdown,
    /// Number of accepted merges (patterns added).
    pub accepted: usize,
    /// Number of exact DL evaluations performed.
    pub evaluated: usize,
}

impl SlimResult {
    /// Achieved compression ratio `L(CT,D)/L(ST,D)` (lower is better).
    pub fn compression_ratio(&self) -> f64 {
        self.dl.total() / self.baseline.total()
    }
}

/// Runs SLIM to convergence (or budget exhaustion).
pub fn slim(db: &TransactionDb, config: SlimConfig) -> SlimResult {
    let mut ct = CodeTable::singletons(db);
    let (mut cover, baseline) = ct.evaluate(db);
    let mut dl = baseline;
    let mut accepted = 0usize;
    let mut evaluated = 0usize;

    loop {
        if config.max_accepted.is_some_and(|m| accepted >= m) {
            break;
        }
        let candidates = ranked_candidates(&ct, &cover);
        let mut improved = false;
        for (x, y, _est) in candidates.into_iter().take(config.eval_budget_per_iter) {
            let union: Vec<Item> = merge_items(ct.patterns()[x].items(), ct.patterns()[y].items());
            if ct.contains(&union) {
                continue;
            }
            evaluated += 1;
            let support = count_support(db, &union);
            let idx = ct.insert(Pattern::new(union, support));
            let (new_cover, new_dl) = ct.evaluate(db);
            if new_dl.total() < dl.total() - 1e-9 {
                cover = new_cover;
                dl = new_dl;
                accepted += 1;
                improved = true;
                break;
            }
            ct.remove(idx);
        }
        if !improved {
            break;
        }
    }

    SlimResult {
        code_table: ct,
        cover,
        dl,
        baseline,
        accepted,
        evaluated,
    }
}

/// Candidate pairs of code-table entries ranked by estimated gain.
///
/// The estimate follows SLIM: a union used `xy` times saves roughly
/// `xy · (L(X) + L(Y) − L'(X∪Y))` bits on the data; we use the simpler
/// (and order-preserving for our purposes) `xy · (L(X) + L(Y))` minus the
/// ST cost of materialising the union.
fn ranked_candidates(ct: &CodeTable, cover: &CoverResult) -> Vec<(usize, usize, f64)> {
    // Co-usage counts from per-transaction cover sets.
    let mut co: HashMap<(u32, u32), u64> = HashMap::new();
    for used in &cover.covers {
        for i in 0..used.len() {
            for j in i + 1..used.len() {
                let key = (used[i].min(used[j]), used[i].max(used[j]));
                *co.entry(key).or_insert(0) += 1;
            }
        }
    }
    let s = cover.total_usage as f64;
    let code_len = |idx: usize| -> f64 {
        let u = cover.usages[idx];
        if u == 0 {
            f64::INFINITY
        } else {
            -((u as f64 / s).log2())
        }
    };
    let mut out: Vec<(usize, usize, f64)> = co
        .into_iter()
        .filter(|&(_, xy)| xy > 1)
        .map(|((a, b), xy)| {
            let (a, b) = (a as usize, b as usize);
            let union_st_cost: f64 = ct.patterns()[a]
                .items()
                .iter()
                .chain(ct.patterns()[b].items())
                .map(|&i| ct.st().code_len(i as usize))
                .sum();
            let est = xy as f64 * (code_len(a) + code_len(b)) - union_st_cost;
            (a, b, est)
        })
        .filter(|&(_, _, est)| est > 0.0)
        .collect();
    out.sort_by(|l, r| r.2.partial_cmp(&l.2).unwrap_or(std::cmp::Ordering::Equal));
    out
}

fn merge_items(a: &[Item], b: &[Item]) -> Vec<Item> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    out.extend_from_slice(a);
    out.extend_from_slice(b);
    out.sort_unstable();
    out.dedup();
    out
}

fn count_support(db: &TransactionDb, items: &[Item]) -> u32 {
    db.iter()
        .filter(|t| items.iter().all(|i| t.binary_search(i).is_ok()))
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterned_db() -> TransactionDb {
        let mut rows = Vec::new();
        for _ in 0..30 {
            rows.push(vec![0, 1, 2]);
        }
        for _ in 0..10 {
            rows.push(vec![3, 4]);
        }
        rows.push(vec![0, 5]);
        rows.push(vec![1, 5]);
        TransactionDb::from_rows(rows)
    }

    #[test]
    fn slim_discovers_planted_patterns_without_candidates() {
        let res = slim(&patterned_db(), SlimConfig::default());
        assert!(res.accepted >= 2);
        assert!(res.code_table.contains(&[0, 1, 2]));
        assert!(res.code_table.contains(&[3, 4]));
        assert!(res.compression_ratio() < 1.0);
    }

    #[test]
    fn dl_is_monotone_over_acceptances() {
        // Every accepted merge strictly lowers DL, so final <= baseline.
        let res = slim(&patterned_db(), SlimConfig::default());
        assert!(res.dl.total() < res.baseline.total());
    }

    #[test]
    fn max_accepted_caps_model_growth() {
        let res = slim(
            &patterned_db(),
            SlimConfig {
                max_accepted: Some(1),
                ..Default::default()
            },
        );
        assert_eq!(res.accepted, 1);
    }

    #[test]
    fn converges_on_patternless_data() {
        // All-distinct transactions: nothing co-occurs twice, no merge.
        let db = TransactionDb::from_rows(vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        let res = slim(&db, SlimConfig::default());
        assert_eq!(res.accepted, 0);
        assert!((res.dl.total() - res.baseline.total()).abs() < 1e-9);
    }

    #[test]
    fn cover_remains_lossless_after_slim() {
        let db = patterned_db();
        let res = slim(&db, SlimConfig::default());
        for (t, used) in db.iter().zip(&res.cover.covers) {
            let mut rebuilt: Vec<Item> = used
                .iter()
                .flat_map(|&i| {
                    res.code_table.patterns()[i as usize]
                        .items()
                        .iter()
                        .copied()
                })
                .collect();
            rebuilt.sort_unstable();
            assert_eq!(rebuilt, t);
        }
    }
}
