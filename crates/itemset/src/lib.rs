//! Itemset-mining substrate: transaction databases, the Eclat frequent
//! itemset miner, and the **Krimp** and **SLIM** compressing-pattern
//! algorithms.
//!
//! CSPM needs these for two reasons (see the paper):
//!
//! * **SLIM** is the runtime point of reference in Table III ("SLIM also
//!   is a compression-based algorithm and it can be easily applied to an
//!   attributed graph by treating coresets in each adjacency list tuple
//!   as items");
//! * **Krimp or SLIM** provide multi-value coresets in Step 1 of CSPM
//!   (§IV-F): "a traditional compressing pattern mining algorithm can be
//!   applied on a transaction database composed of the attribute values
//!   of vertices".
//!
//! The implementations are faithful but self-contained: Krimp follows
//! Vreeken et al. (DMKD 2011) with the standard candidate and cover
//! orders; SLIM follows Smets & Vreeken (SDM 2012), generating candidates
//! on the fly by pairwise combination of code-table entries ranked by
//! estimated gain.

mod apriori;
mod closed;
mod cover;
mod eclat;
mod krimp;
mod slim;
mod transaction;

pub use apriori::apriori;
pub use closed::{closed_itemsets, closed_only};
pub use cover::{CodeTable, CoverResult, DlBreakdown, Pattern};
pub use eclat::{eclat, FrequentItemset};
pub use krimp::{krimp, KrimpConfig, KrimpResult};
pub use slim::{slim, SlimConfig, SlimResult};
pub use transaction::{Item, TransactionDb};
