//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994).
//!
//! A second, independently-implemented miner with the same contract as
//! [`crate::eclat`]: breadth-first candidate generation with the
//! anti-monotone pruning rule. Kept primarily as a cross-check (the
//! test suite asserts `apriori ≡ eclat` on random databases) and for
//! workloads where level-wise counting beats tid-list intersection.

use std::collections::HashSet;

use crate::eclat::FrequentItemset;
use crate::transaction::{Item, TransactionDb};

/// Mines all itemsets with `support >= min_support`, level by level.
pub fn apriori(db: &TransactionDb, min_support: u32) -> Vec<FrequentItemset> {
    assert!(min_support >= 1, "support threshold must be at least 1");
    let mut out: Vec<FrequentItemset> = Vec::new();

    // L1: frequent single items.
    let counts = db.item_counts();
    let mut level: Vec<Vec<Item>> = counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c >= min_support as u64)
        .map(|(i, _)| vec![i as Item])
        .collect();
    for items in &level {
        out.push(FrequentItemset {
            items: items.clone(),
            support: counts[items[0] as usize] as u32,
        });
    }

    while !level.is_empty() {
        // Join step: combine itemsets sharing a (k-1)-prefix.
        let mut candidates: Vec<Vec<Item>> = Vec::new();
        let frequent_prev: HashSet<&[Item]> = level.iter().map(Vec::as_slice).collect();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let (a, b) = (&level[i], &level[j]);
                if a[..a.len() - 1] != b[..b.len() - 1] {
                    continue;
                }
                let mut cand = a.clone();
                cand.push(b[b.len() - 1]);
                cand.sort_unstable();
                // Prune step: every (k-1)-subset must be frequent.
                let all_subsets_frequent = (0..cand.len()).all(|skip| {
                    let subset: Vec<Item> = cand
                        .iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx != skip)
                        .map(|(_, &it)| it)
                        .collect();
                    frequent_prev.contains(subset.as_slice())
                });
                if all_subsets_frequent {
                    candidates.push(cand);
                }
            }
        }
        candidates.sort();
        candidates.dedup();

        // Count step: one database scan for all candidates of this level.
        let mut supports = vec![0u32; candidates.len()];
        for t in db.iter() {
            for (ci, cand) in candidates.iter().enumerate() {
                if cand.iter().all(|i| t.binary_search(i).is_ok()) {
                    supports[ci] += 1;
                }
            }
        }
        level = Vec::new();
        for (cand, support) in candidates.into_iter().zip(supports) {
            if support >= min_support {
                out.push(FrequentItemset {
                    items: cand.clone(),
                    support,
                });
                level.push(cand);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::eclat;
    use std::collections::BTreeSet;

    fn toy_db() -> TransactionDb {
        TransactionDb::from_rows(vec![
            vec![0, 1, 2],
            vec![0, 1],
            vec![0, 2],
            vec![1, 2],
            vec![0, 1, 2, 3],
        ])
    }

    #[test]
    fn apriori_matches_eclat() {
        let db = toy_db();
        for min_support in 1..=5 {
            let a: BTreeSet<_> = apriori(&db, min_support)
                .into_iter()
                .map(|f| (f.items, f.support))
                .collect();
            let e: BTreeSet<_> = eclat(&db, min_support)
                .into_iter()
                .map(|f| (f.items, f.support))
                .collect();
            assert_eq!(a, e, "minsup={min_support}");
        }
    }

    #[test]
    fn prune_step_is_sound() {
        // {0,3} infrequent at minsup 2 => {0,1,3} must never be counted.
        let db = toy_db();
        let found = apriori(&db, 2);
        assert!(found.iter().all(|f| f.items != vec![0, 1, 3]));
        assert!(found.iter().any(|f| f.items == vec![0, 1, 2]));
    }

    #[test]
    fn empty_database() {
        let db = TransactionDb::from_rows(vec![]);
        assert!(apriori(&db, 1).is_empty());
    }
}
