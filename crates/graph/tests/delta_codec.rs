//! `GraphDelta` wire-format properties: serialize → deserialize →
//! apply must be bit-identical to applying the original delta — the
//! invariant `cspm-store`'s WAL replay stands on. Random deltas
//! (including empty ones and name-interning edge cases) roundtrip
//! exactly, and a [`SnapshotSequence`]'s replayed deltas survive the
//! codec unchanged.

use cspm_graph::dynamic::{DeltaVertex, GraphDelta, SnapshotSequence};
use cspm_graph::{AttributedGraph, GraphBuilder};
use proptest::prelude::*;

/// Attribute-name pool with deliberate interning hazards: shared
/// prefixes, multi-byte UTF-8, a name that is a substring of another.
const NAMES: [&str; 8] = [
    "a",
    "ab",
    "b",
    "市場",
    "α",
    "a b",
    "long-attribute-name",
    "x",
];

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic connected base graph from a seed.
fn base_graph(seed: u64) -> AttributedGraph {
    let mut s = seed.max(1);
    let n = 4 + (xorshift(&mut s) % 6) as u32;
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        b.add_vertex([NAMES[(xorshift(&mut s) % NAMES.len() as u64) as usize]]);
    }
    for v in 1..n {
        b.add_edge(v - 1, v).unwrap();
    }
    for _ in 0..n {
        let u = (xorshift(&mut s) % n as u64) as u32;
        let w = (xorshift(&mut s) % n as u64) as u32;
        if u != w {
            let _ = b.add_edge(u, w);
        }
    }
    b.build().unwrap()
}

/// Random delta over `base`: declared-only values, new vertices with
/// 0–3 attribute values, edges among new and existing vertices, labels
/// onto existing vertices, plus churn — edge/label removals, vertex
/// detachments and label changes over base ids. Every structural
/// feature of the format gets exercised at some seed.
fn random_delta(seed: u64, base: &AttributedGraph) -> GraphDelta {
    let mut s = seed.max(1);
    let mut d = GraphDelta::new();
    let name = |s: &mut u64| NAMES[(xorshift(s) % NAMES.len() as u64) as usize];
    for _ in 0..xorshift(&mut s) % 3 {
        d.declare_value(name(&mut s));
    }
    let added = xorshift(&mut s) % 4;
    let mut handles = Vec::new();
    for _ in 0..added {
        let k = xorshift(&mut s) % 4;
        let values: Vec<&str> = (0..k).map(|_| name(&mut s)).collect();
        handles.push(d.add_vertex(values));
    }
    let base_n = base.vertex_count() as u32;
    let pick = |s: &mut u64, handles: &[DeltaVertex]| {
        if !handles.is_empty() && xorshift(s).is_multiple_of(2) {
            handles[(xorshift(s) % handles.len() as u64) as usize]
        } else {
            DeltaVertex::Existing((xorshift(s) % base_n as u64) as u32)
        }
    };
    // Wire each added vertex somewhere so applies stay valid, then a
    // few extra edges for good measure.
    for &h in &handles {
        d.add_edge(
            h,
            DeltaVertex::Existing((xorshift(&mut s) % base_n as u64) as u32),
        );
    }
    for _ in 0..xorshift(&mut s) % 3 {
        let a = pick(&mut s, &handles);
        let b = pick(&mut s, &handles);
        if a != b {
            d.add_edge(a, b);
        }
    }
    for _ in 0..xorshift(&mut s) % 3 {
        d.add_label((xorshift(&mut s) % base_n as u64) as u32, name(&mut s));
    }
    // Churn over base ids: absent targets are apply-time no-ops, so any
    // random pick keeps the delta valid.
    let vertex = |s: &mut u64| (xorshift(s) % base_n as u64) as u32;
    for _ in 0..xorshift(&mut s) % 3 {
        let (u, v) = (vertex(&mut s), vertex(&mut s));
        if u != v {
            d.remove_edge(u, v);
        }
    }
    for _ in 0..xorshift(&mut s) % 3 {
        d.remove_label(vertex(&mut s), name(&mut s));
    }
    if xorshift(&mut s).is_multiple_of(4) {
        d.remove_vertex(vertex(&mut s));
    }
    for _ in 0..xorshift(&mut s) % 2 {
        d.change_label(vertex(&mut s), name(&mut s), name(&mut s));
    }
    d
}

/// Graphs compare exactly (derived `PartialEq` over vertices, edges,
/// labels *and* the interned attribute table) — this is bit-identity
/// for every consumer downstream, including DL computation.
fn assert_apply_identical(original: &GraphDelta, decoded: &GraphDelta, base: &AttributedGraph) {
    match (original.apply(base), decoded.apply(base)) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.graph, b.graph, "applied graphs diverged");
            assert_eq!(a.dirty_centers, b.dirty_centers, "dirty sets diverged");
        }
        (Err(ea), Err(eb)) => assert_eq!(format!("{ea}"), format!("{eb}")),
        (a, b) => panic!("one apply failed, the other did not: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → deserialize → apply ≡ apply, and the re-encoding is
    /// byte-identical (the format has one canonical encoding per delta).
    #[test]
    fn roundtrip_applies_bit_identically(seed in 1u64..1_000_000) {
        let base = base_graph(seed);
        let delta = random_delta(seed.wrapping_mul(0x9E37_79B9), &base);
        let bytes = delta.to_bytes();
        let decoded = GraphDelta::from_bytes(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&decoded.to_bytes(), &bytes, "re-encode diverged");
        prop_assert_eq!(decoded.is_empty(), delta.is_empty());
        prop_assert_eq!(decoded.added_vertex_count(), delta.added_vertex_count());
        assert_apply_identical(&delta, &decoded, &base);
    }

    /// A snapshot sequence's replayed deltas survive the codec: the
    /// replay chain rebuilt from decoded bytes reproduces every
    /// snapshot's union construction exactly.
    #[test]
    fn snapshot_replay_survives_the_codec(seed in 1u64..1_000_000) {
        let mut seq = SnapshotSequence::new();
        let mut s = seed;
        for i in 0..3 {
            seq.push(base_graph(xorshift(&mut s) + i));
        }
        let Some((mut rolling, deltas)) = seq.replay() else {
            return Ok(());
        };
        for delta in &deltas {
            let decoded = GraphDelta::from_bytes(&delta.to_bytes()).unwrap();
            prop_assert_eq!(decoded.to_bytes(), delta.to_bytes());
            // Advance the rolling graph with the *decoded* delta; any
            // codec drift would desynchronise the union construction.
            rolling = decoded.apply(&rolling).expect("replay delta applies").graph;
        }
        prop_assert_eq!(&rolling, &seq.union_graph());
    }

    /// Decoding never panics on mangled bytes: every truncation and
    /// every single-bit flip of a valid encoding either decodes to
    /// *some* delta or fails with a typed error.
    #[test]
    fn decode_never_panics_on_damage(seed in 1u64..100_000) {
        let base = base_graph(seed);
        let delta = random_delta(seed, &base);
        let bytes = delta.to_bytes();
        for cut in 0..bytes.len() {
            let _ = GraphDelta::from_bytes(&bytes[..cut]);
        }
        for at in 0..bytes.len() {
            let mut mangled = bytes.clone();
            mangled[at] ^= 1 << (at % 8);
            let _ = GraphDelta::from_bytes(&mangled);
        }
    }
}

#[test]
fn empty_delta_roundtrips() {
    let d = GraphDelta::new();
    let bytes = d.to_bytes();
    let decoded = GraphDelta::from_bytes(&bytes).unwrap();
    assert!(decoded.is_empty());
    assert_eq!(decoded.to_bytes(), bytes);
    let base = base_graph(7);
    assert_apply_identical(&d, &decoded, &base);
}

#[test]
fn interning_order_is_preserved_exactly() {
    // declare_value pins interning order even for values no vertex
    // carries; the codec must keep that order or replayed attribute
    // tables drift out of correspondence with their reference build.
    let base = base_graph(11);
    let mut d = GraphDelta::new();
    d.declare_value("zz-unused");
    d.declare_value("α");
    let v = d.add_vertex(["市場", "a"]);
    d.add_edge(v, DeltaVertex::Existing(0));
    d.add_label(1, "ab");

    let decoded = GraphDelta::from_bytes(&d.to_bytes()).unwrap();
    let a = d.apply(&base).unwrap().graph;
    let b = decoded.apply(&base).unwrap().graph;
    assert_eq!(a, b);
    let names_a: Vec<_> = a.attrs().iter().map(|(_, n)| n.to_string()).collect();
    let names_b: Vec<_> = b.attrs().iter().map(|(_, n)| n.to_string()).collect();
    assert_eq!(names_a, names_b, "attribute interning order diverged");
    assert!(names_a.iter().any(|n| n == "zz-unused"));
}

#[test]
fn trailing_garbage_is_rejected() {
    let base = base_graph(3);
    let mut bytes = random_delta(5, &base).to_bytes();
    bytes.push(0);
    assert!(GraphDelta::from_bytes(&bytes).is_err());
}
