//! Error type shared by graph construction and I/O.

use std::fmt;
use std::io;

/// Errors raised while building, validating, or (de)serialising graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id that was never added.
    UnknownVertex(u32),
    /// A self-loop `{v, v}` was requested; the paper's input graphs
    /// exclude self-loops (§III).
    SelfLoop(u32),
    /// The graph is empty (no vertices).
    Empty,
    /// The graph is not connected; `components` holds the component count.
    Disconnected { components: usize },
    /// A parse error in the text format, with 1-based line number.
    Parse { line: usize, message: String },
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex id {v}"),
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::Empty => write!(f, "graph has no vertices"),
            GraphError::Disconnected { components } => {
                write!(f, "graph is not connected ({components} components)")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::UnknownVertex(3).to_string(),
            "unknown vertex id 3"
        );
        assert_eq!(
            GraphError::SelfLoop(1).to_string(),
            "self-loop on vertex 1 is not allowed"
        );
        assert!(GraphError::Disconnected { components: 2 }
            .to_string()
            .contains("2 components"));
        let p = GraphError::Parse {
            line: 7,
            message: "bad token".into(),
        };
        assert!(p.to_string().contains("line 7"));
    }
}
