//! Interned nominal attribute values.
//!
//! Attribute values are arbitrary strings in input data (`"ICDM"`,
//! `"rap"`, `"NbDepart+"`). Internally they are interned into dense
//! [`AttrId`]s so that attribute sets can be stored and compared as sorted
//! integer slices.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier for an interned attribute value.
pub type AttrId = u32;

/// Bidirectional map between attribute-value strings and dense ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrTable {
    names: Vec<String>,
    index: HashMap<String, AttrId>,
}

impl AttrTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as AttrId;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up the id of an already-interned value.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.index.get(name).copied()
    }

    /// Returns the string for `id`, or `None` if out of range.
    pub fn name(&self, id: AttrId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of distinct attribute values interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as AttrId, n.as_str()))
    }

    /// Renders a sorted id slice as `{a, b, c}` for diagnostics.
    pub fn display_set<'a>(&'a self, ids: &'a [AttrId]) -> DisplaySet<'a> {
        DisplaySet { table: self, ids }
    }
}

/// Helper returned by [`AttrTable::display_set`].
pub struct DisplaySet<'a> {
    table: &'a AttrTable,
    ids: &'a [AttrId],
}

impl fmt::Display for DisplaySet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, &id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match self.table.name(id) {
                Some(n) => write!(f, "{n}")?,
                None => write!(f, "#{id}")?,
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = AttrTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a, b);
        assert_eq!(t.intern("a"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut t = AttrTable::new();
        let id = t.intern("ICDM");
        assert_eq!(t.get("ICDM"), Some(id));
        assert_eq!(t.name(id), Some("ICDM"));
        assert_eq!(t.get("EDBT"), None);
        assert_eq!(t.name(99), None);
    }

    #[test]
    fn display_set_formats_names() {
        let mut t = AttrTable::new();
        let a = t.intern("a");
        let c = t.intern("c");
        assert_eq!(t.display_set(&[a, c]).to_string(), "{a, c}");
        assert_eq!(t.display_set(&[]).to_string(), "{}");
    }

    #[test]
    fn iter_in_id_order() {
        let mut t = AttrTable::new();
        t.intern("x");
        t.intern("y");
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(0, "x"), (1, "y")]);
    }
}
