//! Mutable construction of [`AttributedGraph`]s.

use std::collections::BTreeSet;

use crate::attrs::{AttrId, AttrTable};
use crate::error::GraphError;
use crate::graph::{AttributedGraph, VertexId};

/// Incremental builder for [`AttributedGraph`].
///
/// Vertices receive dense ids in insertion order. Edges are undirected;
/// duplicates are ignored and self-loops rejected (the paper's inputs
/// contain none, §III).
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    labels: Vec<BTreeSet<AttrId>>,
    edges: BTreeSet<(VertexId, VertexId)>,
    attrs: AttrTable,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes internal storage for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            labels: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Adds a vertex carrying the given attribute values; returns its id.
    pub fn add_vertex<I, S>(&mut self, values: I) -> VertexId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let id = self.labels.len() as VertexId;
        let set = values
            .into_iter()
            .map(|s| self.attrs.intern(s.as_ref()))
            .collect();
        self.labels.push(set);
        id
    }

    /// Adds `n` vertices without attributes; returns the id of the first.
    pub fn add_vertices(&mut self, n: usize) -> VertexId {
        let first = self.labels.len() as VertexId;
        self.labels
            .extend(std::iter::repeat_with(BTreeSet::new).take(n));
        first
    }

    /// Attaches attribute value `value` to an existing vertex.
    pub fn add_label(&mut self, v: VertexId, value: &str) -> Result<(), GraphError> {
        let set = self
            .labels
            .get_mut(v as usize)
            .ok_or(GraphError::UnknownVertex(v))?;
        let id = self.attrs.intern(value);
        set.insert(id);
        Ok(())
    }

    /// Adds the undirected edge `{u, v}`. Duplicate edges are no-ops.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.labels.len() as VertexId;
        if u >= n {
            return Err(GraphError::UnknownVertex(u));
        }
        if v >= n {
            return Err(GraphError::UnknownVertex(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.edges.insert((u.min(v), u.max(v)));
        Ok(())
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of distinct undirected edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the edge is already present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Finishes construction and validates the paper's input requirements
    /// (non-empty, connected).
    pub fn build(self) -> Result<AttributedGraph, GraphError> {
        let g = self.build_unchecked();
        g.validate()?;
        Ok(g)
    }

    /// Finishes construction without the connectivity check. Useful for
    /// intermediate graphs and for tests.
    pub fn build_unchecked(self) -> AttributedGraph {
        let n = self.labels.len();
        let mut adjacency = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        let labels = self
            .labels
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect();
        AttributedGraph {
            adjacency,
            labels,
            attrs: self.attrs,
            edge_count: self.edges.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex(["x"]);
        let v = b.add_vertex(["y"]);
        b.add_edge(u, v).unwrap();
        b.add_edge(v, u).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(u, v) && g.has_edge(v, u));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(["x"]);
        assert!(matches!(b.add_edge(v, v), Err(GraphError::SelfLoop(0))));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(["x"]);
        assert!(matches!(
            b.add_edge(v, 5),
            Err(GraphError::UnknownVertex(5))
        ));
        assert!(matches!(
            b.add_label(9, "y"),
            Err(GraphError::UnknownVertex(9))
        ));
    }

    #[test]
    fn labels_are_deduplicated_and_sorted() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex(["b", "a", "b"]);
        b.add_label(v, "a").unwrap();
        let w = b.add_vertex(["c"]);
        b.add_edge(v, w).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.labels(v).len(), 2);
        assert!(g.labels(v).windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = GraphBuilder::new();
        let first = b.add_vertices(3);
        assert_eq!(first, 0);
        assert_eq!(b.vertex_count(), 3);
        b.add_label(2, "z").unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.labels(2).len(), 1);
        assert!(g.labels(0).is_empty());
    }

    #[test]
    fn build_enforces_connectivity() {
        let mut b = GraphBuilder::new();
        b.add_vertex(["x"]);
        b.add_vertex(["y"]);
        assert!(matches!(b.build(), Err(GraphError::Disconnected { .. })));
    }
}
