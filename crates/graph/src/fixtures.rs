//! Shared test fixtures, most importantly the paper's running example.

use crate::attrs::AttrId;
use crate::builder::GraphBuilder;
use crate::graph::AttributedGraph;

/// Attribute ids of the running example, for readable assertions.
#[derive(Debug, Clone, Copy)]
pub struct PaperAttrs {
    /// Attribute value `a`.
    pub a: AttrId,
    /// Attribute value `b`.
    pub b: AttrId,
    /// Attribute value `c`.
    pub c: AttrId,
}

/// Builds the running example of Fig. 1(a):
///
/// ```text
///        v1 (a)
///       /  |  \
///  v2(a,c) v3(c) v4(b)
///           \    /
///           v5 (a,b)
/// ```
///
/// Vertices are created in order, so `v1 = 0, …, v5 = 4`. The adjacency
/// list is `{(v1,{v2,v3,v4}), (v2,{v1}), (v3,{v1,v5}), (v4,{v1,v5}),
/// (v5,{v3,v4})}` as printed in §III.
pub fn paper_example() -> (AttributedGraph, PaperAttrs) {
    let mut b = GraphBuilder::new();
    let v1 = b.add_vertex(["a"]);
    let v2 = b.add_vertex(["a", "c"]);
    let v3 = b.add_vertex(["c"]);
    let v4 = b.add_vertex(["b"]);
    let v5 = b.add_vertex(["a", "b"]);
    b.add_edge(v1, v2).unwrap();
    b.add_edge(v1, v3).unwrap();
    b.add_edge(v1, v4).unwrap();
    b.add_edge(v3, v5).unwrap();
    b.add_edge(v4, v5).unwrap();
    let g = b.build().expect("paper example is connected");
    let attrs = PaperAttrs {
        a: g.attrs().get("a").unwrap(),
        b: g.attrs().get("b").unwrap(),
        c: g.attrs().get("c").unwrap(),
    };
    (g, attrs)
}

/// A small path graph `0 - 1 - 2 - … - (n-1)` where vertex `i` carries the
/// attribute value `l{i % k}`; handy for quick tests.
pub fn labelled_path(n: usize, k: usize) -> AttributedGraph {
    assert!(n >= 2 && k >= 1);
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_vertex([format!("l{}", i % k)]);
    }
    for i in 0..n - 1 {
        b.add_edge(i as u32, i as u32 + 1).unwrap();
    }
    b.build().expect("path is connected")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_attribute_ids_are_distinct() {
        let (_, a) = paper_example();
        assert!(a.a != a.b && a.b != a.c && a.a != a.c);
    }

    #[test]
    fn labelled_path_shape() {
        let g = labelled_path(5, 2);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.attr_count(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }
}
