//! Stars and extended stars (§III of the paper).

use std::collections::BTreeMap;

use crate::attrs::AttrId;
use crate::graph::{AttributedGraph, VertexId};

/// A star: a core vertex adjacent to every leaf, with no leaf–leaf edges
/// in the pattern itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Star {
    core: VertexId,
    leaves: Vec<VertexId>,
}

impl Star {
    /// Creates a star. `leaves` must be non-empty and not contain `core`.
    ///
    /// # Panics
    /// Panics if `leaves` is empty or contains the core.
    pub fn new(core: VertexId, leaves: Vec<VertexId>) -> Self {
        assert!(!leaves.is_empty(), "a star needs at least one leaf");
        assert!(!leaves.contains(&core), "core cannot be a leaf");
        Self { core, leaves }
    }

    /// The core vertex.
    pub fn core(&self) -> VertexId {
        self.core
    }

    /// The leaf vertices.
    pub fn leaves(&self) -> &[VertexId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }
}

/// An extended star: a [`Star`] whose vertices carry attribute values.
///
/// Used to define *appearance* in an attributed graph: an extended star
/// appears at vertex `w` if there is a bijective mapping of its vertices
/// onto `w` and distinct neighbours of `w` that preserves both edges and
/// attribute-value pairs (§III).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedStar {
    /// Attribute values required on the core.
    core_labels: Vec<AttrId>,
    /// Attribute values required on each leaf, one entry per leaf.
    leaf_labels: Vec<Vec<AttrId>>,
}

impl ExtendedStar {
    /// Creates an extended star from per-vertex attribute requirements.
    /// Label slices are sorted and deduplicated internally.
    ///
    /// # Panics
    /// Panics if there are no leaves.
    pub fn new(core_labels: Vec<AttrId>, leaf_labels: Vec<Vec<AttrId>>) -> Self {
        assert!(
            !leaf_labels.is_empty(),
            "an extended star needs at least one leaf"
        );
        let mut core_labels = core_labels;
        core_labels.sort_unstable();
        core_labels.dedup();
        let leaf_labels = leaf_labels
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        Self {
            core_labels,
            leaf_labels,
        }
    }

    /// Attribute values required on the core.
    pub fn core_labels(&self) -> &[AttrId] {
        &self.core_labels
    }

    /// Attribute values required per leaf.
    pub fn leaf_labels(&self) -> &[Vec<AttrId>] {
        &self.leaf_labels
    }

    /// Whether this extended star appears in `g` with its core mapped to
    /// `v` (the bijective-mapping condition of §III).
    ///
    /// Each pattern leaf must map to a *distinct* neighbour of `v` whose
    /// label set contains the leaf's required values; this is a bipartite
    /// matching problem, solved with Kuhn's augmenting-path algorithm.
    pub fn appears_at(&self, g: &AttributedGraph, v: VertexId) -> bool {
        if !contains_all(g.labels(v), &self.core_labels) {
            return false;
        }
        let neighbors = g.neighbors(v);
        if neighbors.len() < self.leaf_labels.len() {
            return false;
        }
        // candidates[i] = indices into `neighbors` usable for pattern leaf i.
        let candidates: Vec<Vec<usize>> = self
            .leaf_labels
            .iter()
            .map(|req| {
                neighbors
                    .iter()
                    .enumerate()
                    .filter(|(_, &u)| contains_all(g.labels(u), req))
                    .map(|(idx, _)| idx)
                    .collect()
            })
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            return false;
        }
        // Kuhn's algorithm: match every pattern leaf to a distinct neighbour.
        let mut matched: BTreeMap<usize, usize> = BTreeMap::new(); // neighbour idx -> leaf
        for leaf in 0..candidates.len() {
            let mut visited = vec![false; neighbors.len()];
            if !augment(leaf, &candidates, &mut matched, &mut visited) {
                return false;
            }
        }
        true
    }

    /// All vertices of `g` at which this extended star appears.
    pub fn occurrences(&self, g: &AttributedGraph) -> Vec<VertexId> {
        g.vertices().filter(|&v| self.appears_at(g, v)).collect()
    }
}

/// Whether sorted slice `haystack` contains every element of sorted
/// `needles`.
pub(crate) fn contains_all(haystack: &[AttrId], needles: &[AttrId]) -> bool {
    needles.iter().all(|n| haystack.binary_search(n).is_ok())
}

fn augment(
    leaf: usize,
    candidates: &[Vec<usize>],
    matched: &mut BTreeMap<usize, usize>,
    visited: &mut [bool],
) -> bool {
    for &n in &candidates[leaf] {
        if visited[n] {
            continue;
        }
        visited[n] = true;
        let prev = matched.get(&n).copied();
        if prev.is_none() || augment(prev.unwrap(), candidates, matched, visited) {
            matched.insert(n, leaf);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn star_requires_leaves() {
        let _ = Star::new(0, vec![]);
    }

    #[test]
    #[should_panic(expected = "core cannot be a leaf")]
    fn star_rejects_core_as_leaf() {
        let _ = Star::new(0, vec![0, 1]);
    }

    #[test]
    fn extended_star_from_fig1b_appears_at_v1() {
        // Fig. 1(b): core labelled {a}, leaves labelled {c} and {b}; it is an
        // occurrence of the a-star ({a},{b,c}) rooted at v1.
        let (g, a) = paper_example();
        let x = ExtendedStar::new(vec![a.a], vec![vec![a.c], vec![a.b]]);
        assert!(x.appears_at(&g, 0)); // v1: neighbours v2{a,c}, v3{c}, v4{b}
        assert!(!x.appears_at(&g, 1)); // v2: single neighbour cannot host both leaves
        assert_eq!(x.occurrences(&g), vec![0, 4]); // v5: neighbours v3{c}, v4{b}
    }

    #[test]
    fn appearance_requires_distinct_leaf_images() {
        // Two leaves both requiring {c}: v1 has only one {c}-neighbour pair
        // (v2 and v3 both carry c, so it *does* appear); v5 has only v3 with c.
        let (g, a) = paper_example();
        let x = ExtendedStar::new(vec![a.a], vec![vec![a.c], vec![a.c]]);
        assert!(x.appears_at(&g, 0));
        assert!(!x.appears_at(&g, 4));
    }

    #[test]
    fn appearance_checks_core_labels() {
        let (g, a) = paper_example();
        let x = ExtendedStar::new(vec![a.b], vec![vec![a.a]]);
        // b appears at v4 and v5, but only v4 has an a-neighbour (v1);
        // v5's neighbours are v3{c} and v4{b}.
        assert_eq!(x.occurrences(&g), vec![3]);
    }

    #[test]
    fn matching_needs_augmenting_paths() {
        // A case where greedy assignment fails but augmenting succeeds:
        // leaf0 can use {n0, n1}, leaf1 only {n0}.
        let mut b = crate::GraphBuilder::new();
        let core = b.add_vertex(["x"]);
        let n0 = b.add_vertex(["p", "q"]);
        let n1 = b.add_vertex(["p"]);
        b.add_edge(core, n0).unwrap();
        b.add_edge(core, n1).unwrap();
        let g = b.build().unwrap();
        let p = g.attrs().get("p").unwrap();
        let q = g.attrs().get("q").unwrap();
        let x = ExtendedStar::new(vec![], vec![vec![p], vec![q]]);
        assert!(x.appears_at(&g, core));
    }
}
