//! Dynamic attributed graphs: sequences of snapshots over a shared
//! attribute universe (the paper's future-work item (2), and the data
//! model of the §VI-D alarm application).
//!
//! CSPM mines a single graph; a snapshot sequence is mined through its
//! *disjoint union* — every `(snapshot, vertex)` pair becomes one vertex
//! of the union graph, so an a-star's frequency counts occurrences
//! across time, exactly as the windowed alarm pipeline does.
//!
//! For long-lived mining sessions the evolution itself is the input:
//! [`GraphDelta`] describes one churn step — new vertices, new edges
//! and new labels, plus edge/label/vertex *removals* and label
//! *changes* — and [`GraphDelta::apply`] produces the evolved graph
//! plus the exact set of *dirty centers* — the vertices whose
//! adjacency-list stars changed, which is all an incremental re-mine
//! has to look at. Vertex removal uses *detach* semantics: the vertex
//! loses every label and incident edge but keeps its id slot, so
//! vertex ids stay dense and posting positions stay comparable across
//! the delta.
//! [`GraphDelta::from_snapshot`] turns the next snapshot of a sequence
//! into the delta that appends it disjointly, so replaying a
//! [`SnapshotSequence`] through deltas reproduces [`union_graph`]
//! exactly (see [`SnapshotSequence::replay`]).
//!
//! [`union_graph`]: SnapshotSequence::union_graph

use crate::attrs::AttrTable;
use crate::codec::{put_str, put_u32, DecodeError, Reader};
use crate::error::GraphError;
use crate::graph::{AttributedGraph, VertexId};

/// A sequence of attributed-graph snapshots. Snapshots may have
/// different vertex counts and attribute tables; attribute values are
/// reconciled **by name** when building the union.
#[derive(Debug, Clone, Default)]
pub struct SnapshotSequence {
    snapshots: Vec<AttributedGraph>,
}

impl SnapshotSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot.
    pub fn push(&mut self, g: AttributedGraph) {
        self.snapshots.push(g);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshots.
    pub fn snapshots(&self) -> &[AttributedGraph] {
        &self.snapshots
    }

    /// Vertex-id offset of snapshot `i` within the union graph.
    pub fn offset(&self, i: usize) -> VertexId {
        self.snapshots[..i]
            .iter()
            .map(|g| g.vertex_count() as VertexId)
            .sum()
    }

    /// Maps a union-graph vertex back to `(snapshot index, local id)`.
    pub fn locate(&self, v: VertexId) -> Option<(usize, VertexId)> {
        let mut rest = v;
        for (i, g) in self.snapshots.iter().enumerate() {
            let n = g.vertex_count() as VertexId;
            if rest < n {
                return Some((i, rest));
            }
            rest -= n;
        }
        None
    }

    /// The sequence as an initial graph plus one additive [`GraphDelta`]
    /// per later snapshot: applying the deltas in order reproduces
    /// [`Self::union_graph`] exactly (same vertex ids, same attribute
    /// interning order). Returns `None` for an empty sequence.
    ///
    /// This is the incremental-session view of a snapshot sequence:
    /// instead of re-mining the whole union after every snapshot, feed
    /// each delta to a long-lived miner.
    pub fn replay(&self) -> Option<(AttributedGraph, Vec<GraphDelta>)> {
        let first = self.snapshots.first()?.clone();
        let deltas = self.snapshots[1..]
            .iter()
            .map(GraphDelta::from_snapshot)
            .collect();
        Some((first, deltas))
    }

    /// Builds the disjoint-union graph with a shared attribute table
    /// (values reconciled by name).
    pub fn union_graph(&self) -> AttributedGraph {
        let mut attrs = AttrTable::new();
        let mut labels = Vec::new();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut offset: VertexId = 0;
        for g in &self.snapshots {
            // Remap this snapshot's attribute ids into the shared table.
            let remap: Vec<u32> = (0..g.attr_count() as u32)
                .map(|a| attrs.intern(g.attrs().name(a).expect("interned")))
                .collect();
            for v in g.vertices() {
                labels.push(g.labels(v).iter().map(|&a| remap[a as usize]).collect());
            }
            edges.extend(g.edges().map(|(u, v)| (u + offset, v + offset)));
            offset += g.vertex_count() as VertexId;
        }
        AttributedGraph::from_edge_list(labels, attrs, edges)
            .expect("snapshot edges remain valid under offsetting")
    }
}

impl FromIterator<AttributedGraph> for SnapshotSequence {
    fn from_iter<T: IntoIterator<Item = AttributedGraph>>(iter: T) -> Self {
        Self {
            snapshots: iter.into_iter().collect(),
        }
    }
}

/// Reference to a vertex from within a [`GraphDelta`]: either a vertex
/// the base graph already has, or the `i`-th vertex this delta adds
/// (as returned by [`GraphDelta::add_vertex`]). Resolved to a concrete
/// [`VertexId`] when the delta is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaVertex {
    /// A vertex of the base graph.
    Existing(VertexId),
    /// The `i`-th vertex added by this delta.
    Added(u32),
}

/// One evolution step of an attributed graph: additions (new vertices,
/// new undirected edges, new attribute values on existing vertices)
/// and churn (edge removals, label removals and changes, vertex
/// detachment).
///
/// Removal targets are always **base-graph** vertex ids. Removing an
/// edge or label that is absent is a no-op, symmetric to duplicate
/// additions; a vertex removal *detaches* — it drops every label and
/// incident edge but keeps the id slot as an isolated label-less
/// vertex, so vertex ids stay dense and position sets stay comparable.
/// Within one application churn runs before additions, so a delta can
/// detach a vertex and re-wire it in the same step.
///
/// Attribute values are carried **by name** and reconciled against the
/// base graph's interner at [`Self::apply`] time, exactly like
/// [`SnapshotSequence::union_graph`] reconciles snapshots, so the same
/// delta can be applied to differently-interned bases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Attribute values to intern up front, in order, before any
    /// vertex or label is processed — pins interning order (and keeps
    /// vertex-unused values) so a replayed graph's attribute table can
    /// match a reference construction id for id.
    declared: Vec<String>,
    /// New vertices, each with its attribute-value names.
    vertices: Vec<Vec<String>>,
    /// New undirected edges over existing and/or added vertices.
    edges: Vec<(DeltaVertex, DeltaVertex)>,
    /// Attribute values added to existing vertices.
    labels: Vec<(VertexId, String)>,
    /// Undirected edges to remove, both endpoints base-graph ids.
    removed_edges: Vec<(VertexId, VertexId)>,
    /// Attribute values removed from existing vertices.
    removed_labels: Vec<(VertexId, String)>,
    /// Base-graph vertices to detach (labels and edges dropped, id
    /// slot retained).
    removed_vertices: Vec<VertexId>,
    /// Attribute-value changes on existing vertices: `(v, old, new)`
    /// drops `old` (when present) and attaches `new` (when absent).
    changed_labels: Vec<(VertexId, String, String)>,
}

/// Result of [`GraphDelta::apply`]: the grown graph plus the dirty set.
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// The base graph with the delta applied.
    pub graph: AttributedGraph,
    /// Sorted, deduplicated ids of every vertex whose *star* changed —
    /// it is new, gained or lost an edge or a label, was detached, or
    /// has a neighbour whose label set changed. Rows of the inverted
    /// database can only have changed at these centers; everything
    /// else is untouched.
    pub dirty_centers: Vec<VertexId>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.declared.is_empty()
            && self.vertices.is_empty()
            && self.edges.is_empty()
            && self.labels.is_empty()
            && !self.has_churn()
    }

    /// Whether the delta carries any removal or change — the sections
    /// an additive-only (store version 1) consumer cannot decode.
    pub fn has_churn(&self) -> bool {
        !self.removed_edges.is_empty()
            || !self.removed_labels.is_empty()
            || !self.removed_vertices.is_empty()
            || !self.changed_labels.is_empty()
    }

    /// Number of vertices this delta adds.
    pub fn added_vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Adds a new vertex carrying the given attribute values; returns
    /// the handle to connect it with [`Self::add_edge`].
    pub fn add_vertex<I, S>(&mut self, values: I) -> DeltaVertex
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let idx = self.vertices.len() as u32;
        self.vertices
            .push(values.into_iter().map(|s| s.as_ref().to_string()).collect());
        DeltaVertex::Added(idx)
    }

    /// Adds the undirected edge `{a, b}`. Duplicates of existing edges
    /// are no-ops at apply time; self-loops are rejected there.
    pub fn add_edge(&mut self, a: DeltaVertex, b: DeltaVertex) {
        self.edges.push((a, b));
    }

    /// Attaches attribute value `value` to base-graph vertex `v`.
    pub fn add_label(&mut self, v: VertexId, value: impl AsRef<str>) {
        self.labels.push((v, value.as_ref().to_string()));
    }

    /// Pre-interns `value` at apply time, before any vertex or label of
    /// this delta: fixes the value's position in the grown graph's
    /// attribute table without attaching it to a vertex. Rarely needed
    /// directly — [`Self::from_snapshot`] uses it to reproduce the
    /// snapshot's interning order exactly, unused values included.
    pub fn declare_value(&mut self, value: impl AsRef<str>) {
        self.declared.push(value.as_ref().to_string());
    }

    /// Removes the undirected edge `{u, v}` between two base-graph
    /// vertices. Removing an absent edge is a no-op at apply time.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.removed_edges.push((u, v));
    }

    /// Removes attribute value `value` from base-graph vertex `v`.
    /// Removing an absent value is a no-op at apply time.
    pub fn remove_label(&mut self, v: VertexId, value: impl AsRef<str>) {
        self.removed_labels.push((v, value.as_ref().to_string()));
    }

    /// Detaches base-graph vertex `v`: drops all its labels and
    /// incident edges but keeps the id slot, so vertex ids stay dense.
    /// Detaching an already-isolated label-less vertex is a no-op.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.removed_vertices.push(v);
    }

    /// Changes an attribute value on base-graph vertex `v`: `old` is
    /// dropped when present, `new` attached when absent (each half
    /// no-ops independently, like [`Self::remove_label`] and
    /// [`Self::add_label`]).
    pub fn change_label(&mut self, v: VertexId, old: impl AsRef<str>, new: impl AsRef<str>) {
        self.changed_labels
            .push((v, old.as_ref().to_string(), new.as_ref().to_string()));
    }

    /// The delta that appends `snapshot` as a disjoint component — the
    /// evolution step between consecutive prefixes of a
    /// [`SnapshotSequence`]'s union graph. The snapshot's attribute
    /// values are declared in its own id order (exactly how
    /// [`SnapshotSequence::union_graph`] reconciles tables), so a
    /// replayed union matches the direct union id for id even when a
    /// snapshot's table order differs from vertex-traversal order or
    /// carries vertex-unused values.
    pub fn from_snapshot(snapshot: &AttributedGraph) -> Self {
        let mut delta = Self::new();
        for (_, name) in snapshot.attrs().iter() {
            delta.declare_value(name);
        }
        let handles: Vec<DeltaVertex> = snapshot
            .vertices()
            .map(|v| {
                delta.add_vertex(
                    snapshot
                        .labels(v)
                        .iter()
                        .map(|&a| snapshot.attrs().name(a).expect("interned attribute")),
                )
            })
            .collect();
        for (u, v) in snapshot.edges() {
            delta.add_edge(handles[u as usize], handles[v as usize]);
        }
        delta
    }

    /// Serialises the delta into `out` as a little-endian byte record
    /// (the WAL wire format of `cspm-store`; layout in
    /// `docs/FORMATS.md`). [`Self::from_bytes`] inverts it exactly:
    /// declared values, vertices, edges and labels keep their order, so
    /// the decoded delta applies bit-identically.
    ///
    /// The four churn sections (removed edges, removed labels, removed
    /// vertices, label changes) are appended only when the delta
    /// [`Self::has_churn`]: purely additive deltas keep the exact
    /// version-1 encoding, and an additive-only decoder hitting a
    /// churn-carrying record fails typed on the trailing bytes rather
    /// than silently replaying half the delta.
    pub fn write_bytes(&self, out: &mut Vec<u8>) {
        put_u32(out, self.declared.len() as u32);
        for value in &self.declared {
            put_str(out, value);
        }
        put_u32(out, self.vertices.len() as u32);
        for values in &self.vertices {
            put_u32(out, values.len() as u32);
            for value in values {
                put_str(out, value);
            }
        }
        put_u32(out, self.edges.len() as u32);
        for &(a, b) in &self.edges {
            for dv in [a, b] {
                match dv {
                    DeltaVertex::Existing(v) => {
                        out.push(0);
                        put_u32(out, v);
                    }
                    DeltaVertex::Added(i) => {
                        out.push(1);
                        put_u32(out, i);
                    }
                }
            }
        }
        put_u32(out, self.labels.len() as u32);
        for (v, value) in &self.labels {
            put_u32(out, *v);
            put_str(out, value);
        }
        if self.has_churn() {
            put_u32(out, self.removed_edges.len() as u32);
            for &(u, v) in &self.removed_edges {
                put_u32(out, u);
                put_u32(out, v);
            }
            put_u32(out, self.removed_labels.len() as u32);
            for (v, value) in &self.removed_labels {
                put_u32(out, *v);
                put_str(out, value);
            }
            put_u32(out, self.removed_vertices.len() as u32);
            for &v in &self.removed_vertices {
                put_u32(out, v);
            }
            put_u32(out, self.changed_labels.len() as u32);
            for (v, old, new) in &self.changed_labels {
                put_u32(out, *v);
                put_str(out, old);
                put_str(out, new);
            }
        }
    }

    /// [`Self::write_bytes`] into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.write_bytes(&mut out);
        out
    }

    /// Decodes a [`Self::write_bytes`] record. Every malformed input —
    /// truncation, an unknown vertex-reference tag, invalid UTF-8,
    /// trailing bytes — is a typed [`DecodeError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        let mut delta = Self::new();
        for _ in 0..r.bounded_count(4)? {
            delta.declared.push(r.str()?);
        }
        for _ in 0..r.bounded_count(4)? {
            let mut values = Vec::new();
            for _ in 0..r.bounded_count(4)? {
                values.push(r.str()?);
            }
            delta.vertices.push(values);
        }
        for _ in 0..r.bounded_count(10)? {
            let mut dv = || -> Result<DeltaVertex, DecodeError> {
                match r.u8()? {
                    0 => Ok(DeltaVertex::Existing(r.u32()?)),
                    1 => Ok(DeltaVertex::Added(r.u32()?)),
                    _ => Err(DecodeError::new("unknown delta-vertex tag")),
                }
            };
            let (a, b) = (dv()?, dv()?);
            delta.edges.push((a, b));
        }
        for _ in 0..r.bounded_count(8)? {
            let v = r.u32()?;
            delta.labels.push((v, r.str()?));
        }
        // Churn sections are present exactly when bytes remain (see
        // write_bytes): an additive record ends here.
        if r.remaining() > 0 {
            for _ in 0..r.bounded_count(8)? {
                let u = r.u32()?;
                delta.removed_edges.push((u, r.u32()?));
            }
            for _ in 0..r.bounded_count(8)? {
                let v = r.u32()?;
                delta.removed_labels.push((v, r.str()?));
            }
            for _ in 0..r.bounded_count(4)? {
                delta.removed_vertices.push(r.u32()?);
            }
            for _ in 0..r.bounded_count(12)? {
                let v = r.u32()?;
                let old = r.str()?;
                delta.changed_labels.push((v, old, r.str()?));
            }
        }
        r.finish()?;
        Ok(delta)
    }

    /// Resolves a [`DeltaVertex`] against a base of `base_n` vertices.
    fn resolve(&self, base_n: VertexId, dv: DeltaVertex) -> Result<VertexId, GraphError> {
        match dv {
            DeltaVertex::Existing(v) if v < base_n => Ok(v),
            DeltaVertex::Existing(v) => Err(GraphError::UnknownVertex(v)),
            DeltaVertex::Added(i) if (i as usize) < self.vertices.len() => Ok(base_n + i),
            DeltaVertex::Added(i) => Err(GraphError::UnknownVertex(base_n + i)),
        }
    }

    /// Checks every reference the delta makes against a base of
    /// `base_n` vertices, without touching anything — so in-place
    /// application can fail *before* the first mutation and leave the
    /// graph intact.
    fn validate(&self, base_n: VertexId) -> Result<(), GraphError> {
        for &(v, _) in &self.labels {
            if v >= base_n {
                return Err(GraphError::UnknownVertex(v));
            }
        }
        for &(a, b) in &self.edges {
            let (u, v) = (self.resolve(base_n, a)?, self.resolve(base_n, b)?);
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
        }
        // Churn targets are base-graph ids only: a vertex added by this
        // delta cannot also be removed or relabelled by it.
        let known = |v: VertexId| {
            if v < base_n {
                Ok(())
            } else {
                Err(GraphError::UnknownVertex(v))
            }
        };
        for &(u, v) in &self.removed_edges {
            known(u)?;
            known(v)?;
        }
        for &(v, _) in &self.removed_labels {
            known(v)?;
        }
        for &v in &self.removed_vertices {
            known(v)?;
        }
        for &(v, _, _) in &self.changed_labels {
            known(v)?;
        }
        Ok(())
    }

    /// Applies the delta to `base`, producing the evolved graph and the
    /// set of dirty centers (see [`AppliedDelta`]). The base graph is
    /// untouched; attribute names unseen by its interner are appended
    /// in first-use order, so repeated application is deterministic.
    ///
    /// Long-lived holders of a graph (mining sessions, replay loops)
    /// should prefer [`Self::apply_in_place`], which skips the clone.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownVertex`] if an edge or label references an
    /// existing vertex the base does not have (or an added vertex this
    /// delta never declared), [`GraphError::SelfLoop`] if an edge
    /// resolves to a self-loop.
    pub fn apply(&self, base: &AttributedGraph) -> Result<AppliedDelta, GraphError> {
        let mut graph = base.clone();
        let dirty_centers = self.apply_in_place(&mut graph)?;
        Ok(AppliedDelta {
            graph,
            dirty_centers,
        })
    }

    /// [`Self::apply`] without the clone: mutates `g` directly and
    /// returns the sorted dirty-center set. All references are
    /// validated up front, so on error `g` is guaranteed untouched.
    pub fn apply_in_place(&self, g: &mut AttributedGraph) -> Result<Vec<VertexId>, GraphError> {
        let base_n = g.vertex_count() as VertexId;
        self.validate(base_n)?;
        let mut dirty: Vec<VertexId> = Vec::new();

        // Declared values first: their interning order is part of the
        // delta's contract (see from_snapshot).
        for value in &self.declared {
            g.attrs.intern(value);
        }

        // Churn before additions, so a delta can detach a vertex and
        // re-wire it in the same step. Edge removal changes exactly the
        // two endpoint stars; label removal/change also changes every
        // current neighbour's leaves; detachment covers both.
        for &(u, v) in &self.removed_edges {
            if let Ok(pos) = g.adjacency[u as usize].binary_search(&v) {
                g.adjacency[u as usize].remove(pos);
                let pos = g.adjacency[v as usize]
                    .binary_search(&u)
                    .expect("adjacency lists agree");
                g.adjacency[v as usize].remove(pos);
                g.edge_count -= 1;
                dirty.push(u);
                dirty.push(v);
            }
        }

        let drop_label =
            |g: &mut AttributedGraph, dirty: &mut Vec<VertexId>, v: VertexId, value: &str| {
                let Some(a) = g.attrs.get(value) else {
                    return; // never-interned value: trivially absent
                };
                let list = &mut g.labels[v as usize];
                if let Ok(pos) = list.binary_search(&a) {
                    list.remove(pos);
                    dirty.push(v);
                    dirty.extend_from_slice(&g.adjacency[v as usize]);
                }
            };
        for (v, value) in &self.removed_labels {
            drop_label(g, &mut dirty, *v, value);
        }
        for (v, old, new) in &self.changed_labels {
            drop_label(g, &mut dirty, *v, old);
            let a = g.attrs.intern(new);
            let list = &mut g.labels[*v as usize];
            if let Err(pos) = list.binary_search(&a) {
                list.insert(pos, a);
                dirty.push(*v);
                dirty.extend_from_slice(&g.adjacency[*v as usize]);
            }
        }

        for &v in &self.removed_vertices {
            let neighbours = std::mem::take(&mut g.adjacency[v as usize]);
            for &u in &neighbours {
                let pos = g.adjacency[u as usize]
                    .binary_search(&v)
                    .expect("adjacency lists agree");
                g.adjacency[u as usize].remove(pos);
                dirty.push(u);
            }
            g.edge_count -= neighbours.len();
            if !neighbours.is_empty() || !g.labels[v as usize].is_empty() {
                dirty.push(v);
            }
            g.labels[v as usize].clear();
        }

        // New vertices: interned, sorted, deduplicated — the shape
        // GraphBuilder/from_edge_list produce.
        for values in &self.vertices {
            let mut ids: Vec<_> = values.iter().map(|s| g.attrs.intern(s)).collect();
            ids.sort_unstable();
            ids.dedup();
            dirty.push(g.labels.len() as VertexId);
            g.labels.push(ids);
            g.adjacency.push(Vec::new());
        }

        // New labels on existing vertices: the vertex itself re-centres
        // (it now occurs under a new coreset), and every neighbour sees
        // a new leaf value.
        for (v, value) in &self.labels {
            let a = g.attrs.intern(value);
            let list = &mut g.labels[*v as usize];
            if let Err(pos) = list.binary_search(&a) {
                list.insert(pos, a);
                dirty.push(*v);
                dirty.extend_from_slice(&g.adjacency[*v as usize]);
            }
        }

        // New edges: both endpoints gain a neighbour (duplicates no-op).
        for &(a, b) in &self.edges {
            let (u, v) = (
                self.resolve(base_n, a).expect("validated above"),
                self.resolve(base_n, b).expect("validated above"),
            );
            if let Err(pos) = g.adjacency[u as usize].binary_search(&v) {
                g.adjacency[u as usize].insert(pos, v);
                let pos = g.adjacency[v as usize]
                    .binary_search(&u)
                    .expect_err("adjacency lists agree");
                g.adjacency[v as usize].insert(pos, u);
                g.edge_count += 1;
                dirty.push(u);
                dirty.push(v);
            }
        }

        dirty.sort_unstable();
        dirty.dedup();
        Ok(dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{labelled_path, paper_example};

    #[test]
    fn union_offsets_and_locate() {
        let (g1, _) = paper_example();
        let g2 = labelled_path(4, 2);
        let seq: SnapshotSequence = [g1.clone(), g2.clone()].into_iter().collect();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.offset(0), 0);
        assert_eq!(seq.offset(1), 5);
        assert_eq!(seq.locate(3), Some((0, 3)));
        assert_eq!(seq.locate(7), Some((1, 2)));
        assert_eq!(seq.locate(99), None);

        let u = seq.union_graph();
        assert_eq!(u.vertex_count(), 9);
        assert_eq!(u.edge_count(), g1.edge_count() + g2.edge_count());
        // No cross-snapshot edges.
        assert!(!u.has_edge(4, 5));
    }

    #[test]
    fn attribute_names_are_reconciled() {
        // Two snapshots interning the same names in different orders must
        // agree in the union.
        let mut b1 = crate::GraphBuilder::new();
        let x = b1.add_vertex(["p"]);
        let y = b1.add_vertex(["q"]);
        b1.add_edge(x, y).unwrap();
        let mut b2 = crate::GraphBuilder::new();
        let x = b2.add_vertex(["q"]);
        let y = b2.add_vertex(["p"]);
        b2.add_edge(x, y).unwrap();
        let seq: SnapshotSequence = [b1.build().unwrap(), b2.build().unwrap()]
            .into_iter()
            .collect();
        let u = seq.union_graph();
        let p = u.attrs().get("p").unwrap();
        assert!(u.has_label(0, p));
        assert!(u.has_label(3, p));
        assert_eq!(u.attr_count(), 2);
    }

    #[test]
    fn empty_sequence_yields_empty_graph() {
        let seq = SnapshotSequence::new();
        assert!(seq.is_empty());
        let u = seq.union_graph();
        assert_eq!(u.vertex_count(), 0);
        assert!(seq.replay().is_none());
    }

    #[test]
    fn delta_grows_graph_and_reports_dirty_centers() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        assert!(delta.is_empty());
        let w = delta.add_vertex(["d", "a"]);
        delta.add_edge(w, DeltaVertex::Existing(1));
        delta.add_label(4, "c");
        assert!(!delta.is_empty());
        assert_eq!(delta.added_vertex_count(), 1);

        let applied = delta.apply(&g).unwrap();
        let h = &applied.graph;
        assert_eq!(h.vertex_count(), 6);
        assert_eq!(h.edge_count(), g.edge_count() + 1);
        assert!(h.has_edge(5, 1));
        let d = h.attrs().get("d").unwrap();
        let c = h.attrs().get("c").unwrap();
        assert!(h.has_label(5, d));
        assert!(h.has_label(4, c));
        // Labels stay sorted and deduplicated.
        assert!(h.labels(5).windows(2).all(|w| w[0] < w[1]));
        // Dirty: the new vertex (5), the edge endpoint (1), the
        // re-labelled vertex (4) and its neighbours (2, 3).
        assert_eq!(applied.dirty_centers, vec![1, 2, 3, 4, 5]);
        // The base graph is untouched.
        assert_eq!(g.vertex_count(), 5);
        assert!(g.attrs().get("d").is_none());
    }

    #[test]
    fn duplicate_edges_and_labels_are_no_ops() {
        let (g, a) = paper_example();
        let mut delta = GraphDelta::new();
        delta.add_edge(DeltaVertex::Existing(0), DeltaVertex::Existing(1)); // exists
        delta.add_label(0, "a"); // v1 already carries a
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph.edge_count(), g.edge_count());
        assert!(applied.graph.has_label(0, a.a));
        assert!(applied.dirty_centers.is_empty(), "nothing actually changed");
    }

    #[test]
    fn delta_apply_rejects_bad_references() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        delta.add_edge(DeltaVertex::Existing(0), DeltaVertex::Existing(99));
        assert!(matches!(
            delta.apply(&g),
            Err(GraphError::UnknownVertex(99))
        ));

        let mut delta = GraphDelta::new();
        delta.add_edge(DeltaVertex::Added(0), DeltaVertex::Existing(0));
        assert!(matches!(delta.apply(&g), Err(GraphError::UnknownVertex(_))));

        let mut delta = GraphDelta::new();
        delta.add_edge(DeltaVertex::Existing(2), DeltaVertex::Existing(2));
        assert!(matches!(delta.apply(&g), Err(GraphError::SelfLoop(2))));

        let mut delta = GraphDelta::new();
        delta.add_label(99, "x");
        assert!(matches!(
            delta.apply(&g),
            Err(GraphError::UnknownVertex(99))
        ));
    }

    /// A rejected delta must leave an in-place target untouched, even
    /// when its valid parts precede the invalid one — references are
    /// validated before the first mutation.
    #[test]
    fn failed_in_place_apply_leaves_graph_untouched() {
        let (g, _) = paper_example();
        let mut h = g.clone();
        let mut delta = GraphDelta::new();
        let w = delta.add_vertex(["d"]); // valid vertex…
        delta.add_edge(w, DeltaVertex::Existing(0)); // …valid edge…
        delta.add_label(0, "z"); // …valid label…
        delta.add_edge(DeltaVertex::Existing(1), DeltaVertex::Existing(1)); // …then a self-loop
        assert!(matches!(
            delta.apply_in_place(&mut h),
            Err(GraphError::SelfLoop(1))
        ));
        assert_eq!(h, g, "failed apply must not mutate");
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        let w = delta.add_vertex(["d", "a"]);
        delta.add_edge(w, DeltaVertex::Existing(1));
        delta.add_label(4, "c");
        let applied = delta.apply(&g).unwrap();
        let mut h = g.clone();
        let dirty = delta.apply_in_place(&mut h).unwrap();
        assert_eq!(h, applied.graph);
        assert_eq!(dirty, applied.dirty_centers);
    }

    /// Replaying a sequence delta by delta must reproduce the union
    /// graph *exactly* — same vertex ids, same attribute interning
    /// order, same adjacency — which is what lets an incremental
    /// mining session substitute for re-mining the union.
    #[test]
    fn replaying_deltas_reproduces_union_graph() {
        let (g1, _) = paper_example();
        let g2 = labelled_path(4, 2);
        let (g3, _) = paper_example();
        let seq: SnapshotSequence = [g1, g2, g3].into_iter().collect();

        let (mut current, deltas) = seq.replay().unwrap();
        assert_eq!(deltas.len(), 2);
        for delta in &deltas {
            current = delta.apply(&current).unwrap().graph;
        }
        assert_eq!(current, seq.union_graph());
    }

    /// Regression: a snapshot whose attribute table was hand-interned
    /// out of vertex-traversal order (and carries a vertex-unused
    /// value) must still replay to the exact union graph — the delta
    /// declares the snapshot's values in *its* id order instead of
    /// discovering them in vertex order.
    #[test]
    fn replay_preserves_snapshot_interning_order_and_unused_values() {
        let (g1, _) = paper_example();
        // Table order: z=0, y=1, unused=2 — but vertex 0 carries y and
        // vertex 1 carries z, so first-use order would be y, z.
        let mut attrs = AttrTable::new();
        let z = attrs.intern("z");
        let y = attrs.intern("y");
        attrs.intern("unused");
        let g2 =
            AttributedGraph::from_edge_list(vec![vec![y], vec![z]], attrs, [(0u32, 1u32)]).unwrap();
        let seq: SnapshotSequence = [g1, g2].into_iter().collect();

        let (mut current, deltas) = seq.replay().unwrap();
        for delta in &deltas {
            current = delta.apply(&current).unwrap().graph;
        }
        let union = seq.union_graph();
        assert_eq!(
            current, union,
            "replayed attr table must match the union's id for id"
        );
        assert_eq!(current.attrs().get("unused"), union.attrs().get("unused"));
    }

    #[test]
    fn churn_removes_edges_labels_and_detaches() {
        let (g, a) = paper_example();
        let mut delta = GraphDelta::new();
        delta.remove_edge(0, 1);
        let applied = delta.apply(&g).unwrap();
        assert!(!applied.graph.has_edge(0, 1));
        assert_eq!(applied.graph.edge_count(), g.edge_count() - 1);
        assert_eq!(applied.dirty_centers, vec![0, 1]);

        // Label removal dirties the vertex and its whole neighbourhood.
        let mut delta = GraphDelta::new();
        delta.remove_label(0, "a");
        let applied = delta.apply(&g).unwrap();
        assert!(!applied.graph.has_label(0, a.a));
        let mut want = vec![0];
        want.extend_from_slice(g.neighbors(0));
        want.sort_unstable();
        assert_eq!(applied.dirty_centers, want);

        // Detach: labels and edges gone, id slot retained.
        let mut delta = GraphDelta::new();
        delta.remove_vertex(0);
        let applied = delta.apply(&g).unwrap();
        let h = &applied.graph;
        assert_eq!(h.vertex_count(), g.vertex_count());
        assert!(h.labels(0).is_empty());
        assert!(h.neighbors(0).is_empty());
        assert_eq!(h.edge_count(), g.edge_count() - g.neighbors(0).len());
        let mut want = vec![0];
        want.extend_from_slice(g.neighbors(0));
        want.sort_unstable();
        assert_eq!(applied.dirty_centers, want);
    }

    #[test]
    fn change_label_swaps_value_and_dirties_neighbourhood() {
        let (g, a) = paper_example();
        let mut delta = GraphDelta::new();
        delta.change_label(0, "a", "zz");
        let applied = delta.apply(&g).unwrap();
        let h = &applied.graph;
        assert!(!h.has_label(0, a.a));
        let zz = h.attrs().get("zz").unwrap();
        assert!(h.has_label(0, zz));
        let mut want = vec![0];
        want.extend_from_slice(g.neighbors(0));
        want.sort_unstable();
        assert_eq!(applied.dirty_centers, want);
        // Labels stay sorted after the swap.
        assert!(h.labels(0).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn removal_no_ops_do_not_dirty() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        delta.remove_edge(0, 4); // absent edge
        delta.remove_label(0, "never-interned");
        assert!(!delta.is_empty());
        assert!(delta.has_churn());
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.graph, g, "no-op removals must not mutate");
        assert!(applied.dirty_centers.is_empty());

        // Detaching an already-detached vertex is a no-op the second time.
        let mut delta = GraphDelta::new();
        delta.remove_vertex(2);
        let once = delta.apply(&g).unwrap();
        let twice = delta.apply(&once.graph).unwrap();
        assert_eq!(twice.graph, once.graph);
        assert!(twice.dirty_centers.is_empty());
    }

    #[test]
    fn churn_rejects_out_of_range_targets() {
        let (g, _) = paper_example();
        for delta in [
            {
                let mut d = GraphDelta::new();
                d.remove_edge(0, 99);
                d
            },
            {
                let mut d = GraphDelta::new();
                d.remove_label(99, "a");
                d
            },
            {
                let mut d = GraphDelta::new();
                d.remove_vertex(99);
                d
            },
            {
                let mut d = GraphDelta::new();
                d.change_label(99, "a", "b");
                d
            },
        ] {
            assert!(matches!(
                delta.apply(&g),
                Err(GraphError::UnknownVertex(99))
            ));
        }
        // Churn targets are base ids: a vertex added by the same delta
        // is out of range for removal.
        let mut h = g.clone();
        let mut delta = GraphDelta::new();
        delta.add_vertex(["d"]);
        delta.remove_vertex(5);
        assert!(matches!(
            delta.apply_in_place(&mut h),
            Err(GraphError::UnknownVertex(5))
        ));
        assert_eq!(h, g, "failed churn apply must not mutate");
    }

    #[test]
    fn detach_then_rewire_in_one_delta() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        delta.remove_vertex(4);
        delta.add_label(4, "fresh");
        delta.add_edge(DeltaVertex::Existing(4), DeltaVertex::Existing(0));
        let applied = delta.apply(&g).unwrap();
        let h = &applied.graph;
        let fresh = h.attrs().get("fresh").unwrap();
        assert_eq!(h.labels(4), &[fresh]);
        assert_eq!(h.neighbors(4), &[0]);
        assert!(applied.dirty_centers.contains(&4));
        assert!(applied.dirty_centers.contains(&0));
    }

    #[test]
    fn churn_codec_roundtrips_and_additive_encoding_is_unchanged() {
        // Additive deltas must keep the exact version-1 byte layout:
        // no churn sections are appended.
        let mut additive = GraphDelta::new();
        let w = additive.add_vertex(["d"]);
        additive.add_edge(w, DeltaVertex::Existing(0));
        let bytes = additive.to_bytes();
        let mut churny = additive.clone();
        churny.remove_edge(0, 1);
        assert!(churny.to_bytes().len() > bytes.len());
        assert!(churny.to_bytes().starts_with(&bytes));

        let decoded = GraphDelta::from_bytes(&churny.to_bytes()).unwrap();
        assert_eq!(decoded, churny);
        assert_eq!(decoded.to_bytes(), churny.to_bytes());

        // Full churn delta roundtrips exactly.
        let mut d = GraphDelta::new();
        d.remove_edge(1, 2);
        d.remove_label(0, "a");
        d.remove_vertex(3);
        d.change_label(2, "b", "市場");
        let decoded = GraphDelta::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(decoded, d);
        assert!(decoded.has_churn());
    }

    #[test]
    fn from_snapshot_marks_whole_component_dirty() {
        let (base, _) = paper_example();
        let g2 = labelled_path(4, 2);
        let delta = GraphDelta::from_snapshot(&g2);
        let applied = delta.apply(&base).unwrap();
        // Every appended vertex is dirty; no base vertex is.
        assert_eq!(applied.dirty_centers, vec![5, 6, 7, 8]);
    }
}
