//! Dynamic attributed graphs: sequences of snapshots over a shared
//! attribute universe (the paper's future-work item (2), and the data
//! model of the §VI-D alarm application).
//!
//! CSPM mines a single graph; a snapshot sequence is mined through its
//! *disjoint union* — every `(snapshot, vertex)` pair becomes one vertex
//! of the union graph, so an a-star's frequency counts occurrences
//! across time, exactly as the windowed alarm pipeline does.

use crate::attrs::AttrTable;
use crate::graph::{AttributedGraph, VertexId};

/// A sequence of attributed-graph snapshots. Snapshots may have
/// different vertex counts and attribute tables; attribute values are
/// reconciled **by name** when building the union.
#[derive(Debug, Clone, Default)]
pub struct SnapshotSequence {
    snapshots: Vec<AttributedGraph>,
}

impl SnapshotSequence {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a snapshot.
    pub fn push(&mut self, g: AttributedGraph) {
        self.snapshots.push(g);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The snapshots.
    pub fn snapshots(&self) -> &[AttributedGraph] {
        &self.snapshots
    }

    /// Vertex-id offset of snapshot `i` within the union graph.
    pub fn offset(&self, i: usize) -> VertexId {
        self.snapshots[..i]
            .iter()
            .map(|g| g.vertex_count() as VertexId)
            .sum()
    }

    /// Maps a union-graph vertex back to `(snapshot index, local id)`.
    pub fn locate(&self, v: VertexId) -> Option<(usize, VertexId)> {
        let mut rest = v;
        for (i, g) in self.snapshots.iter().enumerate() {
            let n = g.vertex_count() as VertexId;
            if rest < n {
                return Some((i, rest));
            }
            rest -= n;
        }
        None
    }

    /// Builds the disjoint-union graph with a shared attribute table
    /// (values reconciled by name).
    pub fn union_graph(&self) -> AttributedGraph {
        let mut attrs = AttrTable::new();
        let mut labels = Vec::new();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut offset: VertexId = 0;
        for g in &self.snapshots {
            // Remap this snapshot's attribute ids into the shared table.
            let remap: Vec<u32> = (0..g.attr_count() as u32)
                .map(|a| attrs.intern(g.attrs().name(a).expect("interned")))
                .collect();
            for v in g.vertices() {
                labels.push(g.labels(v).iter().map(|&a| remap[a as usize]).collect());
            }
            edges.extend(g.edges().map(|(u, v)| (u + offset, v + offset)));
            offset += g.vertex_count() as VertexId;
        }
        AttributedGraph::from_edge_list(labels, attrs, edges)
            .expect("snapshot edges remain valid under offsetting")
    }
}

impl FromIterator<AttributedGraph> for SnapshotSequence {
    fn from_iter<T: IntoIterator<Item = AttributedGraph>>(iter: T) -> Self {
        Self {
            snapshots: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{labelled_path, paper_example};

    #[test]
    fn union_offsets_and_locate() {
        let (g1, _) = paper_example();
        let g2 = labelled_path(4, 2);
        let seq: SnapshotSequence = [g1.clone(), g2.clone()].into_iter().collect();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.offset(0), 0);
        assert_eq!(seq.offset(1), 5);
        assert_eq!(seq.locate(3), Some((0, 3)));
        assert_eq!(seq.locate(7), Some((1, 2)));
        assert_eq!(seq.locate(99), None);

        let u = seq.union_graph();
        assert_eq!(u.vertex_count(), 9);
        assert_eq!(u.edge_count(), g1.edge_count() + g2.edge_count());
        // No cross-snapshot edges.
        assert!(!u.has_edge(4, 5));
    }

    #[test]
    fn attribute_names_are_reconciled() {
        // Two snapshots interning the same names in different orders must
        // agree in the union.
        let mut b1 = crate::GraphBuilder::new();
        let x = b1.add_vertex(["p"]);
        let y = b1.add_vertex(["q"]);
        b1.add_edge(x, y).unwrap();
        let mut b2 = crate::GraphBuilder::new();
        let x = b2.add_vertex(["q"]);
        let y = b2.add_vertex(["p"]);
        b2.add_edge(x, y).unwrap();
        let seq: SnapshotSequence = [b1.build().unwrap(), b2.build().unwrap()]
            .into_iter()
            .collect();
        let u = seq.union_graph();
        let p = u.attrs().get("p").unwrap();
        assert!(u.has_label(0, p));
        assert!(u.has_label(3, p));
        assert_eq!(u.attr_count(), 2);
    }

    #[test]
    fn empty_sequence_yields_empty_graph() {
        let seq = SnapshotSequence::new();
        assert!(seq.is_empty());
        let u = seq.union_graph();
        assert_eq!(u.vertex_count(), 0);
    }
}
