//! Attribute-stars (a-stars), the paper's pattern type (§IV-A).

use std::fmt;

use crate::attrs::{AttrId, AttrTable};
use crate::graph::{AttributedGraph, VertexId};
use crate::star::{contains_all, Star};

/// An attribute-star `S = (Sc, SL)`: a coreset of attribute values on a
/// core vertex and a leafset of attribute values appearing on any of its
/// leaves (§IV-A).
///
/// Both sets are stored sorted and deduplicated. An a-star *matches* a
/// [`Star`] `X` when (1) every core value appears on `X`'s core and
/// (2) every leaf value appears on at least one leaf of `X`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AStar {
    coreset: Vec<AttrId>,
    leafset: Vec<AttrId>,
}

impl AStar {
    /// Creates an a-star; sorts and deduplicates both sets.
    ///
    /// # Panics
    /// Panics if either set is empty.
    pub fn new(mut coreset: Vec<AttrId>, mut leafset: Vec<AttrId>) -> Self {
        assert!(!coreset.is_empty(), "coreset must be non-empty");
        assert!(!leafset.is_empty(), "leafset must be non-empty");
        coreset.sort_unstable();
        coreset.dedup();
        leafset.sort_unstable();
        leafset.dedup();
        Self { coreset, leafset }
    }

    /// The coreset `Sc`.
    pub fn coreset(&self) -> &[AttrId] {
        &self.coreset
    }

    /// The leafset `SL`.
    pub fn leafset(&self) -> &[AttrId] {
        &self.leafset
    }

    /// Whether this a-star matches star `X` in `g` (§IV-A definition).
    pub fn matches(&self, g: &AttributedGraph, x: &Star) -> bool {
        if !contains_all(g.labels(x.core()), &self.coreset) {
            return false;
        }
        self.leafset
            .iter()
            .all(|&y| x.leaves().iter().any(|&u| g.has_label(u, y)))
    }

    /// Whether this a-star matches the adjacency-list star rooted at `v`.
    pub fn matches_at(&self, g: &AttributedGraph, v: VertexId) -> bool {
        match g.star_of(v) {
            Some(star) => self.matches(g, &star),
            None => false,
        }
    }

    /// All vertices whose adjacency-list star this a-star matches.
    pub fn occurrences(&self, g: &AttributedGraph) -> Vec<VertexId> {
        g.vertices().filter(|&v| self.matches_at(g, v)).collect()
    }

    /// Support: number of occurrences.
    pub fn support(&self, g: &AttributedGraph) -> usize {
        g.vertices().filter(|&v| self.matches_at(g, v)).count()
    }

    /// Renders using attribute names, e.g. `({a}, {b, c})`.
    pub fn display<'a>(&'a self, attrs: &'a AttrTable) -> DisplayAStar<'a> {
        DisplayAStar { astar: self, attrs }
    }
}

/// Helper returned by [`AStar::display`].
pub struct DisplayAStar<'a> {
    astar: &'a AStar,
    attrs: &'a AttrTable,
}

impl fmt::Display for DisplayAStar<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {})",
            self.attrs.display_set(&self.astar.coreset),
            self.attrs.display_set(&self.astar.leafset)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;

    #[test]
    fn fig1c_astar_matches_fig1b_star() {
        // The a-star S = ({a},{b,c}) of Fig. 1(c) matches the star of
        // Fig. 1(b) (core v1, leaves v2,v3,v4).
        let (g, at) = paper_example();
        let s = AStar::new(vec![at.a], vec![at.b, at.c]);
        let x = g.star_of(0).unwrap();
        assert!(s.matches(&g, &x));
        // Occurrences: v1 (neighbours carry b on v4 and c on v2/v3) and v5
        // (neighbours v3{c}, v4{b}).
        assert_eq!(s.occurrences(&g), vec![0, 4]);
        assert_eq!(s.support(&g), 2);
    }

    #[test]
    fn coreset_requirement_is_checked() {
        let (g, at) = paper_example();
        let s = AStar::new(vec![at.c], vec![at.a]);
        // c appears at v2 and v3; both have neighbour v1 carrying a.
        assert_eq!(s.occurrences(&g), vec![1, 2]);
        let s2 = AStar::new(vec![at.b], vec![at.c]);
        // b at v4 (neighbours v1{a}, v5{a,b}: no c) and v5 (neighbour v3{c}).
        assert_eq!(s2.occurrences(&g), vec![4]);
    }

    #[test]
    fn sets_are_normalised() {
        let s = AStar::new(vec![2, 1, 2], vec![3, 3, 0]);
        assert_eq!(s.coreset(), &[1, 2]);
        assert_eq!(s.leafset(), &[0, 3]);
    }

    #[test]
    #[should_panic(expected = "coreset must be non-empty")]
    fn empty_coreset_panics() {
        let _ = AStar::new(vec![], vec![1]);
    }

    #[test]
    fn display_uses_names() {
        let (g, at) = paper_example();
        let s = AStar::new(vec![at.a], vec![at.b, at.c]);
        // Ids are interned in first-seen order (a, c, b in Fig. 1), and the
        // display follows id order.
        assert_eq!(s.display(g.attrs()).to_string(), "({a}, {c, b})");
    }

    #[test]
    fn leaf_values_may_come_from_different_leaves() {
        // One a-star can match even if no single leaf carries every value.
        let (g, at) = paper_example();
        let s = AStar::new(vec![at.a], vec![at.a, at.b, at.c]);
        // v1: leaves v2{a,c}, v3{c}, v4{b} jointly carry a, b, c.
        assert!(s.matches_at(&g, 0));
    }
}
