//! Induced subgraphs and ego networks.
//!
//! Used by the application layers (e.g. extracting the neighbourhood a
//! pattern occurrence lives in for inspection) and by dataset tooling.

use crate::graph::{AttributedGraph, VertexId};

/// An induced subgraph together with the mapping back to the parent
/// graph's vertex ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph (shares the parent's attribute table).
    pub graph: AttributedGraph,
    /// `original[i]` = parent-graph id of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl Subgraph {
    /// Maps a subgraph vertex id back to the parent graph.
    pub fn to_parent(&self, v: VertexId) -> VertexId {
        self.original[v as usize]
    }

    /// Maps a parent-graph vertex into the subgraph, if present.
    pub fn from_parent(&self, v: VertexId) -> Option<VertexId> {
        self.original
            .iter()
            .position(|&o| o == v)
            .map(|i| i as VertexId)
    }
}

/// Extracts the subgraph induced by `vertices` (deduplicated, order
/// preserved). Edges are kept iff both endpoints are selected.
pub fn induced_subgraph(g: &AttributedGraph, vertices: &[VertexId]) -> Subgraph {
    let mut original: Vec<VertexId> = Vec::with_capacity(vertices.len());
    let mut index: std::collections::HashMap<VertexId, VertexId> = std::collections::HashMap::new();
    for &v in vertices {
        if let std::collections::hash_map::Entry::Vacant(e) = index.entry(v) {
            e.insert(original.len() as VertexId);
            original.push(v);
        }
    }
    let labels: Vec<Vec<u32>> = original.iter().map(|&v| g.labels(v).to_vec()).collect();
    let mut edges = Vec::new();
    for (i, &v) in original.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(&j) = index.get(&u) {
                if (i as VertexId) < j {
                    edges.push((i as VertexId, j));
                }
            }
        }
    }
    let graph = AttributedGraph::from_edge_list(labels, g.attrs().clone(), edges)
        .expect("induced edges are valid");
    Subgraph { graph, original }
}

/// The ego network of `center`: the subgraph induced by `center` and
/// every vertex within `radius` hops.
pub fn ego_network(g: &AttributedGraph, center: VertexId, radius: usize) -> Subgraph {
    let mut selected = vec![center];
    let mut seen = std::collections::HashSet::from([center]);
    let mut frontier = vec![center];
    for _ in 0..radius {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in g.neighbors(v) {
                if seen.insert(u) {
                    selected.push(u);
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    induced_subgraph(g, &selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let (g, at) = paper_example();
        // v1, v2, v3: edges v1-v2 and v1-v3 survive; v3-v5 is cut.
        let s = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(s.graph.vertex_count(), 3);
        assert_eq!(s.graph.edge_count(), 2);
        assert_eq!(s.to_parent(0), 0);
        assert_eq!(s.from_parent(2), Some(2));
        assert_eq!(s.from_parent(4), None);
        // Labels and attribute table are preserved.
        assert!(s.graph.has_label(1, at.a) && s.graph.has_label(1, at.c));
        assert_eq!(s.graph.attrs().len(), g.attrs().len());
    }

    #[test]
    fn duplicates_are_collapsed() {
        let (g, _) = paper_example();
        let s = induced_subgraph(&g, &[0, 0, 1, 1]);
        assert_eq!(s.graph.vertex_count(), 2);
    }

    #[test]
    fn ego_network_radii() {
        let (g, _) = paper_example();
        // v2's 1-hop ego: {v2, v1}; 2-hop adds v3, v4.
        let one = ego_network(&g, 1, 1);
        assert_eq!(one.graph.vertex_count(), 2);
        let two = ego_network(&g, 1, 2);
        assert_eq!(two.graph.vertex_count(), 4);
        // 3-hop covers the whole example.
        let three = ego_network(&g, 1, 3);
        assert_eq!(three.graph.vertex_count(), 5);
        assert_eq!(three.graph.edge_count(), g.edge_count());
    }

    #[test]
    fn zero_radius_is_single_vertex() {
        let (g, _) = paper_example();
        let s = ego_network(&g, 0, 0);
        assert_eq!(s.graph.vertex_count(), 1);
        assert_eq!(s.graph.edge_count(), 0);
    }
}
