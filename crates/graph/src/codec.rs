//! Little-endian byte codec shared by every binary on-disk format in
//! the workspace: the `cspm-store` session snapshot + WAL and the
//! `.csbin` parse cache both build on these primitives, so torn writes
//! and bit-flips are detected the same way everywhere.
//!
//! Two layers live here:
//!
//! * **Primitives** — [`Reader`] plus the `put_*` writers: bounds-checked
//!   little-endian integers and length-prefixed UTF-8 strings. Every
//!   read failure is a typed [`DecodeError`], never a panic.
//! * **Checksummed frames** — [`write_frame`] / [`read_frame`]: a
//!   `tag, length, payload, CRC-32` unit. A frame whose checksum does
//!   not match its bytes (bit-flip) or whose declared length overruns
//!   the buffer (torn write, truncation) is reported as a typed
//!   [`FrameError`], letting callers degrade gracefully — truncate a
//!   log tail, discard a cache, rebuild from source.

use std::fmt;

/// A byte buffer failed to decode: truncated, out-of-range id, invalid
/// UTF-8, trailing garbage. The message says which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was malformed.
    pub message: &'static str,
}

impl DecodeError {
    pub(crate) fn new(message: &'static str) -> Self {
        Self { message }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed binary data: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- writers

/// Appends `v` as two little-endian bytes.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as four little-endian bytes.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends `v` as eight little-endian bytes.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` byte length followed by the UTF-8 bytes of `s`.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------- reader

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new("unexpected end of data"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32` count that must fit (at `width` bytes per element)
    /// in the remaining buffer — the cheap sanity bound that stops a
    /// corrupt count from provoking a huge allocation.
    pub fn bounded_count(&mut self, width: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.checked_mul(width).is_none_or(|b| b > self.remaining()) {
            return Err(DecodeError::new("count exceeds remaining data"));
        }
        Ok(n)
    }

    /// Reads a [`put_str`] string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.bounded_count(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("invalid UTF-8 string"))
    }

    /// Reads `n` little-endian `u32`s in bulk.
    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, DecodeError> {
        let bytes = self.take(n.checked_mul(4).ok_or(DecodeError::new("count overflow"))?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::new("trailing bytes after value"))
        }
    }
}

// ---------------------------------------------------------------- CRC-32

/// Reflected CRC-32 (IEEE 802.3 polynomial), table generated at compile
/// time — the workspace is offline, so the checksum is hand-rolled like
/// the `.csbin` FNV fingerprint before it.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

// ---------------------------------------------------------------- frames

/// Fixed bytes of a frame besides its payload: `u8` tag + `u64` length
/// prefix + `u32` CRC-32 footer.
pub const FRAME_OVERHEAD: usize = 13;

/// Why a frame could not be read back. Both variants mean "stop
/// trusting the buffer from `offset` on" — the distinction is only
/// diagnostic (a torn tail vs a bit-flip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame's declared extent — a torn
    /// write or truncated file.
    Truncated {
        /// Byte offset where the broken frame starts.
        offset: usize,
    },
    /// The frame is complete but its CRC-32 footer does not match its
    /// bytes — a bit-flip or overwrite.
    Checksum {
        /// Byte offset where the corrupt frame starts.
        offset: usize,
    },
}

impl FrameError {
    /// Byte offset of the first unusable frame.
    pub fn offset(&self) -> usize {
        match *self {
            FrameError::Truncated { offset } | FrameError::Checksum { offset } => offset,
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { offset } => {
                write!(f, "frame at byte {offset} is truncated (torn write)")
            }
            FrameError::Checksum { offset } => {
                write!(f, "frame at byte {offset} fails its checksum (bit-flip)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends the frame `[tag][len][payload][crc]` to `out`.
pub fn write_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&[&[tag], &(payload.len() as u64).to_le_bytes(), payload]);
    put_u32(out, crc);
}

/// A decoded frame: `(tag, payload, next_pos)`.
pub type Frame<'a> = (u8, &'a [u8], usize);

/// Reads the frame starting at `pos`. Returns `Ok(None)` when `pos` is
/// exactly the end of the buffer (a clean end), the decoded
/// `(tag, payload, next_pos)` otherwise.
pub fn read_frame(bytes: &[u8], pos: usize) -> Result<Option<Frame<'_>>, FrameError> {
    if pos == bytes.len() {
        return Ok(None);
    }
    let header_end = pos.checked_add(9).filter(|&e| e <= bytes.len());
    let Some(header_end) = header_end else {
        return Err(FrameError::Truncated { offset: pos });
    };
    let tag = bytes[pos];
    let len = u64::from_le_bytes(bytes[pos + 1..header_end].try_into().unwrap());
    // A torn length prefix can claim absurd extents; the subtraction
    // below is checked so it reads as truncation, not a panic.
    let payload_end = (header_end as u64)
        .checked_add(len)
        .filter(|&e| e + 4 <= bytes.len() as u64);
    let Some(payload_end) = payload_end.map(|e| e as usize) else {
        return Err(FrameError::Truncated { offset: pos });
    };
    let payload = &bytes[header_end..payload_end];
    let stored = u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
    if stored != crc32(&[&bytes[pos..payload_end]]) {
        return Err(FrameError::Checksum { offset: pos });
    }
    Ok(Some((tag, payload, payload_end + 4)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut out = Vec::new();
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "héllo");
        let mut r = Reader::new(&out);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_truncation_and_trailing() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut out = Vec::new();
        put_str(&mut out, "abc");
        out[0] = 200; // length prefix far beyond the buffer
        assert!(Reader::new(&out).str().is_err());
        let r = Reader::new(&[0]);
        assert!(r.finish().is_err());
    }

    #[test]
    fn reader_rejects_invalid_utf8() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&out).str().is_err());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn frame_roundtrip_and_clean_end() {
        let mut out = Vec::new();
        write_frame(&mut out, 7, b"payload");
        write_frame(&mut out, 9, b"");
        let (tag, payload, next) = read_frame(&out, 0).unwrap().unwrap();
        assert_eq!((tag, payload), (7, &b"payload"[..]));
        let (tag, payload, next) = read_frame(&out, next).unwrap().unwrap();
        assert_eq!((tag, payload), (9, &b""[..]));
        assert_eq!(read_frame(&out, next).unwrap(), None);
    }

    #[test]
    fn frame_detects_truncation_at_every_cut() {
        let mut out = Vec::new();
        write_frame(&mut out, 1, b"some payload bytes");
        for cut in 0..out.len() {
            let err = read_frame(&out[..cut], 0);
            if cut == 0 {
                assert_eq!(err.unwrap(), None);
            } else {
                assert_eq!(err.unwrap_err(), FrameError::Truncated { offset: 0 });
            }
        }
    }

    #[test]
    fn frame_detects_any_single_bit_flip() {
        let mut out = Vec::new();
        write_frame(&mut out, 1, b"guarded");
        for byte in 0..out.len() {
            for bit in 0..8 {
                let mut copy = out.clone();
                copy[byte] ^= 1 << bit;
                let got = read_frame(&copy, 0);
                assert!(
                    got.is_err() || got == Ok(None),
                    "flip at {byte}.{bit} went undetected: {got:?}"
                );
            }
        }
    }

    #[test]
    fn huge_length_prefix_reads_as_truncation() {
        let mut out = Vec::new();
        write_frame(&mut out, 1, b"x");
        out[1..9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_frame(&out, 0).unwrap_err(),
            FrameError::Truncated { offset: 0 }
        );
    }
}
