//! The attributed graph itself.

use crate::attrs::{AttrId, AttrTable};
use crate::error::GraphError;
use crate::star::Star;

/// Dense vertex identifier.
pub type VertexId = u32;

/// An undirected attributed graph `G = (A, λ, V, E)` (§III).
///
/// Construction goes through [`crate::GraphBuilder`]; the built graph is
/// immutable, with sorted, deduplicated neighbour lists and sorted
/// attribute-value lists per vertex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributedGraph {
    pub(crate) adjacency: Vec<Vec<VertexId>>,
    pub(crate) labels: Vec<Vec<AttrId>>,
    pub(crate) attrs: AttrTable,
    pub(crate) edge_count: usize,
}

impl AttributedGraph {
    /// Bulk constructor for large generated graphs: takes per-vertex
    /// attribute lists, the interner that produced them, and an edge
    /// list. Edges are deduplicated; self-loops are rejected. Much faster
    /// than [`crate::GraphBuilder`] for multi-million-edge graphs.
    pub fn from_edge_list(
        labels: Vec<Vec<AttrId>>,
        attrs: AttrTable,
        edges: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> Result<Self, GraphError> {
        let n = labels.len();
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for (u, v) in edges {
            if u == v {
                return Err(GraphError::SelfLoop(u));
            }
            if u as usize >= n {
                return Err(GraphError::UnknownVertex(u));
            }
            if v as usize >= n {
                return Err(GraphError::UnknownVertex(v));
            }
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        let mut edge_count = 0usize;
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
            edge_count += list.len();
        }
        let labels = labels
            .into_iter()
            .map(|mut l| {
                l.sort_unstable();
                l.dedup();
                l
            })
            .collect();
        Ok(Self {
            adjacency,
            labels,
            attrs,
            edge_count: edge_count / 2,
        })
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of distinct attribute values `|A|`.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute-value interner.
    pub fn attrs(&self) -> &AttrTable {
        &self.attrs
    }

    /// Estimated resident bytes: adjacency + label payloads (with their
    /// per-vertex `Vec` headers) and the interned attribute names. Feeds
    /// a serving daemon's memory budget, so it tracks what scales with
    /// the graph rather than exact allocator truth.
    pub fn approx_bytes(&self) -> usize {
        const VEC_HEADER: usize = std::mem::size_of::<Vec<u32>>();
        let adjacency: usize = self
            .adjacency
            .iter()
            .map(|n| VEC_HEADER + n.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let labels: usize = self
            .labels
            .iter()
            .map(|l| VEC_HEADER + l.capacity() * std::mem::size_of::<AttrId>())
            .sum();
        // Interner: each name is stored once plus ~two index entries.
        let attrs: usize = self
            .attrs
            .iter()
            .map(|(_, name)| name.len() + 2 * VEC_HEADER)
            .sum();
        adjacency + labels + attrs
    }

    /// Sorted neighbours of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Sorted attribute values `λ(v)`.
    pub fn labels(&self, v: VertexId) -> &[AttrId] {
        &self.labels[v as usize]
    }

    /// Whether `(v, a) ∈ λ`.
    pub fn has_label(&self, v: VertexId, a: AttrId) -> bool {
        self.labels[v as usize].binary_search(&a).is_ok()
    }

    /// Whether `{u, v} ∈ E`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency[u as usize].binary_search(&v).is_ok()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Iterates over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The adjacency-list tuple of `v`, viewed as a [`Star`] (§III: "each
    /// tuple in the adjacency list can be viewed as a star").
    ///
    /// Returns `None` for isolated vertices (a star needs ≥1 leaf).
    pub fn star_of(&self, v: VertexId) -> Option<Star> {
        let leaves = self.neighbors(v);
        if leaves.is_empty() {
            None
        } else {
            Some(Star::new(v, leaves.to_vec()))
        }
    }

    /// Builds the mapping table: attribute value → vertices where it
    /// appears (Fig. 2(a) of the paper).
    pub fn mapping_table(&self) -> MappingTable {
        let mut positions = vec![Vec::new(); self.attr_count()];
        for v in self.vertices() {
            for &a in self.labels(v) {
                positions[a as usize].push(v);
            }
        }
        MappingTable { positions }
    }

    /// Counts connected components.
    pub fn component_count(&self) -> usize {
        let n = self.vertex_count();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut stack = Vec::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            components += 1;
            seen[s] = true;
            stack.push(s as VertexId);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
        }
        components
    }

    /// Whether the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.vertex_count() > 0 && self.component_count() == 1
    }

    /// Validates the paper's input requirements: non-empty and connected.
    /// (Self-loops are already rejected at build time.)
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.vertex_count() == 0 {
            return Err(GraphError::Empty);
        }
        let components = self.component_count();
        if components != 1 {
            return Err(GraphError::Disconnected { components });
        }
        Ok(())
    }

    /// Total number of `(vertex, attribute-value)` pairs `|λ|`.
    pub fn label_pair_count(&self) -> usize {
        self.labels.iter().map(Vec::len).sum()
    }

    /// Average number of attribute values per vertex.
    pub fn mean_labels_per_vertex(&self) -> f64 {
        if self.vertex_count() == 0 {
            0.0
        } else {
            self.label_pair_count() as f64 / self.vertex_count() as f64
        }
    }
}

/// Positions of every attribute value: `positions[a] = sorted vertices v
/// with (v, a) ∈ λ` (the mapping table of Fig. 2(a)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingTable {
    positions: Vec<Vec<VertexId>>,
}

impl MappingTable {
    /// Vertices carrying attribute value `a`.
    pub fn positions(&self, a: AttrId) -> &[VertexId] {
        &self.positions[a as usize]
    }

    /// Occurrence frequency of `a` (number of vertices carrying it).
    pub fn frequency(&self, a: AttrId) -> usize {
        self.positions[a as usize].len()
    }

    /// Number of attribute values covered.
    pub fn attr_count(&self) -> usize {
        self.positions.len()
    }

    /// Iterates `(attr, positions)` in attribute-id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &[VertexId])> {
        self.positions
            .iter()
            .enumerate()
            .map(|(a, p)| (a as AttrId, p.as_slice()))
    }

    /// Total number of `(vertex, attribute)` pairs.
    pub fn total_pairs(&self) -> usize {
        self.positions.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::GraphBuilder;

    #[test]
    fn paper_example_shape() {
        let (g, a) = paper_example();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.attr_count(), 3);
        // Adjacency list from §III: (v1,{v2,v3,v4}), (v2,{v1}), (v3,{v1,v5}),
        // (v4,{v1,v5}), (v5,{v3,v4}).
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0, 4]);
        assert_eq!(g.neighbors(3), &[0, 4]);
        assert_eq!(g.neighbors(4), &[2, 3]);
        assert!(g.has_label(1, a.a) && g.has_label(1, a.c));
        assert!(g.is_connected());
        g.validate().unwrap();
    }

    #[test]
    fn mapping_table_matches_fig2a() {
        let (g, a) = paper_example();
        let mt = g.mapping_table();
        // Fig. 2(a): a → {v1, v2, v5}, b → {v4, v5}, c → {v2, v3}.
        assert_eq!(mt.positions(a.a), &[0, 1, 4]);
        assert_eq!(mt.positions(a.b), &[3, 4]);
        assert_eq!(mt.positions(a.c), &[1, 2]);
        assert_eq!(mt.frequency(a.a), 3);
        assert_eq!(mt.total_pairs(), 7);
    }

    #[test]
    fn edges_iterate_once() {
        let (g, _) = paper_example();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.contains(&(0, 1)));
        assert!(!edges.iter().any(|&(u, v)| u >= v));
    }

    #[test]
    fn star_of_returns_adjacency_tuple() {
        let (g, _) = paper_example();
        let s = g.star_of(0).unwrap();
        assert_eq!(s.core(), 0);
        assert_eq!(s.leaves(), &[1, 2, 3]);
    }

    #[test]
    fn star_of_isolated_vertex_is_none() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(["x"]);
        let v1 = b.add_vertex(["y"]);
        b.add_edge(v0, v1).unwrap();
        let _lone = b.add_vertex(["z"]);
        let g = b.build_unchecked();
        assert!(g.star_of(2).is_none());
    }

    #[test]
    fn disconnected_graph_fails_validation() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex(["x"]);
        let v1 = b.add_vertex(["y"]);
        b.add_edge(v0, v1).unwrap();
        b.add_vertex(["z"]);
        let g = b.build_unchecked();
        assert_eq!(g.component_count(), 2);
        assert!(matches!(
            g.validate(),
            Err(GraphError::Disconnected { components: 2 })
        ));
    }

    #[test]
    fn empty_graph_fails_validation() {
        let g = GraphBuilder::new().build_unchecked();
        assert!(matches!(g.validate(), Err(GraphError::Empty)));
        assert!(!g.is_connected());
    }

    #[test]
    fn label_statistics() {
        let (g, _) = paper_example();
        assert_eq!(g.label_pair_count(), 7);
        assert!((g.mean_labels_per_vertex() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn from_edge_list_matches_builder() {
        let (g, _) = paper_example();
        let labels: Vec<Vec<AttrId>> = g.vertices().map(|v| g.labels(v).to_vec()).collect();
        let rebuilt = AttributedGraph::from_edge_list(
            labels,
            g.attrs().clone(),
            g.edges().chain(g.edges()), // duplicates must collapse
        )
        .unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn from_edge_list_rejects_bad_edges() {
        let err = AttributedGraph::from_edge_list(vec![vec![], vec![]], AttrTable::new(), [(0, 0)]);
        assert!(matches!(err, Err(GraphError::SelfLoop(0))));
        let err = AttributedGraph::from_edge_list(vec![vec![], vec![]], AttrTable::new(), [(0, 5)]);
        assert!(matches!(err, Err(GraphError::UnknownVertex(5))));
    }
}
