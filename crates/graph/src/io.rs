//! Plain-text graph (de)serialisation.
//!
//! The format is line oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! v 0 a c        # vertex 0 with attribute values "a" and "c"
//! v 1 b
//! e 0 1          # undirected edge {0, 1}
//! ```
//!
//! Vertex ids must be dense (`0..n`), but `v` lines may appear in any
//! order. Attribute values may not contain whitespace.
//!
//! A binary codec ([`encode_graph`] / [`decode_graph`]) backs the
//! `cspm-store` session snapshot; unlike the text format it preserves
//! the attribute table exactly (interning order and vertex-unused
//! values included), so a decoded graph compares equal to the original.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::attrs::{AttrId, AttrTable};
use crate::builder::GraphBuilder;
use crate::codec::{put_str, put_u32, DecodeError, Reader};
use crate::error::GraphError;
use crate::graph::AttributedGraph;

/// Reads a graph from the text format. Does not enforce connectivity
/// (call [`AttributedGraph::validate`] if the paper's input requirements
/// must hold).
pub fn read_graph<R: Read>(reader: R) -> Result<AttributedGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut vertices: Vec<(u32, Vec<String>)> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: Option<u32> = None;

    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        let parse_id = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno,
                message: "missing vertex id".into(),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno,
                message: "vertex id is not an integer".into(),
            })
        };
        match tag {
            "v" => {
                let id = parse_id(parts.next())?;
                max_id = Some(max_id.map_or(id, |m| m.max(id)));
                vertices.push((id, parts.map(str::to_owned).collect()));
            }
            "e" => {
                let u = parse_id(parts.next())?;
                let v = parse_id(parts.next())?;
                max_id = Some(max_id.map_or(u.max(v), |m| m.max(u).max(v)));
                edges.push((u, v));
            }
            other => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("unknown record tag '{other}'"),
                })
            }
        }
    }

    let n = max_id.map_or(0, |m| m as usize + 1);
    let mut b = GraphBuilder::with_capacity(n);
    b.add_vertices(n);
    for (id, values) in vertices {
        for value in values {
            b.add_label(id, &value)?;
        }
    }
    for (u, v) in edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build_unchecked())
}

/// Writes a graph in the text format (inverse of [`read_graph`]).
pub fn write_graph<W: Write>(g: &AttributedGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# cspm attributed graph: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    )?;
    for v in g.vertices() {
        write!(w, "v {v}")?;
        for &a in g.labels(v) {
            let name = g.attrs().name(a).expect("label ids are always interned");
            write!(w, " {name}")?;
        }
        writeln!(w)?;
    }
    for (u, v) in g.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serialises `g` into `out` as a little-endian byte section (the
/// snapshot wire format of `cspm-store`; layout in `docs/FORMATS.md`).
/// [`decode_graph`] inverts it to a graph that compares **equal** to
/// `g`: the attribute table keeps its interning order (vertex-unused
/// values included), labels and adjacency are already sorted, and each
/// edge is written once as `(u, v)` with `u < v`.
pub fn encode_graph(g: &AttributedGraph, out: &mut Vec<u8>) {
    put_u32(out, g.vertex_count() as u32);
    put_u32(out, g.edge_count() as u32);
    put_u32(out, g.attr_count() as u32);
    for (_, name) in g.attrs().iter() {
        put_str(out, name);
    }
    for v in g.vertices() {
        put_u32(out, g.labels(v).len() as u32);
        for &a in g.labels(v) {
            put_u32(out, a);
        }
    }
    for (u, v) in g.edges() {
        put_u32(out, u);
        put_u32(out, v);
    }
}

/// Decodes an [`encode_graph`] section. Malformed input — truncation,
/// out-of-range attribute or vertex ids, duplicate attribute names
/// (which would silently renumber every label), trailing bytes — is a
/// typed [`DecodeError`], never a panic.
pub fn decode_graph(bytes: &[u8]) -> Result<AttributedGraph, DecodeError> {
    let mut r = Reader::new(bytes);
    let n = r.u32()? as usize;
    let m = r.u32()? as usize;
    let a = r.u32()? as usize;
    // Cheap lower bound (4 bytes per label count / edge endpoint /
    // attribute name length) so a corrupt count cannot provoke a huge
    // allocation before the reads below would fail anyway.
    if n.checked_mul(4).is_none_or(|b| b > r.remaining())
        || m.checked_mul(8).is_none_or(|b| b > r.remaining())
        || a.checked_mul(4).is_none_or(|b| b > r.remaining())
    {
        return Err(DecodeError::new("counts exceed remaining data"));
    }
    let mut attrs = AttrTable::new();
    for _ in 0..a {
        let name = r.str()?;
        let before = attrs.len();
        attrs.intern(&name);
        if attrs.len() == before {
            return Err(DecodeError::new("duplicate attribute name"));
        }
    }
    let mut labels: Vec<Vec<AttrId>> = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.bounded_count(4)?;
        let ids = r.u32s(k)?;
        if ids.iter().any(|&id| id as usize >= a) {
            return Err(DecodeError::new("label references unknown attribute"));
        }
        labels.push(ids);
    }
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.u32()?;
        let v = r.u32()?;
        edges.push((u, v));
    }
    r.finish()?;
    let g = AttributedGraph::from_edge_list(labels, attrs, edges)
        .map_err(|_| DecodeError::new("edge references unknown vertex or is a self-loop"))?;
    if g.edge_count() != m {
        // Duplicate edges collapsed: the section was not written by
        // encode_graph (or was corrupted into claiming one twice).
        return Err(DecodeError::new("duplicate edge in section"));
    }
    Ok(g)
}

/// Reads a SNAP-style edge list (`u<TAB>v` or `u v` per line, `#`
/// comments) together with a separate label file (`v value1 value2 …`
/// per line). This is the interchange format of most public attributed
/// graph dumps, so real datasets can be swapped in for the generators.
pub fn read_edge_list_with_labels<R1: Read, R2: Read>(
    edges: R1,
    labels: R2,
) -> Result<AttributedGraph, GraphError> {
    let mut b = GraphBuilder::new();
    let mut max_id: u32 = 0;
    let mut parsed_edges: Vec<(u32, u32)> = Vec::new();
    for (lineno, line) in BufReader::new(edges).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u32, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: "vertex id is not an integer".into(),
            })
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_id = max_id.max(u).max(v);
        parsed_edges.push((u, v));
    }
    let mut label_lines: Vec<(u32, Vec<String>)> = Vec::new();
    for (lineno, line) in BufReader::new(labels).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let v: u32 = parts
            .next()
            .unwrap()
            .parse()
            .map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: "label line must start with a vertex id".into(),
            })?;
        max_id = max_id.max(v);
        label_lines.push((v, parts.map(str::to_owned).collect()));
    }
    b.add_vertices(max_id as usize + 1);
    for (v, values) in label_lines {
        for value in values {
            b.add_label(v, &value)?;
        }
    }
    for (u, v) in parsed_edges {
        b.add_edge(u, v)?;
    }
    Ok(b.build_unchecked())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;

    #[test]
    fn roundtrip_paper_example() {
        let (g, _) = paper_example();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.vertex_count(), g.vertex_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
            let names = |gr: &AttributedGraph| -> Vec<String> {
                gr.labels(v)
                    .iter()
                    .map(|&a| gr.attrs().name(a).unwrap().to_owned())
                    .collect()
            };
            assert_eq!(names(&g2), names(&g));
        }
    }

    #[test]
    fn parses_comments_blanks_and_order() {
        let text = "\n# header\ne 0 1\nv 1 beta\nv 0 alpha gamma\n";
        let g = read_graph(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.labels(0).len(), 2);
    }

    #[test]
    fn vertex_only_seen_via_edge_exists() {
        let g = read_graph("v 0 x\ne 0 2\n".as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert!(g.labels(2).is_empty());
    }

    #[test]
    fn bad_tag_reports_line() {
        let err = read_graph("v 0 x\nz 1 2\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("unknown record tag"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn bad_id_reports_line() {
        let err = read_graph("e 0 q\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn self_loop_in_file_is_rejected() {
        let err = read_graph("e 1 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop(1)));
    }

    #[test]
    fn snap_style_edge_list_with_labels() {
        let edges = "# comment\n0\t1\n1 2\n";
        let labels = "0 alpha beta\n2 gamma\n";
        let g = read_edge_list_with_labels(edges.as_bytes(), labels.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.labels(0).len(), 2);
        assert!(g.labels(1).is_empty());
        assert_eq!(
            g.attrs().get("gamma").map(|a| g.has_label(2, a)),
            Some(true)
        );
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let (g, _) = paper_example();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g2, g);
    }

    #[test]
    fn binary_roundtrip_keeps_unused_attribute_values() {
        // A hand-built table with a vertex-unused value ("ghost") in the
        // middle: the text format would lose it, the binary one must not.
        let mut attrs = AttrTable::new();
        attrs.intern("a");
        attrs.intern("ghost");
        let b = attrs.intern("b");
        let g =
            AttributedGraph::from_edge_list(vec![vec![0], vec![b]], attrs, [(0u32, 1u32)]).unwrap();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        let g2 = decode_graph(&bytes).unwrap();
        assert_eq!(g2, g);
        assert_eq!(g2.attrs().name(1), Some("ghost"));
    }

    #[test]
    fn binary_decode_never_panics_on_damage() {
        let (g, _) = paper_example();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(decode_graph(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        // Out-of-range label id.
        let mut bad = bytes.clone();
        let a = g.attr_count() as u32;
        // First label id follows counts + names + first label count.
        let labels_at = 12 + g.attrs().iter().map(|(_, n)| 4 + n.len()).sum::<usize>() + 4;
        bad[labels_at..labels_at + 4].copy_from_slice(&(a + 7).to_le_bytes());
        assert!(decode_graph(&bad).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_graph(&long).is_err());
    }

    #[test]
    fn snap_style_bad_lines_report_positions() {
        let err = read_edge_list_with_labels("0 x\n".as_bytes(), "".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err =
            read_edge_list_with_labels("0 1\n".as_bytes(), "oops a b\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }
}
