//! Structural and attribute statistics of attributed graphs.
//!
//! Used by the Table II harness, by dataset validation tests, and for
//! characterising generated data against the benchmarks they imitate.

use crate::graph::{AttributedGraph, VertexId};

/// Degree statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes degree statistics; `None` for an empty graph.
pub fn degree_stats(g: &AttributedGraph) -> Option<DegreeStats> {
    if g.vertex_count() == 0 {
        return None;
    }
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    Some(DegreeStats {
        min: degrees.iter().copied().min().unwrap(),
        max: degrees.iter().copied().max().unwrap(),
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
    })
}

/// Local clustering coefficient of `v`: the fraction of neighbour pairs
/// that are themselves adjacent.
pub fn local_clustering(g: &AttributedGraph, v: VertexId) -> f64 {
    let nbrs = g.neighbors(v);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in i + 1..k {
            if g.has_edge(nbrs[i], nbrs[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Mean local clustering coefficient over all vertices.
pub fn mean_clustering(g: &AttributedGraph) -> f64 {
    if g.vertex_count() == 0 {
        return 0.0;
    }
    g.vertices().map(|v| local_clustering(g, v)).sum::<f64>() / g.vertex_count() as f64
}

/// Attribute homophily: the fraction of edges whose endpoints share at
/// least one attribute value. The benchmark generators plant this; the
/// completion experiments depend on it.
pub fn attribute_homophily(g: &AttributedGraph) -> f64 {
    let mut shared = 0usize;
    let mut total = 0usize;
    for (u, v) in g.edges() {
        total += 1;
        let (a, b) = (g.labels(u), g.labels(v));
        // Merge-scan over the two sorted label lists.
        let (mut i, mut j) = (0, 0);
        let mut any = false;
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    any = true;
                    break;
                }
            }
        }
        shared += usize::from(any);
    }
    if total == 0 {
        0.0
    } else {
        shared as f64 / total as f64
    }
}

/// Per-attribute frequency histogram, most frequent first, as
/// `(attr id, count)`.
pub fn attribute_histogram(g: &AttributedGraph) -> Vec<(u32, usize)> {
    let mapping = g.mapping_table();
    let mut hist: Vec<(u32, usize)> = mapping.iter().map(|(a, pos)| (a, pos.len())).collect();
    hist.sort_by(|l, r| r.1.cmp(&l.1).then(l.0.cmp(&r.0)));
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_example;
    use crate::GraphBuilder;

    #[test]
    fn degree_stats_of_paper_example() {
        let (g, _) = paper_example();
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1); // v2
        assert_eq!(s.max, 3); // v1
        assert!((s.mean - 2.0).abs() < 1e-12); // 10 endpoints / 5 vertices
    }

    #[test]
    fn clustering_of_triangle_and_star() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertices(4);
        let _ = v;
        for (u, w) in [(0, 1), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(u, w).unwrap();
        }
        let g = b.build_unchecked();
        // Vertex 1 has neighbours {0, 2} which are adjacent: coefficient 1.
        assert_eq!(local_clustering(&g, 1), 1.0);
        // Vertex 0 has neighbours {1, 2, 3}: one closed pair of three.
        assert!((local_clustering(&g, 0) - 1.0 / 3.0).abs() < 1e-12);
        // Leaf vertex: zero.
        assert_eq!(local_clustering(&g, 3), 0.0);
        assert!(mean_clustering(&g) > 0.0);
    }

    #[test]
    fn homophily_bounds_and_example() {
        let (g, _) = paper_example();
        let h = attribute_homophily(&g);
        assert!((0.0..=1.0).contains(&h));
        // Edges sharing a value: v1-v2 (a), v4-v5 (b), v1-v3? a vs c: no;
        // v1-v4? a vs b: no; v3-v5? c vs {a,b}: no. So 2/5.
        assert!((h - 0.4).abs() < 1e-12);
    }

    #[test]
    fn histogram_is_sorted_by_frequency() {
        let (g, at) = paper_example();
        let h = attribute_histogram(&g);
        assert_eq!(h[0], (at.a, 3));
        assert_eq!(h.len(), 3);
        assert!(h.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = GraphBuilder::new().build_unchecked();
        assert!(degree_stats(&g).is_none());
        assert_eq!(mean_clustering(&g), 0.0);
        assert_eq!(attribute_homophily(&g), 0.0);
    }
}
