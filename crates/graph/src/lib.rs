//! Attributed-graph substrate for the CSPM reproduction.
//!
//! This crate implements the preliminaries of the paper (§III): undirected
//! attributed graphs with nominal attribute values, vertex-adjacency-list
//! representation, stars, extended stars, attribute-stars (a-stars) and
//! their matching/appearance semantics, plus plain-text I/O.
//!
//! The design follows the paper's data model exactly:
//!
//! * a graph `G = (A, λ, V, E)` is a set of vertices, undirected edges, a
//!   set of nominal attribute values `A`, and a relation `λ : V ↦ A`
//!   mapping vertices to (possibly several) attribute values;
//! * graphs are connected and contain no self-loops (checked by
//!   [`AttributedGraph::validate`]);
//! * every tuple of the adjacency list is a [`Star`] whose core is the
//!   vertex and whose leaves are its neighbours.
//!
//! # Quick example
//!
//! ```
//! use cspm_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let v1 = b.add_vertex(["a"]);
//! let v2 = b.add_vertex(["a", "c"]);
//! b.add_edge(v1, v2).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.vertex_count(), 2);
//! assert_eq!(g.neighbors(v1), &[v2]);
//! ```

mod astar;
mod attrs;
mod builder;
pub mod codec;
pub mod dynamic;
mod error;
pub mod fixtures;
mod graph;
mod io;
pub mod metrics;
mod star;
mod subgraph;

pub use astar::AStar;
pub use attrs::{AttrId, AttrTable};
pub use builder::GraphBuilder;
pub use codec::DecodeError;
pub use error::GraphError;
pub use graph::{AttributedGraph, MappingTable, VertexId};
pub use io::{decode_graph, encode_graph, read_edge_list_with_labels, read_graph, write_graph};
pub use star::{ExtendedStar, Star};
pub use subgraph::{ego_network, induced_subgraph, Subgraph};
