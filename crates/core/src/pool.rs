//! A small shared worker pool for request-level parallelism.
//!
//! The engine already parallelises *inside* one mining run (candidate
//! scoring fans out across a scoped pool, see [`engine`](crate::engine));
//! a long-running daemon additionally needs parallelism *across* runs:
//! many tenant sessions accepting mine requests concurrently, with the
//! total CPU footprint bounded no matter how many connections are open.
//! [`WorkerPool`] is that bound — a fixed set of threads draining one
//! queue of boxed jobs.
//!
//! Jobs are opaque `FnOnce()` closures; the blocking [`WorkerPool::run`]
//! wrapper ships a closure over, waits for its result, and surfaces a
//! worker death (a panicked job) as [`PoolError`] instead of hanging the
//! caller. The pool joins its workers on drop, so owning one is enough
//! to guarantee no thread outlives it.
//!
//! ```
//! use cspm_core::pool::WorkerPool;
//!
//! let pool = WorkerPool::new(2);
//! let doubled = pool.run(|| 21 * 2).unwrap();
//! assert_eq!(doubled, 42);
//! ```

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The job queue died before producing a result: the worker executing
/// the job panicked, or the pool was torn down mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolError;

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool job did not complete (worker died)")
    }
}

impl std::error::Error for PoolError {}

/// A fixed-size pool of worker threads draining a shared job queue in
/// submission order. See the [module docs](self).
#[derive(Debug)]
pub struct WorkerPool {
    /// `Some` while accepting jobs; dropped first on teardown so the
    /// workers' receiver disconnects and they drain out.
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (`0` is promoted to 1 — a pool that can
    /// never run anything is always a bug).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = channel::<Job>();
        // std's mpsc receiver is single-consumer; share it behind a
        // mutex so each worker pops exactly one job at a time.
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("cspm-pool-{i}"))
                    .spawn(move || loop {
                        // Holding the lock only while popping keeps the
                        // other workers runnable during the job itself.
                        let job = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            // A sibling panicked while holding the
                            // queue lock; there is no queue discipline
                            // left worth preserving.
                            Err(_) => break,
                        };
                        match job {
                            // Contain a panicking job to that job: the
                            // worker survives, the queue stays drained,
                            // and the blocked `run` caller sees a
                            // PoolError (its result sender died in the
                            // unwind) instead of a hung daemon.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // queue closed: pool dropped
                        }
                    })
                    .expect("spawning a pool worker thread")
            })
            .collect();
        Self {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` and returns immediately. Jobs start in submission
    /// order (whenever a worker frees up).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Runs `job` on the pool and blocks until its result arrives.
    /// Queueing discipline is shared with [`Self::submit`]: the call
    /// waits behind earlier jobs when all workers are busy.
    ///
    /// # Errors
    ///
    /// [`PoolError`] when the job died without producing a result —
    /// in practice, when the closure panicked on the worker.
    pub fn run<R, F>(&self, job: F) -> Result<R, PoolError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = channel();
        self.submit(move || {
            // A panic inside `job` unwinds past the send, dropping `tx`
            // and turning the caller's recv into a clean PoolError.
            let _ = tx.send(job());
        });
        rx.recv().map_err(|_| PoolError)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the queue, then wait for in-flight jobs to finish.
        drop(self.tx.take());
        for worker in self.workers.drain(..) {
            // A worker that panicked already delivered its PoolError to
            // the waiting caller; swallowing the join error keeps drop
            // from double-panicking during unwinding.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let results: Vec<usize> = (0..32).map(|i| pool.run(move || i * i).unwrap()).collect();
        assert_eq!(results, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_is_promoted_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }

    #[test]
    fn submitted_jobs_all_execute_before_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..64 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins: every queued job must have run by then.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn concurrent_blocking_runs_make_progress() {
        // Two jobs that each need the other's side effect would deadlock
        // on a 1-thread pool; on 2 threads they run concurrently. Keep
        // it simpler: N blocking runs from N caller threads against a
        // 2-worker pool all complete.
        let pool = Arc::new(WorkerPool::new(2));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.run(move || i + 1).unwrap())
            })
            .collect();
        let mut out: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        out.sort_unstable();
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn panicked_job_reports_pool_error_not_hang() {
        let pool = WorkerPool::new(2);
        let err = pool
            .run(|| -> usize { panic!("job exploded") })
            .unwrap_err();
        assert_eq!(err, PoolError);
        // The panic is contained to the job: both workers survive and
        // the pool keeps serving.
        assert_eq!(pool.run(|| 5).unwrap(), 5);
        assert_eq!(pool.run(|| 6).unwrap(), 6);
    }
}
