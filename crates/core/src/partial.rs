//! CSPM-Partial: Algorithm 3 + Algorithm 4 of the paper (§V).
//!
//! Instead of regenerating every candidate gain after each merge, the
//! optimized variant maintains `rdict` — for each leafset, the related
//! leafsets with which it currently forms a positive-gain pair — and
//! after a merge only (1) removes pairs of totally-merged leafsets,
//! (2) evaluates the new leafset against `rdict[x] ∩ rdict[y]`, and
//! (3) re-evaluates pairs involving partly-merged leafsets.
//!
//! Gains of untouched pairs can go stale when a shared coreset's total
//! frequency changes; popped pairs are therefore *revalidated* (their
//! gain recomputed once) before being applied, which preserves the
//! monotone-DL invariant at negligible cost.

use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use cspm_graph::AttributedGraph;

use crate::basic::CspmResult;
use crate::config::{CspmConfig, IterationStat, RunStats};
use crate::inverted::{InvertedDb, LeafsetId};
use crate::model::MinedModel;

/// Totally-ordered `f64` for use in ordered collections (gains are
/// always finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Candidate pair store with max-gain popping and per-leafset indexing.
#[derive(Debug, Default)]
struct Candidates {
    gains: HashMap<(LeafsetId, LeafsetId), f64>,
    order: BTreeSet<(OrdF64, LeafsetId, LeafsetId)>,
    /// `rdict`: leafset → related leafsets (partners in positive pairs).
    rdict: HashMap<LeafsetId, BTreeSet<LeafsetId>>,
}

impl Candidates {
    fn key(x: LeafsetId, y: LeafsetId) -> (LeafsetId, LeafsetId) {
        (x.min(y), x.max(y))
    }

    fn upsert(&mut self, x: LeafsetId, y: LeafsetId, gain: f64) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.insert(key, gain) {
            self.order.remove(&(OrdF64(old), key.0, key.1));
        }
        self.order.insert((OrdF64(gain), key.0, key.1));
        self.rdict.entry(x).or_default().insert(y);
        self.rdict.entry(y).or_default().insert(x);
    }

    fn remove_pair(&mut self, x: LeafsetId, y: LeafsetId) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.remove(&key) {
            self.order.remove(&(OrdF64(old), key.0, key.1));
        }
        if let Some(s) = self.rdict.get_mut(&x) {
            s.remove(&y);
            if s.is_empty() {
                self.rdict.remove(&x);
            }
        }
        if let Some(s) = self.rdict.get_mut(&y) {
            s.remove(&x);
            if s.is_empty() {
                self.rdict.remove(&y);
            }
        }
    }

    /// Removes every pair involving `l` (Algorithm 4, step 1).
    fn remove_leafset(&mut self, l: LeafsetId) {
        if let Some(partners) = self.rdict.remove(&l) {
            for p in partners {
                let key = Self::key(l, p);
                if let Some(old) = self.gains.remove(&key) {
                    self.order.remove(&(OrdF64(old), key.0, key.1));
                }
                if let Some(s) = self.rdict.get_mut(&p) {
                    s.remove(&l);
                    if s.is_empty() {
                        self.rdict.remove(&p);
                    }
                }
            }
        }
    }

    /// Pops the pair with the maximum stored gain.
    fn pop_max(&mut self) -> Option<(LeafsetId, LeafsetId, f64)> {
        let &(OrdF64(gain), x, y) = self.order.last()?;
        self.remove_pair(x, y);
        Some((x, y, gain))
    }

    fn related(&self, l: LeafsetId) -> BTreeSet<LeafsetId> {
        self.rdict.get(&l).cloned().unwrap_or_default()
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Runs CSPM-Partial on an attributed graph.
pub fn cspm_partial(g: &AttributedGraph, config: CspmConfig) -> CspmResult {
    let started = Instant::now();
    let mut db = InvertedDb::build(g, config.coreset_mode, config.gain_policy);
    let initial_dl = db.total_dl();
    let mut stats = RunStats::default();
    let mut merges = 0usize;

    // Algorithm 3, lines 5–6: initial candidates and rdict.
    let mut cands = Candidates::default();
    let init_pairs = db.sharing_pairs();
    stats.total_gain_evals += init_pairs.len() as u64;
    for (x, y) in init_pairs {
        let gain = db.pair_gain(x, y);
        if gain > 1e-9 {
            cands.upsert(x, y, gain);
        }
    }

    while !cands.is_empty() {
        if config.max_merges.is_some_and(|m| merges >= m) {
            break;
        }
        let Some((x, y, _stored)) = cands.pop_max() else { break };
        // Revalidate the popped gain (see module docs).
        let mut gain_evals = 1u64;
        let gain = db.pair_gain(x, y);
        if gain <= 1e-9 {
            continue;
        }
        // Capture relations before any removal (the new pattern inherits
        // candidate partners from both parents).
        let rel_x = cands.related(x);
        let rel_y = cands.related(y);
        let outcome = db.merge(x, y);
        debug_assert!(outcome.merged_any);
        merges += 1;
        let n = outcome.new_leafset;

        // (1) Remove totally merged leafsets from candidates and rdict.
        if outcome.x_removed {
            cands.remove_leafset(x);
        }
        if outcome.y_removed {
            cands.remove_leafset(y);
        }

        // (2) Add pairs with the new leafset: rel ∈ rdict[x] ∩ rdict[y].
        for &rel in rel_x.intersection(&rel_y) {
            if rel == n || !db.is_live(rel) || !db.is_live(n) {
                continue;
            }
            gain_evals += 1;
            let gain = db.pair_gain(rel, n);
            if gain > 1e-9 {
                cands.upsert(rel, n, gain);
            }
        }

        // (3) Update influenced pairs: partners of partly merged parents
        // (frequencies only ever shrink, so gains may flip negative).
        for (parent, removed) in [(x, outcome.x_removed), (y, outcome.y_removed)] {
            if removed {
                continue;
            }
            for rel in cands.related(parent) {
                gain_evals += 1;
                let gain = db.pair_gain(parent, rel);
                if gain > 1e-9 {
                    cands.upsert(parent, rel, gain);
                } else {
                    cands.remove_pair(parent, rel);
                }
            }
        }

        stats.total_gain_evals += gain_evals;
        if config.collect_stats {
            let live = db.live_leafset_count() as u64;
            stats.iterations.push(IterationStat {
                gain_evals,
                possible_pairs: live * live.saturating_sub(1) / 2,
                accepted_gain: gain,
                dl_after: db.total_dl(),
                data_dl_after: db.data_cost(),
            });
        }
    }

    stats.elapsed_secs = started.elapsed().as_secs_f64();
    CspmResult {
        model: MinedModel::from_db(&db),
        initial_dl,
        final_dl: db.total_dl(),
        merges,
        stats,
        db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::cspm_basic;
    use crate::config::GainPolicy;
    use cspm_graph::fixtures::paper_example;
    use cspm_graph::GraphBuilder;

    #[test]
    fn partial_matches_basic_on_paper_example() {
        let (g, _) = paper_example();
        let cfg = CspmConfig { gain_policy: GainPolicy::DataOnly, ..Default::default() };
        let b = cspm_basic(&g, cfg);
        let p = cspm_partial(&g, cfg);
        assert!((b.final_dl - p.final_dl).abs() < 1e-6,
            "basic {} vs partial {}", b.final_dl, p.final_dl);
        assert_eq!(b.merges, p.merges);
    }

    #[test]
    fn dl_is_monotone() {
        let (g, _) = paper_example();
        let res = cspm_partial(&g, CspmConfig::instrumented());
        let mut prev = res.initial_dl;
        for it in &res.stats.iterations {
            assert!(it.dl_after < prev + 1e-9);
            prev = it.dl_after;
        }
    }

    #[test]
    fn partial_spends_fewer_gain_evals_than_basic() {
        // Build a graph with several independent planted patterns so both
        // algorithms run multiple iterations.
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for i in 0..30 {
            let hub = b.add_vertex([format!("core{}", i % 3)]);
            let u = b.add_vertex([format!("p{}", i % 3)]);
            let w = b.add_vertex([format!("q{}", i % 3)]);
            b.add_edge(hub, u).unwrap();
            b.add_edge(hub, w).unwrap();
            if let Some(p) = prev {
                b.add_edge(p, hub).unwrap();
            }
            prev = Some(hub);
        }
        let g = b.build().unwrap();
        let basic = cspm_basic(&g, CspmConfig::instrumented());
        let partial = cspm_partial(&g, CspmConfig::instrumented());
        assert!(basic.merges >= 2, "expected several merges, got {}", basic.merges);
        assert!(
            partial.stats.total_gain_evals < basic.stats.total_gain_evals,
            "partial {} evals vs basic {}",
            partial.stats.total_gain_evals,
            basic.stats.total_gain_evals
        );
        // Both reach equally good models on this clean instance.
        assert!((basic.final_dl - partial.final_dl).abs() / basic.final_dl < 0.05);
    }

    #[test]
    fn candidates_store_invariants() {
        let mut c = Candidates::default();
        c.upsert(1, 2, 3.0);
        c.upsert(2, 3, 5.0);
        c.upsert(1, 3, 4.0);
        assert_eq!(c.pop_max(), Some((2, 3, 5.0)));
        c.upsert(1, 2, 10.0); // update overwrites
        assert_eq!(c.pop_max(), Some((1, 2, 10.0)));
        c.remove_leafset(3);
        assert!(c.is_empty());
    }

    #[test]
    fn update_ratio_stays_below_one_after_warmup() {
        let (g, _) = paper_example();
        let res = cspm_partial(&g, CspmConfig::instrumented());
        for it in &res.stats.iterations {
            assert!(it.update_ratio() <= 1.0);
        }
    }
}
