//! CSPM-Partial: Algorithm 3 + Algorithm 4 of the paper (§V).
//!
//! A thin façade over the unified [`engine`](crate::engine): Partial is
//! the engine's [`SchedulePolicy::Incremental`] policy — instead of
//! regenerating every candidate gain after each merge, the scheduler's
//! `rdict` index is used to (1) drop pairs of totally-merged leafsets,
//! (2) evaluate the new leafset against `rdict[x] ∩ rdict[y]`, and
//! (3) re-score pairs involving partly-merged leafsets. Popped pairs are
//! lazily revalidated before being applied, preserving the monotone-DL
//! invariant at negligible cost. Each merge's update set — rules (2)
//! and (3) are independent read-only scores — is evaluated across the
//! worker threads configured by
//! [`CspmConfig::threads`](crate::CspmConfig), with results applied in
//! sequential order so mining is bit-identical at any thread count.

use cspm_graph::AttributedGraph;

use crate::config::CspmConfig;
use crate::engine::{mine_with_policy, CspmResult, SchedulePolicy};

/// Runs CSPM-Partial on an attributed graph.
///
/// One-shot wrapper over a [`MiningSession`](crate::MiningSession)
/// with [`SchedulePolicy::Incremental`]; keep a session of your own
/// (via [`Miner`](crate::Miner)) when the graph evolves or you want
/// progress/cancellation hooks — see the [session docs](crate::session).
pub fn cspm_partial(g: &AttributedGraph, config: CspmConfig) -> CspmResult {
    mine_with_policy(g, SchedulePolicy::Incremental, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::cspm_basic;
    use crate::config::GainPolicy;
    use cspm_graph::fixtures::paper_example;
    use cspm_graph::GraphBuilder;

    #[test]
    fn partial_matches_basic_on_paper_example() {
        let (g, _) = paper_example();
        let cfg = CspmConfig {
            gain_policy: GainPolicy::DataOnly,
            ..Default::default()
        };
        let b = cspm_basic(&g, cfg);
        let p = cspm_partial(&g, cfg);
        assert!(
            (b.final_dl - p.final_dl).abs() < 1e-6,
            "basic {} vs partial {}",
            b.final_dl,
            p.final_dl
        );
        assert_eq!(b.merges, p.merges);
    }

    #[test]
    fn dl_is_monotone() {
        let (g, _) = paper_example();
        let res = cspm_partial(&g, CspmConfig::instrumented());
        let mut prev = res.initial_dl;
        for it in &res.stats.iterations {
            assert!(it.dl_after < prev + 1e-9);
            prev = it.dl_after;
        }
    }

    #[test]
    fn partial_spends_fewer_gain_evals_than_basic() {
        // Build a graph with several independent planted patterns so both
        // algorithms run multiple iterations.
        let mut b = GraphBuilder::new();
        let mut prev = None;
        for i in 0..30 {
            let hub = b.add_vertex([format!("core{}", i % 3)]);
            let u = b.add_vertex([format!("p{}", i % 3)]);
            let w = b.add_vertex([format!("q{}", i % 3)]);
            b.add_edge(hub, u).unwrap();
            b.add_edge(hub, w).unwrap();
            if let Some(p) = prev {
                b.add_edge(p, hub).unwrap();
            }
            prev = Some(hub);
        }
        let g = b.build().unwrap();
        let basic = cspm_basic(&g, CspmConfig::instrumented());
        let partial = cspm_partial(&g, CspmConfig::instrumented());
        assert!(
            basic.merges >= 2,
            "expected several merges, got {}",
            basic.merges
        );
        assert!(
            partial.stats.total_gain_evals < basic.stats.total_gain_evals,
            "partial {} evals vs basic {}",
            partial.stats.total_gain_evals,
            basic.stats.total_gain_evals
        );
        // Both reach equally good models on this clean instance.
        assert!((basic.final_dl - partial.final_dl).abs() / basic.final_dl < 0.05);
    }

    #[test]
    fn update_ratio_stays_below_one_after_warmup() {
        let (g, _) = paper_example();
        let res = cspm_partial(&g, CspmConfig::instrumented());
        for it in &res.stats.iterations {
            assert!(it.update_ratio() <= 1.0);
        }
    }
}
