//! Named resident sessions with LRU eviction under a memory budget.
//!
//! A long-running daemon keeps one session per tenant resident so deltas
//! and re-mines stay warm, but "many tenants" and "bounded memory" pull
//! in opposite directions. [`SessionRegistry`] resolves that the way the
//! ROADMAP's storage-engine reference does: keep everything resident
//! until a budget says otherwise, then reclaim in two escalating stages —
//! first *compact* sessions whose posting arenas report fragmentation
//! above the configured threshold (cheap, nothing is lost), and only
//! then *evict* idle sessions in least-recently-used order (the eviction
//! callback gets a last look, e.g. to checkpoint a durable session so
//! re-open is warm).
//!
//! The registry is policy, not mechanism: it never blocks on a busy
//! session. Sessions are handed out as `Arc<Mutex<S>>`, a request holds
//! the inner lock for its whole operation, and budget enforcement uses
//! `try_lock` + `Arc::strong_count == 1` so a tenant that is mid-mine is
//! simply skipped this round and reconsidered the next.
//!
//! Byte accounting goes through [`ResidentFootprint`], an *estimate* of
//! resident size (posting arena + adjacency + label payloads — the terms
//! that actually dominate). The registry caches each session's last
//! observed estimate so `approx_bytes` stays callable while sessions are
//! locked by in-flight requests.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How much memory a resident session holds and what can be done about
/// it, as seen by [`SessionRegistry::enforce_budget`].
pub trait ResidentFootprint {
    /// Estimated resident bytes (heap payloads that scale with the
    /// graph; fixed-size headers are noise at eviction granularity).
    fn approx_bytes(&self) -> usize;

    /// Arena fragmentation signal in `[1.0, ∞)`; `1.0` = fully dense.
    /// See `PostingStore::fragmentation`.
    fn fragmentation(&self) -> f64;

    /// Reclaims slack in place (arena compaction). Must not change
    /// observable mining behaviour.
    fn compact(&mut self);
}

/// The name is already resident; returned by [`SessionRegistry::insert`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlreadyResident;

impl std::fmt::Display for AlreadyResident {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a session with this name is already resident")
    }
}

impl std::error::Error for AlreadyResident {}

/// What one [`SessionRegistry::enforce_budget`] pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PressureOutcome {
    /// Estimated resident bytes entering the pass.
    pub bytes_before: usize,
    /// Estimated resident bytes after compaction + eviction.
    pub bytes_after: usize,
    /// Sessions compacted in place (stage 1), in registry order.
    pub compacted: Vec<String>,
    /// Sessions evicted (stage 2), least-recently-used first.
    pub evicted: Vec<String>,
    /// Sessions that were over-budget candidates but busy (locked or
    /// checked out by a request) and therefore left alone this round.
    pub skipped_busy: usize,
}

impl PressureOutcome {
    /// Whether the pass got the estimate under the budget it was given.
    pub fn under_budget(&self, budget: usize) -> bool {
        self.bytes_after <= budget
    }
}

struct Entry<S> {
    session: Arc<Mutex<S>>,
    /// Monotonic recency stamp; smallest = least recently used.
    last_used: u64,
    /// Last observed [`ResidentFootprint::approx_bytes`]; serves the
    /// total while the session itself is locked by a request.
    cached_bytes: usize,
}

/// Name → resident session map with LRU recency and budgeted reclaim.
/// See the [module docs](self).
pub struct SessionRegistry<S> {
    entries: HashMap<String, Entry<S>>,
    clock: u64,
}

impl<S> Default for SessionRegistry<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> SessionRegistry<S> {
    pub fn new() -> Self {
        Self {
            entries: HashMap::new(),
            clock: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Resident session names, sorted (stable output for stats/tests).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        names
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Removes a session from residency and returns its handle (the
    /// caller may still hold clones; the registry just forgets it).
    pub fn remove(&mut self, name: &str) -> Option<Arc<Mutex<S>>> {
        self.entries.remove(name).map(|e| e.session)
    }
}

impl<S: ResidentFootprint> SessionRegistry<S> {
    /// Makes `session` resident under `name` and returns the shared
    /// handle. Fails if the name is taken — residency is the identity,
    /// silently replacing a live tenant would orphan its requests.
    pub fn insert(&mut self, name: &str, session: S) -> Result<Arc<Mutex<S>>, AlreadyResident> {
        if self.entries.contains_key(name) {
            return Err(AlreadyResident);
        }
        let stamp = self.tick();
        let cached_bytes = session.approx_bytes();
        let handle = Arc::new(Mutex::new(session));
        self.entries.insert(
            name.to_string(),
            Entry {
                session: Arc::clone(&handle),
                last_used: stamp,
                cached_bytes,
            },
        );
        Ok(handle)
    }

    /// Hands out the session for a request, bumping its recency. The
    /// caller locks the returned mutex for the duration of the work.
    pub fn checkout(&mut self, name: &str) -> Option<Arc<Mutex<S>>> {
        let stamp = self.tick();
        let entry = self.entries.get_mut(name)?;
        entry.last_used = stamp;
        Some(Arc::clone(&entry.session))
    }

    /// Like [`Self::checkout`] without the recency bump — for stats
    /// endpoints that should not keep an idle session hot.
    pub fn peek(&self, name: &str) -> Option<Arc<Mutex<S>>> {
        self.entries.get(name).map(|e| Arc::clone(&e.session))
    }

    /// Total estimated resident bytes, refreshing the per-session cache
    /// where the session lock is free (busy sessions keep their last
    /// observation — mining does not shrink a footprint anyway).
    pub fn approx_bytes(&mut self) -> usize {
        for entry in self.entries.values_mut() {
            if let Ok(s) = entry.session.try_lock() {
                entry.cached_bytes = s.approx_bytes();
            }
        }
        self.entries.values().map(|e| e.cached_bytes).sum()
    }

    /// Brings the estimated footprint under `budget` if it can:
    /// stage 1 compacts resident sessions whose fragmentation exceeds
    /// `compact_above`; stage 2 evicts idle sessions LRU-first until
    /// under budget. `on_evict` runs under the session lock before the
    /// entry is dropped (checkpoint-to-store lives there); returning
    /// `false` vetoes this eviction (e.g. the checkpoint failed and
    /// dropping the session would lose data).
    ///
    /// Busy sessions — lock held, or a request still holds the `Arc`
    /// from [`Self::checkout`] — are never touched, so a pass over a
    /// fully busy registry is a no-op that reports `skipped_busy`.
    pub fn enforce_budget(
        &mut self,
        budget: usize,
        compact_above: f64,
        mut on_evict: impl FnMut(&str, &mut S) -> bool,
    ) -> PressureOutcome {
        let mut out = PressureOutcome {
            bytes_before: self.approx_bytes(),
            ..PressureOutcome::default()
        };
        out.bytes_after = out.bytes_before;
        if out.bytes_before <= budget {
            return out;
        }

        // Stage 1: compaction — free wins first, nothing is lost.
        let mut names: Vec<String> = self.entries.keys().cloned().collect();
        names.sort();
        for name in &names {
            let entry = self.entries.get_mut(name).expect("name just listed");
            let Ok(mut s) = entry.session.try_lock() else {
                continue;
            };
            if s.fragmentation() > compact_above {
                s.compact();
                entry.cached_bytes = s.approx_bytes();
                out.compacted.push(name.clone());
            }
        }
        out.bytes_after = self.entries.values().map(|e| e.cached_bytes).sum();
        if out.bytes_after <= budget {
            return out;
        }

        // Stage 2: evict idle sessions, least recently used first.
        names.sort_by_key(|n| self.entries[n].last_used);
        for name in &names {
            if out.bytes_after <= budget {
                break;
            }
            let entry = self.entries.get_mut(name).expect("name just listed");
            // Only the registry may hold the handle: a request that
            // checked the session out but has not locked it yet must
            // not see its tenant vanish underneath it.
            if Arc::strong_count(&entry.session) != 1 {
                out.skipped_busy += 1;
                continue;
            }
            let evict = match entry.session.try_lock() {
                Ok(mut s) => on_evict(name, &mut s),
                Err(_) => {
                    out.skipped_busy += 1;
                    continue;
                }
            };
            if !evict {
                continue;
            }
            let freed = entry.cached_bytes;
            self.entries.remove(name);
            out.bytes_after = out.bytes_after.saturating_sub(freed);
            out.evicted.push(name.clone());
        }
        out
    }
}

impl<S> std::fmt::Debug for SessionRegistry<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionRegistry")
            .field("len", &self.entries.len())
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake session: `bytes` of payload, fixed fragmentation, and a
    /// compaction that halves the payload.
    struct Fake {
        bytes: usize,
        frag: f64,
        compactions: usize,
    }

    impl Fake {
        fn new(bytes: usize, frag: f64) -> Self {
            Self {
                bytes,
                frag,
                compactions: 0,
            }
        }
    }

    impl ResidentFootprint for Fake {
        fn approx_bytes(&self) -> usize {
            self.bytes
        }
        fn fragmentation(&self) -> f64 {
            self.frag
        }
        fn compact(&mut self) {
            self.bytes /= 2;
            self.frag = 1.0;
            self.compactions += 1;
        }
    }

    #[test]
    fn insert_checkout_remove_roundtrip() {
        let mut reg = SessionRegistry::new();
        assert!(reg.is_empty());
        reg.insert("a", Fake::new(100, 1.0)).unwrap();
        assert!(reg.insert("a", Fake::new(1, 1.0)).is_err());
        assert!(reg.contains("a"));
        assert_eq!(reg.names(), vec!["a".to_string()]);
        assert!(reg.checkout("a").is_some());
        assert!(reg.checkout("missing").is_none());
        assert!(reg.remove("a").is_some());
        assert!(reg.is_empty());
    }

    #[test]
    fn under_budget_pass_is_a_noop() {
        let mut reg = SessionRegistry::new();
        reg.insert("a", Fake::new(100, 9.0)).unwrap();
        let out = reg.enforce_budget(1000, 2.0, |_, _| true);
        assert_eq!(out.bytes_before, 100);
        assert_eq!(out.bytes_after, 100);
        assert!(out.compacted.is_empty() && out.evicted.is_empty());
        // Not even compaction runs while under budget — fragmentation
        // is only worth chasing under pressure.
        assert!(reg.contains("a"));
    }

    #[test]
    fn compaction_runs_before_eviction_and_can_satisfy_the_budget() {
        let mut reg = SessionRegistry::new();
        reg.insert("frag", Fake::new(600, 3.0)).unwrap();
        reg.insert("dense", Fake::new(100, 1.0)).unwrap();
        let out = reg.enforce_budget(500, 2.0, |_, _| panic!("must not evict"));
        assert_eq!(out.compacted, vec!["frag".to_string()]);
        assert_eq!(out.bytes_after, 400);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut reg = SessionRegistry::new();
        reg.insert("old", Fake::new(400, 1.0)).unwrap();
        reg.insert("mid", Fake::new(400, 1.0)).unwrap();
        reg.insert("hot", Fake::new(400, 1.0)).unwrap();
        drop(reg.checkout("old")); // bump: "mid" is now the LRU
        let mut seen = Vec::new();
        let out = reg.enforce_budget(900, 2.0, |name, _| {
            seen.push(name.to_string());
            true
        });
        assert_eq!(out.evicted, vec!["mid".to_string()]);
        assert_eq!(seen, out.evicted);
        assert_eq!(out.bytes_after, 800);
        assert!(reg.contains("old") && reg.contains("hot"));
    }

    #[test]
    fn busy_sessions_are_skipped_not_blocked_on() {
        let mut reg = SessionRegistry::new();
        reg.insert("busy", Fake::new(500, 1.0)).unwrap();
        reg.insert("idle", Fake::new(500, 1.0)).unwrap();
        // A request holds the handle (and the lock) mid-operation.
        let handle = reg.checkout("busy").unwrap();
        let _guard = handle.lock().unwrap();
        let out = reg.enforce_budget(400, 2.0, |_, _| true);
        assert_eq!(out.evicted, vec!["idle".to_string()]);
        assert_eq!(out.skipped_busy, 1);
        assert!(reg.contains("busy") && !reg.contains("idle"));
        // Still over budget, but nothing else was evictable.
        assert!(!out.under_budget(400));
    }

    #[test]
    fn checked_out_but_unlocked_sessions_are_not_evicted() {
        let mut reg = SessionRegistry::new();
        reg.insert("held", Fake::new(500, 1.0)).unwrap();
        // The request hasn't locked yet — strong_count alone protects it.
        let _handle = reg.checkout("held").unwrap();
        let out = reg.enforce_budget(0, 2.0, |_, _| true);
        assert!(out.evicted.is_empty());
        assert_eq!(out.skipped_busy, 1);
        assert!(reg.contains("held"));
    }

    #[test]
    fn eviction_veto_keeps_the_session_resident() {
        let mut reg = SessionRegistry::new();
        reg.insert("precious", Fake::new(500, 1.0)).unwrap();
        reg.insert("plain", Fake::new(500, 1.0)).unwrap();
        let out = reg.enforce_budget(0, 2.0, |name, _| name != "precious");
        assert_eq!(out.evicted, vec!["plain".to_string()]);
        assert!(reg.contains("precious"));
    }

    #[test]
    fn approx_bytes_refreshes_idle_and_keeps_cache_for_busy() {
        let mut reg = SessionRegistry::new();
        let handle = reg.insert("a", Fake::new(100, 1.0)).unwrap();
        handle.lock().unwrap().bytes = 900;
        assert_eq!(reg.approx_bytes(), 900);
        let guard = handle.lock().unwrap();
        // Locked: the stale cache serves the total instead of blocking.
        assert_eq!(reg.approx_bytes(), 900);
        drop(guard);
    }
}
