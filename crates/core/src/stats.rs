//! Model summaries for reporting (experiment harness, examples).

use crate::inverted::InvertedDb;
use crate::model::MinedModel;

/// A digest of a converged model, used by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSummary {
    /// Number of a-stars (rows) in the model.
    pub n_astars: usize,
    /// Number of coresets `|Sc^M|`.
    pub n_coresets: usize,
    /// Number of distinct live leafsets.
    pub n_leafsets: usize,
    /// Mean leafset size over rows.
    pub mean_leafset_size: f64,
    /// Largest leafset size.
    pub max_leafset_size: usize,
    /// Rows whose leafset has ≥ 2 values (merged patterns).
    pub merged_rows: usize,
    /// `L(I|M)` in bits.
    pub data_bits: f64,
    /// `L(M)` in bits.
    pub model_bits: f64,
    /// Conditional entropy `H(Y|X)` in bits.
    pub conditional_entropy: f64,
}

impl ModelSummary {
    /// Builds the digest from a converged database and its model.
    pub fn new(db: &InvertedDb, model: &MinedModel) -> Self {
        let sizes: Vec<usize> = model
            .astars()
            .iter()
            .map(|m| m.astar.leafset().len())
            .collect();
        let n = sizes.len().max(1);
        Self {
            n_astars: model.len(),
            n_coresets: db.coreset_count(),
            n_leafsets: db.live_leafset_count(),
            mean_leafset_size: sizes.iter().sum::<usize>() as f64 / n as f64,
            max_leafset_size: sizes.iter().copied().max().unwrap_or(0),
            merged_rows: sizes.iter().filter(|&&s| s >= 2).count(),
            data_bits: db.data_cost(),
            model_bits: db.model_cost(),
            conditional_entropy: db.conditional_entropy(),
        }
    }

    /// Total description length.
    pub fn total_bits(&self) -> f64 {
        self.data_bits + self.model_bits
    }
}

impl std::fmt::Display for ModelSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "a-stars: {} ({} merged), coresets: {}, leafsets: {}",
            self.n_astars, self.merged_rows, self.n_coresets, self.n_leafsets
        )?;
        writeln!(
            f,
            "leafset size: mean {:.2}, max {}",
            self.mean_leafset_size, self.max_leafset_size
        )?;
        write!(
            f,
            "L(I|M) = {:.1} bits, L(M) = {:.1} bits, H(Y|X) = {:.3} bits",
            self.data_bits, self.model_bits, self.conditional_entropy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cspm_partial, CspmConfig};
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn summary_of_paper_example() {
        let (g, _) = paper_example();
        let res = cspm_partial(&g, CspmConfig::default());
        let s = ModelSummary::new(&res.db, &res.model);
        assert_eq!(s.n_astars, res.model.len());
        assert_eq!(s.n_coresets, 3);
        assert!(s.merged_rows >= 1);
        assert!(s.max_leafset_size >= 2);
        assert!((s.total_bits() - res.final_dl).abs() < 1e-9);
        assert!(s.conditional_entropy >= 0.0);
        let text = s.to_string();
        assert!(text.contains("a-stars") && text.contains("bits"));
    }

    #[test]
    fn mean_size_of_unmerged_model_is_one() {
        let (g, _) = paper_example();
        let res = cspm_partial(
            &g,
            CspmConfig {
                max_merges: Some(0),
                ..Default::default()
            },
        );
        let s = ModelSummary::new(&res.db, &res.model);
        assert!((s.mean_leafset_size - 1.0).abs() < 1e-12);
        assert_eq!(s.merged_rows, 0);
    }
}
