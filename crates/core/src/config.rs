//! Configuration and run statistics for CSPM.

/// How merge gains are priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GainPolicy {
    /// Data gain (Eq. 9) **minus** the model-cost delta of materialising
    /// changed `CT_L` rows (leafset ST codes + coreset pointer codes).
    /// This is the paper's full accounting ("the cost increase of the new
    /// pattern's leafset in the code table") and the default.
    #[default]
    Total,
    /// Data gain only (Eq. 9). Exposed for the ablation study: it accepts
    /// more merges, growing the model for marginal data savings.
    DataOnly,
}

/// How coresets are formed (§IV-F, Step 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoresetMode {
    /// One coreset per attribute value; `CT_c` equals the standard code
    /// table. The paper's main experimental setting.
    #[default]
    SingleValue,
    /// Multi-value coresets mined by Krimp over the vertex→attribute
    /// transaction table (requires a minimum support for its candidate
    /// miner).
    Krimp {
        /// Absolute minimum support for Eclat candidates.
        min_support: u32,
    },
    /// Multi-value coresets mined by SLIM (parameter-free).
    Slim,
}

/// CSPM configuration. The defaults reproduce the paper's parameter-free
/// setting; nothing here tunes *what* is found, only instrumentation and
/// safety valves — thread count and the delegation threshold change how
/// fast the answer is computed, never which answer.
#[derive(Debug, Clone, Copy)]
pub struct CspmConfig {
    /// Gain accounting policy.
    pub gain_policy: GainPolicy,
    /// Coreset formation mode.
    pub coreset_mode: CoresetMode,
    /// Optional cap on accepted merges (safety valve for huge inputs;
    /// `None` = run to convergence as in the paper).
    pub max_merges: Option<usize>,
    /// Record per-iteration statistics (gain-update ratio, DL trace).
    pub collect_stats: bool,
    /// Worker threads for candidate gain scoring (`0` = one per
    /// available core, capped at [`CspmConfig::MAX_AUTO_THREADS`]).
    /// Scoring is deterministic at every thread count: results are
    /// bit-identical to the sequential path.
    pub threads: usize,
    /// [`SchedulePolicy::FullRegeneration`](crate::SchedulePolicy)
    /// delegates the whole run to the incremental policy when the
    /// initial candidate-pair count exceeds this threshold (full
    /// regeneration is O(pairs × merges) and becomes impractical above
    /// ~10⁴ pairs). `None` disables delegation and always honours the
    /// requested policy.
    pub full_regen_max_pairs: Option<usize>,
}

impl Default for CspmConfig {
    fn default() -> Self {
        Self {
            gain_policy: GainPolicy::default(),
            coreset_mode: CoresetMode::default(),
            max_merges: None,
            collect_stats: false,
            threads: 0,
            full_regen_max_pairs: Some(Self::DEFAULT_FULL_REGEN_MAX_PAIRS),
        }
    }
}

impl CspmConfig {
    /// Default delegation threshold for
    /// [`Self::full_regen_max_pairs`]: the scale at which full
    /// regeneration's O(pairs × merges) sweeps stop being practical.
    pub const DEFAULT_FULL_REGEN_MAX_PAIRS: usize = 10_000;

    /// Upper cap on auto-detected scoring threads (`threads == 0`).
    pub const MAX_AUTO_THREADS: usize = 8;

    /// Paper-default configuration with statistics collection enabled.
    pub fn instrumented() -> Self {
        Self {
            collect_stats: true,
            ..Self::default()
        }
    }

    /// This configuration with an explicit scoring thread count.
    pub fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }
}

/// One mining iteration's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationStat {
    /// Number of pair gains computed (added or updated) this iteration.
    pub gain_evals: u64,
    /// Number of possible pairs `C(n,2)` over live leafsets.
    pub possible_pairs: u64,
    /// Gain of the accepted merge.
    pub accepted_gain: f64,
    /// Total description length `L(M, I)` after the merge.
    pub dl_after: f64,
    /// Data cost `L(I|M)` (Eq. 8) after the merge. Monotone under
    /// [`GainPolicy::DataOnly`]; `dl_after` is monotone under
    /// [`GainPolicy::Total`].
    pub data_dl_after: f64,
}

impl IterationStat {
    /// Gain update ratio (Fig. 5): evaluations / possible pairs, in `[0,1]`.
    pub fn update_ratio(&self) -> f64 {
        if self.possible_pairs == 0 {
            0.0
        } else {
            (self.gain_evals as f64 / self.possible_pairs as f64).min(1.0)
        }
    }
}

/// Statistics for a whole run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-iteration records (empty unless `collect_stats`).
    pub iterations: Vec<IterationStat>,
    /// Total pair-gain evaluations across the run (always tracked).
    /// Counts *attempted* scores; evaluations answered by the
    /// Algorithm 2 upper bound without an exact computation are also
    /// tallied in [`Self::pruned_pairs`].
    pub total_gain_evals: u64,
    /// Candidate pairs dismissed by the Algorithm 2 pruning bound
    /// before an exact gain evaluation (incremental scoring only; the
    /// full-regeneration sweep prunes against its running best and is
    /// not tallied here).
    pub pruned_pairs: u64,
    /// Whether a FullRegeneration run delegated to the incremental
    /// policy because the initial candidate-pair count exceeded
    /// [`CspmConfig::full_regen_max_pairs`].
    pub delegated: bool,
    /// Whether the run was cancelled cooperatively by a
    /// [`ProgressObserver`](crate::ProgressObserver) returning
    /// `ControlFlow::Break`. A cancelled result is still a valid model
    /// — just with fewer merges applied.
    pub cancelled: bool,
    /// Wall-clock seconds spent mining (excluding graph construction).
    pub elapsed_secs: f64,
    /// Final posting-row representation mix (sparse vs bitmap rows) and
    /// flip counters, captured from the store when the run ends — the
    /// observability hook for the adaptive-layout density thresholds.
    pub posting: crate::positions::PostingReprStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = CspmConfig::default();
        assert_eq!(c.gain_policy, GainPolicy::Total);
        assert_eq!(c.coreset_mode, CoresetMode::SingleValue);
        assert!(c.max_merges.is_none());
        assert!(!c.collect_stats);
        assert_eq!(c.threads, 0, "auto thread detection by default");
        assert_eq!(
            c.full_regen_max_pairs,
            Some(CspmConfig::DEFAULT_FULL_REGEN_MAX_PAIRS)
        );
        assert!(CspmConfig::instrumented().collect_stats);
        assert_eq!(c.with_threads(4).threads, 4);
    }

    #[test]
    fn update_ratio_bounds() {
        let stat = |ge, pp| IterationStat {
            gain_evals: ge,
            possible_pairs: pp,
            accepted_gain: 1.0,
            dl_after: 0.0,
            data_dl_after: 0.0,
        };
        assert!((stat(3, 10).update_ratio() - 0.3).abs() < 1e-12);
        assert_eq!(stat(0, 0).update_ratio(), 0.0);
        assert_eq!(stat(99, 10).update_ratio(), 1.0);
    }
}
