//! Sorted position-set operations.
//!
//! Inverted-database rows store their occurrence positions as sorted
//! `Vec<VertexId>`; gains need intersection *counts*, merges need exact
//! intersections, differences, and unions.

use cspm_graph::VertexId;

/// `|a ∩ b|` for sorted slices.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `a ∩ b` for sorted slices.
pub fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Removes every element of sorted `b` from sorted `a`, in place.
pub fn difference_inplace(a: &mut Vec<VertexId>, b: &[VertexId]) {
    if b.is_empty() {
        return;
    }
    let mut j = 0;
    a.retain(|&x| {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        !(j < b.len() && b[j] == x)
    });
}

/// `a ∪ b` for sorted slices.
pub fn union(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_count_agree() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 9, 10];
        assert_eq!(intersect(&a, &b), vec![3, 5, 9]);
        assert_eq!(intersect_count(&a, &b), 3);
        assert_eq!(intersect_count(&a, &[]), 0);
    }

    #[test]
    fn difference_removes_common() {
        let mut a = vec![1, 2, 3, 4, 5];
        difference_inplace(&mut a, &[2, 4, 6]);
        assert_eq!(a, vec![1, 3, 5]);
        difference_inplace(&mut a, &[]);
        assert_eq!(a, vec![1, 3, 5]);
    }

    #[test]
    fn union_merges_without_duplicates() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[7]), vec![7]);
    }

    #[test]
    fn set_identities() {
        let a = vec![0, 2, 4, 6];
        let b = vec![1, 2, 3, 4];
        let i = intersect(&a, &b);
        let u = union(&a, &b);
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        assert_eq!(a.len() + b.len(), u.len() + i.len());
    }
}
