//! Sorted position-set operations and the flat posting-list store.
//!
//! Inverted-database rows store their occurrence positions as sorted
//! vertex lists; gains need intersection *counts*, merges need exact
//! intersections, differences, and unions.
//!
//! Two layers live here:
//!
//! * free functions over sorted slices (`intersect`, `union`, …) — the
//!   reference set algebra, also used directly by the gain formulas.
//!   `intersect` / `intersect_count` gallop (exponential probe + binary
//!   search) when one side is ≥ [`GALLOP_SKEW`]× longer than the other;
//! * [`PostingStore`] — an arena that packs every row's positions into
//!   one contiguous `Vec<VertexId>` and hands out `(offset, len)` spans
//!   ([`RowId`]), with in-place difference/union over spans and a
//!   free-list for recycled rows. This is the merge loop's backing
//!   store: rows shrink or die in place and only union rows ever move,
//!   so steady-state mining allocates nothing per merge;
//! * [`PostingView`] — a borrowed, read-only snapshot of the arena.
//!   Gain scoring only ever *reads* rows, so the engine's parallel
//!   scorer hands each worker thread a `PostingView` and all workers
//!   share the one arena without cloning a single row.
//!
//! # Adaptive row representation
//!
//! Each row is stored in one of two layouts, chosen per row by density:
//!
//! * **Sparse** — the classic sorted `u32` id slice;
//! * **Bitmap** — a chunked fixed-width bitmap: `u32` words over the
//!   same arena, allocated in blocks of [`BLOCK_WORDS`] words (64
//!   bytes), with a block-aligned `base` id so two bitmaps always
//!   word-align against each other.
//!
//! A row flips to bitmap when it is long (≥ [`BITMAP_MIN_LEN`]) *and*
//! dense (`len ≥ 4·words`, i.e. ≥ 1/8 of the covered id range); it
//! flips back to sparse only when it falls below `len < words` (1/32
//! density). The gap between the two thresholds is deliberate
//! hysteresis: merge-loop rows that hover near the boundary do not
//! thrash between layouts.
//!
//! Set operations dispatch on the pairing:
//!
//! | pairing         | count                         | materialise            |
//! |-----------------|-------------------------------|------------------------|
//! | sparse×sparse   | two-pointer, galloping on skew| two-pointer / gallop   |
//! | sparse×bitmap   | per-id word probes            | per-id word probes     |
//! | bitmap×bitmap   | branch-free `x & y` + popcount| word AND + bit extract |
//!
//! The representation is purely an in-memory concern: every public
//! reader hands back **sorted ids** (see [`PostingStore::positions`]),
//! the on-disk snapshot format is unchanged, and because every kernel
//! computes the exact same integer set algebra, mining is bit-identical
//! to the sparse-only store.

use std::borrow::Cow;

use cspm_graph::VertexId;

/// Length skew ratio at which slice intersection switches from the
/// two-pointer loop to galloping search in the longer side.
pub const GALLOP_SKEW: usize = 8;

/// Words per bitmap allocation block: 16 × `u32` = 64 bytes = 512 ids.
pub const BLOCK_WORDS: usize = 16;

/// Ids covered per block (`BLOCK_WORDS · 32`). Bitmap `base` ids are
/// multiples of this, so any two bitmaps are word-aligned to each other.
const BLOCK_BITS: u32 = (BLOCK_WORDS as u32) * 32;

/// Minimum row length before a bitmap is even considered: short rows
/// are cheap in any layout and the sparse kernels are cache-friendlier.
pub const BITMAP_MIN_LEN: usize = 128;

/// First index `i ≥ lo` with `s[i] ≥ target`, by exponential probe then
/// binary search — O(log distance) instead of O(distance).
fn gallop_to(s: &[VertexId], target: VertexId, lo: usize) -> usize {
    let mut prev = lo;
    let mut cur = lo;
    let mut step = 1;
    while cur < s.len() && s[cur] < target {
        prev = cur + 1;
        cur += step;
        step <<= 1;
    }
    let hi = cur.min(s.len());
    prev + s[prev..hi].partition_point(|&x| x < target)
}

fn gallop_intersect_count(small: &[VertexId], large: &[VertexId]) -> usize {
    let mut n = 0;
    let mut lo = 0;
    for &v in small {
        lo = gallop_to(large, v, lo);
        if lo == large.len() {
            break;
        }
        if large[lo] == v {
            n += 1;
            lo += 1;
        }
    }
    n
}

fn gallop_intersect_into(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>) {
    let mut lo = 0;
    for &v in small {
        lo = gallop_to(large, v, lo);
        if lo == large.len() {
            break;
        }
        if large[lo] == v {
            out.push(v);
            lo += 1;
        }
    }
}

/// `|a ∩ b|` for sorted slices. Gallops through the longer side when
/// lengths are skewed ≥ [`GALLOP_SKEW`]×.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    if a.len() * GALLOP_SKEW <= b.len() {
        return gallop_intersect_count(a, b);
    }
    if b.len() * GALLOP_SKEW <= a.len() {
        return gallop_intersect_count(b, a);
    }
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `a ∩ b` for sorted slices. Gallops through the longer side when
/// lengths are skewed ≥ [`GALLOP_SKEW`]×.
pub fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    if a.len() * GALLOP_SKEW <= b.len() {
        gallop_intersect_into(a, b, &mut out);
        return out;
    }
    if b.len() * GALLOP_SKEW <= a.len() {
        gallop_intersect_into(b, a, &mut out);
        return out;
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Removes every element of sorted `b` from sorted `a`, in place.
pub fn difference_inplace(a: &mut Vec<VertexId>, b: &[VertexId]) {
    if b.is_empty() {
        return;
    }
    let mut j = 0;
    a.retain(|&x| {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        !(j < b.len() && b[j] == x)
    });
}

/// `a ∪ b` for sorted slices.
pub fn union(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

// ---------------------------------------------------------------------
// Bitmap kernels. `base` is always a multiple of BLOCK_BITS, so any two
// bitmaps have word-aligned offsets against each other and the mixed
// kernels below never shift across word boundaries.
// ---------------------------------------------------------------------

/// Block-aligned `(base, words)` shape covering `[min, max]`, with
/// `words` rounded up to a whole number of blocks. All arithmetic is
/// u64 so a range ending near `u32::MAX` cannot overflow.
fn bitmap_shape(min: VertexId, max: VertexId) -> (VertexId, usize) {
    debug_assert!(min <= max);
    let base = min & !(BLOCK_BITS - 1);
    let span = max as u64 - base as u64 + 1;
    let words = span.div_ceil(32) as usize;
    (base, words.next_multiple_of(BLOCK_WORDS))
}

/// Bitmap flip-in predicate: long enough and ≥ 1/8 dense over its
/// covered range. The flip-*out* threshold is `len < words` (1/32);
/// the gap is the hysteresis band.
fn wants_bitmap(len: usize, words: usize) -> bool {
    len >= BITMAP_MIN_LEN && len >= 4 * words
}

#[inline]
fn bitmap_contains(base: VertexId, bits: &[VertexId], v: VertexId) -> bool {
    if v < base {
        return false;
    }
    let d = v - base;
    let w = (d / 32) as usize;
    w < bits.len() && (bits[w] >> (d & 31)) & 1 == 1
}

/// `|ids ∩ bitmap|` via per-id word probes; the membership test is a
/// shift-and-mask folded straight into the accumulator (no taken branch
/// on the hit path).
fn sparse_bitmap_count(ids: &[VertexId], base: VertexId, bits: &[VertexId]) -> usize {
    let mut n = 0usize;
    for &v in ids {
        n += bitmap_contains(base, bits, v) as usize;
    }
    n
}

fn sparse_bitmap_into(
    ids: &[VertexId],
    base: VertexId,
    bits: &[VertexId],
    out: &mut Vec<VertexId>,
) {
    for &v in ids {
        if bitmap_contains(base, bits, v) {
            out.push(v);
        }
    }
}

/// Word ranges of two bitmaps restricted to their overlap: returns
/// `(a_skip, b_skip, len, lo_base)` or `None` when the ranges are
/// disjoint.
fn bitmap_overlap(
    abase: VertexId,
    awords: usize,
    bbase: VertexId,
    bwords: usize,
) -> Option<(usize, usize, usize, VertexId)> {
    let lo_base = abase.max(bbase);
    let a_skip = ((lo_base - abase) / 32) as usize;
    let b_skip = ((lo_base - bbase) / 32) as usize;
    if a_skip >= awords || b_skip >= bwords {
        return None;
    }
    Some((
        a_skip,
        b_skip,
        (awords - a_skip).min(bwords - b_skip),
        lo_base,
    ))
}

/// `|a ∩ b|` for two bitmaps: branch-free word loop, one AND + popcount
/// per word pair.
fn bitmap_bitmap_count(
    abase: VertexId,
    abits: &[VertexId],
    bbase: VertexId,
    bbits: &[VertexId],
) -> usize {
    match bitmap_overlap(abase, abits.len(), bbase, bbits.len()) {
        None => 0,
        Some((a_skip, b_skip, len, _)) => abits[a_skip..a_skip + len]
            .iter()
            .zip(&bbits[b_skip..b_skip + len])
            .map(|(&x, &y)| (x & y).count_ones() as usize)
            .sum(),
    }
}

/// `a ∩ b` for two bitmaps, emitted as sorted ids: word AND, then set
/// bits extracted with `trailing_zeros` / clear-lowest.
fn bitmap_bitmap_into(
    abase: VertexId,
    abits: &[VertexId],
    bbase: VertexId,
    bbits: &[VertexId],
    out: &mut Vec<VertexId>,
) {
    let Some((a_skip, b_skip, len, lo_base)) =
        bitmap_overlap(abase, abits.len(), bbase, bbits.len())
    else {
        return;
    };
    for k in 0..len {
        let mut m = abits[a_skip + k] & bbits[b_skip + k];
        if m == 0 {
            continue;
        }
        // A set bit exists, so word_base + 31 ≤ u32::MAX and the cast
        // cannot truncate.
        let word_base = (lo_base as u64 + k as u64 * 32) as u32;
        while m != 0 {
            out.push(word_base + m.trailing_zeros());
            m &= m - 1;
        }
    }
}

/// Decodes a bitmap back to sorted ids.
fn decode_bitmap(base: VertexId, bits: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    for (w, &word) in bits.iter().enumerate() {
        let mut m = word;
        if m == 0 {
            continue;
        }
        let word_base = (base as u64 + w as u64 * 32) as u32;
        while m != 0 {
            out.push(word_base + m.trailing_zeros());
            m &= m - 1;
        }
    }
    out
}

/// A row's in-memory layout, borrowed from the arena: the single
/// dispatch point for every kernel pairing.
#[derive(Debug, Clone, Copy)]
enum RowKind<'a> {
    Sparse(&'a [VertexId]),
    Bitmap {
        base: VertexId,
        bits: &'a [VertexId],
    },
}

fn kind_intersect_count(a: RowKind<'_>, b: RowKind<'_>) -> usize {
    match (a, b) {
        (RowKind::Sparse(x), RowKind::Sparse(y)) => intersect_count(x, y),
        (RowKind::Sparse(ids), RowKind::Bitmap { base, bits })
        | (RowKind::Bitmap { base, bits }, RowKind::Sparse(ids)) => {
            sparse_bitmap_count(ids, base, bits)
        }
        (RowKind::Bitmap { base: ab, bits: ax }, RowKind::Bitmap { base: bb, bits: bx }) => {
            bitmap_bitmap_count(ab, ax, bb, bx)
        }
    }
}

fn kind_intersect_into(a: RowKind<'_>, b: RowKind<'_>, out: &mut Vec<VertexId>) {
    match (a, b) {
        (RowKind::Sparse(x), RowKind::Sparse(y)) => {
            if x.len() * GALLOP_SKEW <= y.len() {
                gallop_intersect_into(x, y, out);
            } else if y.len() * GALLOP_SKEW <= x.len() {
                gallop_intersect_into(y, x, out);
            } else {
                let (mut i, mut j) = (0, 0);
                while i < x.len() && j < y.len() {
                    match x[i].cmp(&y[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(x[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        (RowKind::Sparse(ids), RowKind::Bitmap { base, bits })
        | (RowKind::Bitmap { base, bits }, RowKind::Sparse(ids)) => {
            sparse_bitmap_into(ids, base, bits, out)
        }
        (RowKind::Bitmap { base: ab, bits: ax }, RowKind::Bitmap { base: bb, bits: bx }) => {
            bitmap_bitmap_into(ab, ax, bb, bx, out)
        }
    }
}

/// Handle to one posting list (row) inside a [`PostingStore`].
///
/// Row ids are stable for the lifetime of the row: spans may move inside
/// the arena (union growth, representation flips), but the id does not
/// change until the row is [released](PostingStore::release).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(u32);

/// Per-row layout tag. For bitmap rows, `base` is the id of bit 0
/// (always a multiple of [`BLOCK_BITS`]) and `words` the number of
/// arena words in use (always a multiple of [`BLOCK_WORDS`],
/// `words ≤ cap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Repr {
    Sparse,
    Bitmap { base: VertexId, words: usize },
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: usize,
    /// Element count of the row — the number of ids — in **both**
    /// layouts, so `len(row)` never depends on the representation.
    len: usize,
    /// Span capacity in arena units: elements for sparse rows, words
    /// for bitmap rows.
    cap: usize,
    repr: Repr,
}

const EMPTY_SLOT: Slot = Slot {
    offset: 0,
    len: 0,
    cap: 0,
    repr: Repr::Sparse,
};

fn row_kind<'a>(data: &'a [VertexId], slots: &'a [Slot], row: RowId) -> RowKind<'a> {
    let s = &slots[row.0 as usize];
    match s.repr {
        Repr::Sparse => RowKind::Sparse(&data[s.offset..s.offset + s.len]),
        Repr::Bitmap { base, words } => RowKind::Bitmap {
            base,
            bits: &data[s.offset..s.offset + words],
        },
    }
}

/// Row-representation policy for a [`PostingStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PostingPolicy {
    /// Flip dense rows to bitmaps (the production default).
    #[default]
    Adaptive,
    /// Keep every row a sorted id slice — the reference layout used by
    /// the equivalence tests and the `sparse` bench backend.
    SparseOnly,
}

/// Live representation mix and flip counters of a [`PostingStore`],
/// surfaced through `RunStats` and `cspm stats --json` so the density
/// thresholds are observable on real datasets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PostingReprStats {
    /// Live rows currently stored as sorted id slices.
    pub sparse_rows: usize,
    /// Live rows currently stored as bitmaps.
    pub bitmap_rows: usize,
    /// Sparse→bitmap transitions of an existing row (union growth);
    /// rows *inserted* directly as bitmaps are not flips.
    pub flips_to_bitmap: u64,
    /// Bitmap→sparse transitions (hysteresis shrink or a union whose
    /// widened range dilutes the row below the keep threshold).
    pub flips_to_sparse: u64,
}

/// A read-only view of a [`PostingStore`].
///
/// Borrowing the arena and the slot table (and nothing mutable), a view
/// is `Copy + Send + Sync`, so scoped worker threads evaluating merge
/// gains can all read the same arena concurrently — no row is cloned,
/// no lock is taken. The borrow checker guarantees the store cannot be
/// mutated while any view is alive, which is exactly the invariant the
/// parallel scorer needs: gains are only ever computed between merges,
/// when the database is immutable.
///
/// All set operations dispatch on each row's layout, identically to the
/// owning store's kernels.
#[derive(Debug, Clone, Copy)]
pub struct PostingView<'a> {
    data: &'a [VertexId],
    slots: &'a [Slot],
}

impl<'a> PostingView<'a> {
    /// The row's positions as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the row is bitmap-encoded — use [`Self::positions`]
    /// when the caller cannot guarantee a sparse row.
    pub fn get(&self, row: RowId) -> &'a [VertexId] {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => &self.data[s.offset..s.offset + s.len],
            Repr::Bitmap { .. } => panic!("PostingView::get on a bitmap row; use positions()"),
        }
    }

    /// The row's positions as sorted ids, borrowed when sparse and
    /// decoded when bitmap.
    pub fn positions(&self, row: RowId) -> Cow<'a, [VertexId]> {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => Cow::Borrowed(&self.data[s.offset..s.offset + s.len]),
            Repr::Bitmap { base, words } => {
                Cow::Owned(decode_bitmap(base, &self.data[s.offset..s.offset + words]))
            }
        }
    }

    /// The row's length (`fL`), without touching the arena.
    pub fn len(&self, row: RowId) -> usize {
        self.slots[row.0 as usize].len
    }

    /// Whether the row is empty.
    pub fn is_empty(&self, row: RowId) -> bool {
        self.len(row) == 0
    }

    /// `|row(a) ∩ row(b)|`.
    pub fn intersect_count(&self, a: RowId, b: RowId) -> usize {
        kind_intersect_count(
            row_kind(self.data, self.slots, a),
            row_kind(self.data, self.slots, b),
        )
    }

    /// `row(a) ∩ row(b)` as sorted ids.
    pub fn intersect(&self, a: RowId, b: RowId) -> Vec<VertexId> {
        let mut out = Vec::new();
        kind_intersect_into(
            row_kind(self.data, self.slots, a),
            row_kind(self.data, self.slots, b),
            &mut out,
        );
        out
    }

    /// `|row ∩ ids|` for an external sorted slice.
    pub fn intersect_count_slice(&self, row: RowId, ids: &[VertexId]) -> usize {
        match row_kind(self.data, self.slots, row) {
            RowKind::Sparse(x) => intersect_count(x, ids),
            RowKind::Bitmap { base, bits } => sparse_bitmap_count(ids, base, bits),
        }
    }
}

/// Arena-backed flat storage for sorted posting lists.
///
/// All rows share one contiguous `data` vector; each row is a
/// `(offset, len)` span with some slack capacity, laid out sparse or as
/// a bitmap (see the module docs). The merge loop's three mutations map
/// onto the arena as:
///
/// * **difference** (`§IV-E`, shrinking a parent row) — in place, the
///   span keeps its offset and loses length (bitmap rows clear bits,
///   and flip back to sparse below the hysteresis floor);
/// * **union** (growing the `x ∪ y` row) — in place while the result
///   fits the span's capacity, otherwise the row moves to a larger span
///   and the old one joins the free-list (dense results flip to
///   bitmap);
/// * **release** (a parent row emptying) — the span joins the free-list
///   for reuse by later unions.
///
/// Sparse spans and bitmap blocks use **separate free-lists**: block
/// spans are word-granular (offset and capacity always multiples of
/// [`BLOCK_WORDS`]), so recycling can never hand a bitmap allocation an
/// unaligned or undersized span.
#[derive(Debug, Clone)]
pub struct PostingStore {
    data: Vec<VertexId>,
    slots: Vec<Slot>,
    /// Recycled slot ids (their spans already returned to a free-list).
    free_slots: Vec<u32>,
    /// Recycled sparse `(offset, cap)` spans, segregated by
    /// power-of-two size class (`free_spans[k]` holds caps in
    /// `[2^k, 2^(k+1))`), so allocation never scans more than a bounded
    /// prefix of one class.
    free_spans: Vec<Vec<(usize, usize)>>,
    /// Recycled bitmap blocks, same power-of-two classing over their
    /// word capacities; every entry is block-aligned and a whole number
    /// of blocks.
    free_blocks: Vec<Vec<(usize, usize)>>,
    /// Σ element count over live rows (representation-independent).
    live_elems: usize,
    /// Σ arena units in use by live rows: sparse len + bitmap words
    /// (for fragmentation diagnostics).
    live_units: usize,
    live_rows: usize,
    bitmap_rows: usize,
    flips_to_bitmap: u64,
    flips_to_sparse: u64,
    policy: PostingPolicy,
    /// Scratch for relocating unions; kept to avoid re-allocation.
    scratch: Vec<VertexId>,
}

impl Default for PostingStore {
    fn default() -> Self {
        Self {
            data: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            free_spans: vec![Vec::new(); usize::BITS as usize],
            free_blocks: vec![Vec::new(); usize::BITS as usize],
            live_elems: 0,
            live_units: 0,
            live_rows: 0,
            bitmap_rows: 0,
            flips_to_bitmap: 0,
            flips_to_sparse: 0,
            policy: PostingPolicy::Adaptive,
            scratch: Vec::new(),
        }
    }
}

/// Size class of a span capacity: `floor(log2(cap))`.
fn size_class(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

impl PostingStore {
    /// An empty store with the default [`PostingPolicy::Adaptive`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with an explicit representation policy.
    pub fn with_policy(policy: PostingPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// A store pre-sized for `total_positions` arena entries.
    pub fn with_capacity(total_positions: usize) -> Self {
        Self {
            data: Vec::with_capacity(total_positions),
            ..Self::default()
        }
    }

    /// A pre-sized store with an explicit representation policy.
    pub fn with_capacity_and_policy(total_positions: usize, policy: PostingPolicy) -> Self {
        Self {
            data: Vec::with_capacity(total_positions),
            policy,
            ..Self::default()
        }
    }

    /// The store's representation policy.
    pub fn policy(&self) -> PostingPolicy {
        self.policy
    }

    fn adaptive(&self) -> bool {
        self.policy == PostingPolicy::Adaptive
    }

    fn kind(&self, row: RowId) -> RowKind<'_> {
        row_kind(&self.data, &self.slots, row)
    }

    /// Copies a sorted position list into the arena; sparse spans are
    /// exact (no slack — build-time rows only ever shrink), dense rows
    /// go straight to a bitmap under the adaptive policy.
    pub fn insert(&mut self, positions: &[VertexId]) -> RowId {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be sorted"
        );
        let slot = 'layout: {
            if self.adaptive() && positions.len() >= BITMAP_MIN_LEN {
                let (base, words) = bitmap_shape(positions[0], *positions.last().unwrap());
                if wants_bitmap(positions.len(), words) {
                    let offset = self.alloc_blocks(words);
                    self.data[offset..offset + words].fill(0);
                    for &v in positions {
                        let d = v - base;
                        self.data[offset + (d / 32) as usize] |= 1 << (d & 31);
                    }
                    self.bitmap_rows += 1;
                    self.live_units += words;
                    break 'layout Slot {
                        offset,
                        len: positions.len(),
                        cap: words,
                        repr: Repr::Bitmap { base, words },
                    };
                }
            }
            let offset = self.alloc_span(positions.len());
            self.data[offset..offset + positions.len()].copy_from_slice(positions);
            self.live_units += positions.len();
            Slot {
                offset,
                len: positions.len(),
                cap: positions.len(),
                repr: Repr::Sparse,
            }
        };
        self.live_elems += positions.len();
        self.live_rows += 1;
        match self.free_slots.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                RowId(id)
            }
            None => {
                self.slots.push(slot);
                RowId(self.slots.len() as u32 - 1)
            }
        }
    }

    /// A read-only view sharing this store's arena; see [`PostingView`].
    pub fn view(&self) -> PostingView<'_> {
        PostingView {
            data: &self.data,
            slots: &self.slots,
        }
    }

    /// The row's positions as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the row is bitmap-encoded — use [`Self::positions`]
    /// when the caller cannot guarantee a sparse row.
    pub fn get(&self, row: RowId) -> &[VertexId] {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => &self.data[s.offset..s.offset + s.len],
            Repr::Bitmap { .. } => panic!("PostingStore::get on a bitmap row; use positions()"),
        }
    }

    /// The row's positions as sorted ids, borrowed when sparse and
    /// decoded when bitmap. On-disk snapshots and every other external
    /// consumer go through here, so rows serialise canonically
    /// regardless of in-memory layout.
    pub fn positions(&self, row: RowId) -> Cow<'_, [VertexId]> {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => Cow::Borrowed(&self.data[s.offset..s.offset + s.len]),
            Repr::Bitmap { base, words } => {
                Cow::Owned(decode_bitmap(base, &self.data[s.offset..s.offset + words]))
            }
        }
    }

    /// The row's length.
    pub fn len(&self, row: RowId) -> usize {
        self.slots[row.0 as usize].len
    }

    /// Returns the row's span to its free-list.
    pub fn release(&mut self, row: RowId) {
        let s = self.slots[row.0 as usize];
        self.live_elems -= s.len;
        match s.repr {
            Repr::Sparse => {
                self.live_units -= s.len;
                self.free_span(s.offset, s.cap);
            }
            Repr::Bitmap { words, .. } => {
                self.live_units -= words;
                self.bitmap_rows -= 1;
                self.free_block(s.offset, s.cap);
            }
        }
        self.live_rows -= 1;
        self.slots[row.0 as usize] = EMPTY_SLOT;
        self.free_slots.push(row.0);
    }

    /// `|row(a) ∩ row(b)|`, kernel-dispatched on the two layouts.
    pub fn intersect_count(&self, a: RowId, b: RowId) -> usize {
        kind_intersect_count(self.kind(a), self.kind(b))
    }

    /// `row(a) ∩ row(b)` as sorted ids.
    pub fn intersect(&self, a: RowId, b: RowId) -> Vec<VertexId> {
        let mut out = Vec::new();
        kind_intersect_into(self.kind(a), self.kind(b), &mut out);
        out
    }

    /// Writes `row(a) ∩ row(b)` into `out` (cleared first).
    pub fn intersect_into(&self, a: RowId, b: RowId, out: &mut Vec<VertexId>) {
        out.clear();
        kind_intersect_into(self.kind(a), self.kind(b), out);
    }

    /// `|row ∩ ids|` for an external sorted slice.
    pub fn intersect_count_slice(&self, row: RowId, ids: &[VertexId]) -> usize {
        match self.kind(row) {
            RowKind::Sparse(x) => intersect_count(x, ids),
            RowKind::Bitmap { base, bits } => sparse_bitmap_count(ids, base, bits),
        }
    }

    /// The members of `candidates` **not** already present in the row,
    /// in `candidates` order (membership probes, layout-dispatched).
    pub fn filter_missing(&self, row: RowId, candidates: &[VertexId]) -> Vec<VertexId> {
        match self.kind(row) {
            RowKind::Sparse(ids) => candidates
                .iter()
                .copied()
                .filter(|v| ids.binary_search(v).is_err())
                .collect(),
            RowKind::Bitmap { base, bits } => candidates
                .iter()
                .copied()
                .filter(|&v| !bitmap_contains(base, bits, v))
                .collect(),
        }
    }

    /// Removes every element of sorted `other` from the row, in place
    /// (the span keeps its capacity). Returns the new length. A bitmap
    /// row that falls below the hysteresis floor (`len < words`) flips
    /// back to sparse.
    pub fn difference(&mut self, row: RowId, other: &[VertexId]) -> usize {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => {
                let span = &mut self.data[s.offset..s.offset + s.len];
                let mut write = 0;
                let mut j = 0;
                for read in 0..span.len() {
                    let x = span[read];
                    while j < other.len() && other[j] < x {
                        j += 1;
                    }
                    if j < other.len() && other[j] == x {
                        continue;
                    }
                    span[write] = x;
                    write += 1;
                }
                self.slots[row.0 as usize].len = write;
                self.live_elems -= s.len - write;
                self.live_units -= s.len - write;
                write
            }
            Repr::Bitmap { base, words } => {
                let mut removed = 0;
                for &v in other {
                    if v < base {
                        continue;
                    }
                    let d = v - base;
                    let w = (d / 32) as usize;
                    if w >= words {
                        continue;
                    }
                    let mask = 1u32 << (d & 31);
                    let word = &mut self.data[s.offset + w];
                    if *word & mask != 0 {
                        *word &= !mask;
                        removed += 1;
                    }
                }
                let new_len = s.len - removed;
                self.slots[row.0 as usize].len = new_len;
                self.live_elems -= removed;
                if new_len < words {
                    self.demote_to_sparse(row);
                    self.flips_to_sparse += 1;
                }
                new_len
            }
        }
    }

    /// Merges sorted `other` into the row (set union), in place when the
    /// result fits the span's capacity, relocating the row otherwise.
    /// Returns the new length.
    ///
    /// Sparse rows: one comparison pass (merge into the reusable scratch
    /// buffer) plus one `memcpy` back into the arena — the same
    /// comparison work as an allocating union, without the allocation;
    /// a result dense enough for the flip-in threshold flips to a bitmap
    /// instead of copying back. Bitmap rows: when `other` lies inside
    /// the covered range the union is pure in-place bit sets; otherwise
    /// the bitmap regrows (or, if the widened range dilutes it below
    /// the keep threshold, decodes back to sparse).
    pub fn union_in_place(&mut self, row: RowId, other: &[VertexId]) -> usize {
        let s = self.slots[row.0 as usize];
        match s.repr {
            Repr::Sparse => self.union_sparse(row, s, other),
            Repr::Bitmap { base, words } => self.union_bitmap(row, s, base, words, other),
        }
    }

    fn union_sparse(&mut self, row: RowId, s: Slot, other: &[VertexId]) -> usize {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.reserve(s.len + other.len());
        {
            let current = &self.data[s.offset..s.offset + s.len];
            let (mut i, mut j) = (0, 0);
            while i < current.len() && j < other.len() {
                match current[i].cmp(&other[j]) {
                    std::cmp::Ordering::Less => {
                        scratch.push(current[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        scratch.push(other[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        scratch.push(current[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            scratch.extend_from_slice(&current[i..]);
            scratch.extend_from_slice(&other[j..]);
        }
        let merged_len = scratch.len();
        if self.adaptive() && merged_len >= BITMAP_MIN_LEN {
            let (base, words) = bitmap_shape(scratch[0], *scratch.last().unwrap());
            if wants_bitmap(merged_len, words) {
                // Flip to bitmap: the merged ids live in scratch, so the
                // old span can be freed before the block is carved out.
                self.free_span(s.offset, s.cap);
                let offset = self.alloc_blocks(words);
                self.data[offset..offset + words].fill(0);
                for &v in &scratch {
                    let d = v - base;
                    self.data[offset + (d / 32) as usize] |= 1 << (d & 31);
                }
                self.slots[row.0 as usize] = Slot {
                    offset,
                    len: merged_len,
                    cap: words,
                    repr: Repr::Bitmap { base, words },
                };
                self.bitmap_rows += 1;
                self.flips_to_bitmap += 1;
                self.live_elems += merged_len - s.len;
                self.live_units = self.live_units - s.len + words;
                self.scratch = scratch;
                return merged_len;
            }
        }
        if merged_len <= s.cap {
            self.data[s.offset..s.offset + merged_len].copy_from_slice(&scratch);
            self.slots[row.0 as usize].len = merged_len;
        } else {
            // Relocate with slack: union rows tend to keep growing.
            self.free_span(s.offset, s.cap);
            let cap = merged_len + merged_len / 2;
            let offset = self.alloc_span(cap);
            self.data[offset..offset + merged_len].copy_from_slice(&scratch);
            self.slots[row.0 as usize] = Slot {
                offset,
                len: merged_len,
                cap,
                repr: Repr::Sparse,
            };
        }
        self.scratch = scratch;
        self.live_elems += merged_len - s.len;
        self.live_units += merged_len - s.len;
        merged_len
    }

    fn union_bitmap(
        &mut self,
        row: RowId,
        s: Slot,
        base: VertexId,
        words: usize,
        other: &[VertexId],
    ) -> usize {
        if other.is_empty() {
            return s.len;
        }
        let lo = other[0];
        let hi = *other.last().unwrap();
        let end = base as u64 + words as u64 * 32;
        if lo >= base && (hi as u64) < end {
            // Fast path: every new id already falls inside the covered
            // range — pure in-place bit sets.
            let mut added = 0;
            for &v in other {
                let d = v - base;
                let w = s.offset + (d / 32) as usize;
                let mask = 1u32 << (d & 31);
                added += (self.data[w] & mask == 0) as usize;
                self.data[w] |= mask;
            }
            self.slots[row.0 as usize].len = s.len + added;
            self.live_elems += added;
            return s.len + added;
        }
        // Regrow: widen the shape to the union of `other`'s range and
        // the row's *occupied* word range (tight, so a row that drifted
        // toward one end sheds its dead blocks on the way).
        let span = &self.data[s.offset..s.offset + words];
        let occupied = span.iter().position(|&w| w != 0).map(|fw| {
            let lw = span.iter().rposition(|&w| w != 0).unwrap();
            (fw, lw)
        });
        let (new_min, new_max) = match occupied {
            None => (lo, hi),
            Some((fw, lw)) => {
                let cur_min = (base as u64 + fw as u64 * 32) as u32;
                let cur_max = (base as u64 + lw as u64 * 32 + 31).min(u32::MAX as u64) as u32;
                (lo.min(cur_min), hi.max(cur_max))
            }
        };
        let (new_base, new_words) = bitmap_shape(new_min, new_max);
        let added = other
            .iter()
            .filter(|&&v| !bitmap_contains(base, span, v))
            .count();
        let new_len = s.len + added;
        if new_len >= new_words {
            // Stay bitmap.
            if new_base == base && new_words <= s.cap {
                // Extend (or shrink) within the existing block in place.
                if new_words > words {
                    self.data[s.offset + words..s.offset + new_words].fill(0);
                }
                for &v in other {
                    let d = v - new_base;
                    self.data[s.offset + (d / 32) as usize] |= 1 << (d & 31);
                }
                self.slots[row.0 as usize] = Slot {
                    offset: s.offset,
                    len: new_len,
                    cap: s.cap,
                    repr: Repr::Bitmap {
                        base: new_base,
                        words: new_words,
                    },
                };
            } else {
                // Relocate. Allocate BEFORE freeing the old block so the
                // allocator cannot hand back the span still being read.
                let new_off = self.alloc_blocks(new_words);
                self.data[new_off..new_off + new_words].fill(0);
                if let Some((fw, lw)) = occupied {
                    let delta = (base as i64 - new_base as i64) / 32;
                    let dst = (new_off as i64 + fw as i64 + delta) as usize;
                    self.data.copy_within(s.offset + fw..s.offset + lw + 1, dst);
                }
                for &v in other {
                    let d = v - new_base;
                    self.data[new_off + (d / 32) as usize] |= 1 << (d & 31);
                }
                self.free_block(s.offset, s.cap);
                self.slots[row.0 as usize] = Slot {
                    offset: new_off,
                    len: new_len,
                    cap: new_words,
                    repr: Repr::Bitmap {
                        base: new_base,
                        words: new_words,
                    },
                };
            }
            self.live_elems += added;
            self.live_units = self.live_units - words + new_words;
        } else {
            // The widened range dilutes the row below the keep
            // threshold: decode and merge back to a sparse span.
            let merged = union(&decode_bitmap(base, span), other);
            debug_assert_eq!(merged.len(), new_len);
            self.free_block(s.offset, s.cap);
            let offset = self.alloc_span(merged.len());
            self.data[offset..offset + merged.len()].copy_from_slice(&merged);
            self.slots[row.0 as usize] = Slot {
                offset,
                len: merged.len(),
                cap: merged.len(),
                repr: Repr::Sparse,
            };
            self.bitmap_rows -= 1;
            self.flips_to_sparse += 1;
            self.live_elems += added;
            self.live_units = self.live_units - words + merged.len();
        }
        new_len
    }

    /// Rewrites a bitmap row as an exact sparse span (hysteresis
    /// shrink). The decoded ids are owned before the block is freed, so
    /// the sparse allocation can never alias the span being read.
    fn demote_to_sparse(&mut self, row: RowId) {
        let s = self.slots[row.0 as usize];
        let Repr::Bitmap { base, words } = s.repr else {
            return;
        };
        let decoded = decode_bitmap(base, &self.data[s.offset..s.offset + words]);
        debug_assert_eq!(decoded.len(), s.len);
        self.free_block(s.offset, s.cap);
        let offset = self.alloc_span(decoded.len());
        self.data[offset..offset + decoded.len()].copy_from_slice(&decoded);
        self.slots[row.0 as usize] = Slot {
            offset,
            len: decoded.len(),
            cap: decoded.len(),
            repr: Repr::Sparse,
        };
        self.bitmap_rows -= 1;
        self.live_units = self.live_units - words + decoded.len();
    }

    /// Total arena length (live + slack + free), in arena units.
    pub fn arena_len(&self) -> usize {
        self.data.len()
    }

    /// Σ element count over live rows (layout-independent).
    pub fn live_len(&self) -> usize {
        self.live_elems
    }

    /// Estimated resident bytes: the arena payload plus slot metadata
    /// and free-list entries. Capacities, not lengths — a daemon's
    /// memory budget cares what the allocator holds, not what is live.
    pub fn approx_bytes(&self) -> usize {
        let spans: usize = self
            .free_spans
            .iter()
            .chain(self.free_blocks.iter())
            .map(|class| class.capacity() * std::mem::size_of::<(usize, usize)>())
            .sum();
        self.data.capacity() * std::mem::size_of::<VertexId>()
            + self.slots.capacity() * std::mem::size_of::<Slot>()
            + self.free_slots.capacity() * std::mem::size_of::<u32>()
            + self.scratch.capacity() * std::mem::size_of::<VertexId>()
            + spans
    }

    /// Σ arena units in use by live rows: sparse lengths plus bitmap
    /// words. This — not [`Self::live_len`] — is what fragmentation is
    /// measured against.
    pub fn live_units(&self) -> usize {
        self.live_units
    }

    /// Live representation mix and flip counters.
    pub fn repr_stats(&self) -> PostingReprStats {
        PostingReprStats {
            sparse_rows: self.live_rows - self.bitmap_rows,
            bitmap_rows: self.bitmap_rows,
            flips_to_bitmap: self.flips_to_bitmap,
            flips_to_sparse: self.flips_to_sparse,
        }
    }

    /// Fragmentation pressure: `arena_len / live_units` (≥ 1.0). A
    /// ratio of 1.0 means every arena unit belongs to a live row; a
    /// long shrink/grow session drifts upward as spans accumulate slack
    /// and free-list fragments. An empty store reports 1.0; an all-dead
    /// store with arena data still allocated reports `INFINITY` —
    /// every unit is reclaimable, so any pressure threshold fires.
    pub fn fragmentation(&self) -> f64 {
        if self.live_units == 0 {
            if self.data.is_empty() {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.data.len() as f64 / self.live_units as f64
        }
    }

    /// Compacting rebuild: repacks every live row into a fresh arena
    /// with exact spans (no slack), and empties both free-lists.
    /// Afterwards `arena_len() == live_units()` and
    /// [`Self::fragmentation`] is 1.0.
    ///
    /// Bitmap rows are packed first: every block is a whole multiple of
    /// [`BLOCK_WORDS`], so packing them head-to-head from offset 0
    /// preserves block alignment without padding; sparse rows then fill
    /// the tail with exact spans. Row ids and representations survive
    /// compaction — only `(offset, cap)` change, never a row's identity
    /// or contents — so handles held by the inverted database stay
    /// valid. Recycled slot ids remain on the slot free-list for reuse
    /// by later inserts.
    pub fn compact(&mut self) {
        let mut data = Vec::with_capacity(self.live_units);
        for slot in &mut self.slots {
            if let Repr::Bitmap { words, .. } = slot.repr {
                let offset = data.len();
                data.extend_from_slice(&self.data[slot.offset..slot.offset + words]);
                slot.offset = offset;
                slot.cap = words;
            }
        }
        for slot in &mut self.slots {
            if slot.repr == Repr::Sparse {
                let offset = data.len();
                data.extend_from_slice(&self.data[slot.offset..slot.offset + slot.len]);
                slot.offset = offset;
                slot.cap = slot.len;
            }
        }
        debug_assert_eq!(data.len(), self.live_units);
        self.data = data;
        for class in &mut self.free_spans {
            class.clear();
        }
        for class in &mut self.free_blocks {
            class.clear();
        }
    }

    fn free_span(&mut self, offset: usize, cap: usize) {
        if cap > 0 {
            self.free_spans[size_class(cap)].push((offset, cap));
        }
    }

    fn free_block(&mut self, offset: usize, cap: usize) {
        if cap > 0 {
            debug_assert!(
                offset.is_multiple_of(BLOCK_WORDS) && cap.is_multiple_of(BLOCK_WORDS),
                "bitmap blocks must stay block-aligned"
            );
            self.free_blocks[size_class(cap)].push((offset, cap));
        }
    }

    /// Bounded same-class scan before falling through to a strictly
    /// larger class (whose every span is guaranteed to fit).
    const SAME_CLASS_PROBES: usize = 8;

    /// Finds or creates a sparse span of at least `need` capacity,
    /// splitting the chosen span when the remainder is still useful.
    /// Amortised O(1): at most [`Self::SAME_CLASS_PROBES`] candidates
    /// of `need`'s own size class are inspected, then the first
    /// non-empty larger class is popped.
    fn alloc_span(&mut self, need: usize) -> usize {
        if need == 0 {
            return 0;
        }
        let k = size_class(need);
        let same = &mut self.free_spans[k];
        for i in (same.len().saturating_sub(Self::SAME_CLASS_PROBES)..same.len()).rev() {
            if same[i].1 >= need {
                let (offset, cap) = same.swap_remove(i);
                return self.split_span(offset, cap, need);
            }
        }
        for kk in k + 1..self.free_spans.len() {
            while let Some((offset, cap)) = self.free_spans[kk].pop() {
                // Clamp: a span must never be handed out shorter than
                // requested. Classes above `need`'s own guarantee a fit
                // by the size-class invariant, but a span that was ever
                // filed one class too high (its cap is < 2^kk) would
                // silently corrupt the row copied into it. Verify the
                // fit and re-file offenders into their true class —
                // strictly below `kk` since cap < need < 2^kk, so this
                // loop terminates.
                if cap >= need {
                    return self.split_span(offset, cap, need);
                }
                self.free_span(offset, cap);
            }
        }
        let offset = self.data.len();
        self.data.resize(offset + need, 0);
        offset
    }

    fn split_span(&mut self, offset: usize, cap: usize, need: usize) -> usize {
        debug_assert!(cap >= need);
        self.free_span(offset + need, cap - need);
        offset
    }

    /// Finds or creates a bitmap block span of exactly `need` words
    /// (`need` a whole number of blocks), from the block free-list or
    /// the arena tail. Blocks never come from `free_spans` and sparse
    /// spans never come from `free_blocks`: the lists are word- vs
    /// element-granular, which is what keeps a recycled bitmap span
    /// from ever being handed out undersized or unaligned.
    fn alloc_blocks(&mut self, need: usize) -> usize {
        debug_assert!(need > 0 && need.is_multiple_of(BLOCK_WORDS));
        let k = size_class(need);
        let same = &mut self.free_blocks[k];
        for i in (same.len().saturating_sub(Self::SAME_CLASS_PROBES)..same.len()).rev() {
            if same[i].1 >= need {
                let (offset, cap) = same.swap_remove(i);
                return self.split_block(offset, cap, need);
            }
        }
        for kk in k + 1..self.free_blocks.len() {
            while let Some((offset, cap)) = self.free_blocks[kk].pop() {
                // Same misfile clamp as `alloc_span`: never hand out a
                // block shorter than requested, re-file it instead.
                if cap >= need {
                    return self.split_block(offset, cap, need);
                }
                self.free_block(offset, cap);
            }
        }
        // Arena tail, padded up to block alignment; the pad is filed as
        // an ordinary sparse span so the units are not wasted.
        let mut offset = self.data.len();
        let pad = offset.next_multiple_of(BLOCK_WORDS) - offset;
        if pad > 0 {
            self.data.resize(offset + pad, 0);
            self.free_span(offset, pad);
            offset += pad;
        }
        self.data.resize(offset + need, 0);
        offset
    }

    fn split_block(&mut self, offset: usize, cap: usize, need: usize) -> usize {
        debug_assert!(cap >= need);
        self.free_block(offset + need, cap - need);
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_count_agree() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 9, 10];
        assert_eq!(intersect(&a, &b), vec![3, 5, 9]);
        assert_eq!(intersect_count(&a, &b), 3);
        assert_eq!(intersect_count(&a, &[]), 0);
    }

    /// The galloping path (≥8× length skew) must agree exactly with the
    /// two-pointer reference, including when the small side's elements
    /// fall before, between, and after the large side's range.
    #[test]
    fn galloping_matches_two_pointer_on_skewed_inputs() {
        let large: Vec<VertexId> = (0..400).map(|v| v * 3).collect();
        for small in [
            vec![],
            vec![0],
            vec![1],
            vec![1199],
            vec![1200],
            vec![5000],
            vec![0, 5, 6, 300, 301, 1197, 2000],
            (0..40).map(|v| v * 31).collect::<Vec<_>>(),
        ] {
            assert!(
                small.len() * GALLOP_SKEW <= large.len(),
                "fixture must skew"
            );
            // Reference: plain two-pointer, written out here so the test
            // does not depend on the production dispatch.
            let mut reference = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < small.len() && j < large.len() {
                match small[i].cmp(&large[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        reference.push(small[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            assert_eq!(intersect(&small, &large), reference, "{small:?}");
            assert_eq!(intersect(&large, &small), reference, "{small:?}");
            assert_eq!(intersect_count(&small, &large), reference.len());
            assert_eq!(intersect_count(&large, &small), reference.len());
        }
    }

    #[test]
    fn difference_removes_common() {
        let mut a = vec![1, 2, 3, 4, 5];
        difference_inplace(&mut a, &[2, 4, 6]);
        assert_eq!(a, vec![1, 3, 5]);
        difference_inplace(&mut a, &[]);
        assert_eq!(a, vec![1, 3, 5]);
    }

    #[test]
    fn union_merges_without_duplicates() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[7]), vec![7]);
    }

    #[test]
    fn set_identities() {
        let a = vec![0, 2, 4, 6];
        let b = vec![1, 2, 3, 4];
        let i = intersect(&a, &b);
        let u = union(&a, &b);
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        assert_eq!(a.len() + b.len(), u.len() + i.len());
    }

    #[test]
    fn store_roundtrips_rows() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 3, 5, 7]);
        let b = st.insert(&[2, 3, 5, 8]);
        assert_eq!(st.get(a), &[1, 3, 5, 7]);
        assert_eq!(st.get(b), &[2, 3, 5, 8]);
        assert_eq!(st.len(a), 4);
        assert_eq!(st.live_len(), 8);
        assert_eq!(st.intersect_count(a, b), 2);
        let mut out = Vec::new();
        st.intersect_into(a, b, &mut out);
        assert_eq!(out, vec![3, 5]);
    }

    #[test]
    fn store_difference_matches_reference() {
        let mut st = PostingStore::new();
        let r = st.insert(&[1, 2, 3, 4, 5, 9]);
        let removed = [2, 4, 6, 9];
        let mut reference = vec![1, 2, 3, 4, 5, 9];
        difference_inplace(&mut reference, &removed);
        let new_len = st.difference(r, &removed);
        assert_eq!(st.get(r), reference.as_slice());
        assert_eq!(new_len, reference.len());
        assert_eq!(st.live_len(), reference.len());
    }

    #[test]
    fn store_union_in_place_within_capacity() {
        let mut st = PostingStore::new();
        let r = st.insert(&[1, 4, 9, 12, 15, 20]);
        // Shrink first so the span has slack, then union back in.
        st.difference(r, &[4, 12, 20]);
        assert_eq!(st.get(r), &[1, 9, 15]);
        let arena_before = st.arena_len();
        let n = st.union_in_place(r, &[2, 9, 16]);
        assert_eq!(st.get(r), &[1, 2, 9, 15, 16]);
        assert_eq!(n, 5);
        // Fit inside the slack: the arena did not grow.
        assert_eq!(st.arena_len(), arena_before);
    }

    #[test]
    fn store_union_relocates_when_full() {
        let mut st = PostingStore::new();
        let r = st.insert(&[5, 10]);
        let n = st.union_in_place(r, &[1, 2, 3, 10, 11]);
        assert_eq!(n, 6);
        assert_eq!(st.get(r), &[1, 2, 3, 5, 10, 11]);
        assert_eq!(st.live_len(), 6);
    }

    #[test]
    fn view_matches_store_reads() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 3, 5, 7]);
        let b = st.insert(&[2, 3, 5, 8]);
        st.difference(a, &[5]);
        let v = st.view();
        assert_eq!(v.get(a), st.get(a));
        assert_eq!(v.get(b), st.get(b));
        assert_eq!(v.len(a), 3);
        assert!(!v.is_empty(a));
        assert_eq!(v.intersect_count(a, b), st.intersect_count(a, b));
        // Views are Copy and shareable across threads.
        let copy = v;
        std::thread::scope(|s| {
            s.spawn(move || assert_eq!(copy.get(b), &[2, 3, 5, 8]));
        });
    }

    /// Regression test for the segregated free-list clamp: a span filed
    /// one size class too high must never be handed out to a larger
    /// request (the copy into it would clobber a neighbouring row).
    /// The clamp re-files the offender instead of returning it.
    #[test]
    fn misfiled_free_span_is_never_handed_out_short() {
        let mut st = PostingStore::new();
        let guard = st.insert(&[100, 200, 300, 400, 500, 600, 700, 800]);
        // Plant a 3-cap span at the arena tail, misfiled into class 4
        // (caps 16..32) — exactly the corruption the clamp defends
        // against. A 20-element insert falls through to class 4 and,
        // unclamped, would copy 20 positions into the 3-slot span,
        // overwriting whatever follows it.
        let offset = st.data.len();
        st.data.resize(offset + 3, 0);
        st.free_spans[4].push((offset, 3));
        let big: Vec<VertexId> = (0..20).collect();
        let r = st.insert(&big);
        assert_eq!(st.get(r), big.as_slice(), "row must round-trip intact");
        assert_eq!(st.get(guard), &[100, 200, 300, 400, 500, 600, 700, 800]);
        // The misfiled span was re-filed into its true class (1) and is
        // still usable for a request it actually fits.
        let small = st.insert(&[7, 8]);
        assert_eq!(st.get(small), &[7, 8]);
        assert_eq!(st.get(r), big.as_slice());
    }

    /// Repeated difference/union shrink-grow traffic keeps every row
    /// intact while spans cycle through the free-list (the workload the
    /// ISSUE names: long dynamic-mining sessions recycling spans).
    #[test]
    fn shrink_grow_cycles_preserve_row_integrity() {
        let mut st = PostingStore::new();
        let universe: Vec<VertexId> = (0..64).collect();
        let rows: Vec<RowId> = (0..8)
            .map(|i| {
                let pos: Vec<VertexId> = (0..64).filter(|v| (v + i) % 3 != 0).collect();
                st.insert(&pos)
            })
            .collect();
        let mut expected: Vec<Vec<VertexId>> = rows.iter().map(|&r| st.get(r).to_vec()).collect();
        for round in 0..40 {
            for (i, &r) in rows.iter().enumerate() {
                let cut: Vec<VertexId> = universe
                    .iter()
                    .copied()
                    .filter(|v| (*v as usize + round + i).is_multiple_of(4))
                    .collect();
                st.difference(r, &cut);
                difference_inplace(&mut expected[i], &cut);
                let grow: Vec<VertexId> = universe
                    .iter()
                    .copied()
                    .filter(|v| (*v as usize + round) % 5 == i % 5)
                    .collect();
                st.union_in_place(r, &grow);
                expected[i] = union(&expected[i], &grow);
            }
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(st.get(r), expected[i].as_slice(), "row {i} round {round}");
            }
        }
        let live: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(st.live_len(), live);
    }

    /// White-box compaction test (the ROADMAP "PostingStore compaction"
    /// item): a shrink-heavy release/re-insert session fragments the
    /// arena; `compact()` must bring `arena_len` back to exactly
    /// `live_units` while every surviving row decodes identically and
    /// stays usable for further mutation.
    #[test]
    fn compact_repacks_arena_exactly() {
        let mut st = PostingStore::new();
        let universe: Vec<VertexId> = (0..96).collect();
        let rows: Vec<RowId> = (0..12)
            .map(|i| {
                let pos: Vec<VertexId> = universe.iter().copied().filter(|v| v % 12 >= i).collect();
                st.insert(&pos)
            })
            .collect();
        // Shrink-heavy traffic: carve most positions out of every row,
        // release a third of them, grow a few back — classic long-
        // session fragmentation (slack + free spans pile up).
        for (i, &r) in rows.iter().enumerate() {
            let cut: Vec<VertexId> = universe
                .iter()
                .copied()
                .filter(|&v| !(v as usize + i).is_multiple_of(3))
                .collect();
            st.difference(r, &cut);
            if i % 3 == 0 {
                st.release(r);
            } else if i % 3 == 1 {
                st.union_in_place(r, &[200, 201, 202, 203]);
            }
        }
        let survivors: Vec<RowId> = rows
            .iter()
            .enumerate()
            .filter(|&(i, _)| i % 3 != 0)
            .map(|(_, &r)| r)
            .collect();
        let expected: Vec<Vec<VertexId>> = survivors.iter().map(|&r| st.get(r).to_vec()).collect();

        assert!(
            st.arena_len() > st.live_units(),
            "fixture must actually fragment: arena {} vs live {}",
            st.arena_len(),
            st.live_units()
        );
        assert!(st.fragmentation() > 1.0);

        st.compact();
        assert_eq!(st.arena_len(), st.live_units(), "compaction must be exact");
        // Sparse-only fixture: in-use units and element counts coincide.
        assert_eq!(st.live_units(), st.live_len());
        assert_eq!(st.fragmentation(), 1.0);
        for (r, want) in survivors.iter().zip(&expected) {
            assert_eq!(st.get(*r), want.as_slice(), "row must decode identically");
        }
        // The store stays fully usable: grow a compacted row (forces a
        // relocation — spans now have zero slack) and insert a new one.
        let grown = union(&expected[0], &[500, 501]);
        st.union_in_place(survivors[0], &[500, 501]);
        assert_eq!(st.get(survivors[0]), grown.as_slice());
        let fresh = st.insert(&[1, 2, 3]);
        assert_eq!(st.get(fresh), &[1, 2, 3]);
        for (r, want) in survivors.iter().zip(&expected).skip(1) {
            assert_eq!(st.get(*r), want.as_slice());
        }
    }

    #[test]
    fn fragmentation_of_empty_and_all_dead_stores() {
        let mut st = PostingStore::new();
        assert_eq!(st.fragmentation(), 1.0);
        let r = st.insert(&[1, 2]);
        assert_eq!(st.fragmentation(), 1.0);
        st.release(r);
        // All-dead arena still holding data: maximal pressure, so any
        // compaction threshold fires and reclaims it.
        assert_eq!(st.fragmentation(), f64::INFINITY);
        st.compact();
        assert_eq!(st.arena_len(), 0);
        assert_eq!(st.fragmentation(), 1.0);
    }

    #[test]
    fn store_reuses_released_spans() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let len_after_a = st.arena_len();
        st.release(a);
        assert_eq!(st.live_len(), 0);
        let b = st.insert(&[10, 20, 30]);
        // The new row fits inside the recycled span: no arena growth.
        assert_eq!(st.arena_len(), len_after_a);
        assert_eq!(st.get(b), &[10, 20, 30]);
        // And the split remainder is still usable.
        let c = st.insert(&[7, 8, 9]);
        assert_eq!(st.arena_len(), len_after_a);
        assert_eq!(st.get(c), &[7, 8, 9]);
    }

    // -- adaptive representation ---------------------------------------

    fn is_bitmap(st: &PostingStore, r: RowId) -> bool {
        matches!(st.slots[r.0 as usize].repr, Repr::Bitmap { .. })
    }

    /// A dense row: every id in `[lo, lo + n)`.
    fn dense(lo: VertexId, n: usize) -> Vec<VertexId> {
        (lo..lo + n as VertexId).collect()
    }

    #[test]
    fn dense_insert_goes_to_bitmap_and_roundtrips() {
        let mut st = PostingStore::new();
        let ids = dense(70, 512);
        let r = st.insert(&ids);
        assert!(is_bitmap(&st, r), "512 ids over a 968-id range are dense");
        assert_eq!(st.len(r), 512);
        assert_eq!(st.positions(r).as_ref(), ids.as_slice());
        assert_eq!(st.view().positions(r).as_ref(), ids.as_slice());
        let stats = st.repr_stats();
        assert_eq!((stats.sparse_rows, stats.bitmap_rows), (0, 1));
        // Direct insert is a layout choice, not a flip.
        assert_eq!((stats.flips_to_bitmap, stats.flips_to_sparse), (0, 0));
        // Sparse-only policy keeps the identical row sparse.
        let mut sp = PostingStore::with_policy(PostingPolicy::SparseOnly);
        let rs = sp.insert(&ids);
        assert!(!is_bitmap(&sp, rs));
        assert_eq!(sp.get(rs), ids.as_slice());
    }

    #[test]
    #[should_panic(expected = "bitmap row")]
    fn get_panics_on_bitmap_rows() {
        let mut st = PostingStore::new();
        let r = st.insert(&dense(0, 512));
        let _ = st.get(r);
    }

    /// Every kernel pairing must compute the same sets as the reference
    /// slice algebra. Rows are forced into each layout via the policy
    /// (sparse) and a dense insert (bitmap), then cross-compared.
    #[test]
    fn kernel_pairings_agree_with_reference() {
        let fixtures: Vec<(Vec<VertexId>, Vec<VertexId>)> = vec![
            (dense(0, 512), dense(256, 512)),
            (dense(0, 512), vec![]),
            (dense(0, 512), vec![511]),
            (dense(0, 512), vec![512]),
            (dense(0, 512), (0..200).map(|v| v * 7).collect()),
            (dense(1000, 300), dense(5000, 300)), // disjoint ranges
            (
                (0..256).map(|v| v * 2).collect(),
                (0..256).map(|v| v * 3).collect(),
            ),
        ];
        for (a, b) in fixtures {
            let want = intersect(&a, &b);
            let mut adaptive = PostingStore::new();
            let mut sparse = PostingStore::with_policy(PostingPolicy::SparseOnly);
            // Four layout pairings: (a-layout, b-layout) drawn from the
            // adaptive store (bitmap when dense) and the sparse store.
            let (aa, ab) = (adaptive.insert(&a), adaptive.insert(&b));
            let (sa, sb) = (sparse.insert(&a), sparse.insert(&b));
            assert_eq!(adaptive.intersect(aa, ab), want, "adaptive×adaptive");
            assert_eq!(adaptive.intersect_count(aa, ab), want.len());
            assert_eq!(sparse.intersect(sa, sb), want, "sparse×sparse");
            assert_eq!(adaptive.intersect_count_slice(aa, &b), want.len());
            assert_eq!(adaptive.view().intersect(aa, ab), want);
            assert_eq!(adaptive.view().intersect_count_slice(aa, &b), want.len());
            let mut out = Vec::new();
            adaptive.intersect_into(aa, ab, &mut out);
            assert_eq!(out, want);
            // Mixed pairing inside one store: a bitmap row against a row
            // the adaptive policy kept sparse.
            let sparse_b: Vec<VertexId> = b.iter().copied().take(40).collect();
            let rb = adaptive.insert(&sparse_b);
            assert!(!is_bitmap(&adaptive, rb) || sparse_b.len() >= BITMAP_MIN_LEN);
            assert_eq!(
                adaptive.intersect(aa, rb),
                intersect(&a, &sparse_b),
                "mixed"
            );
            assert_eq!(
                adaptive.intersect_count(rb, aa),
                intersect_count(&a, &sparse_b)
            );
        }
    }

    /// Union growth across the density threshold flips a sparse row to
    /// bitmap; carving it back down crosses the hysteresis floor and
    /// flips it back — and both layouts keep matching the reference.
    #[test]
    fn union_flip_in_and_difference_flip_out() {
        let mut st = PostingStore::new();
        let seed: Vec<VertexId> = (0..60).map(|v| v * 8).collect(); // sparse: 60 ids over 473
        let r = st.insert(&seed);
        assert!(!is_bitmap(&st, r));
        let mut reference = seed.clone();
        let fill = dense(0, 480);
        st.union_in_place(r, &fill);
        reference = union(&reference, &fill);
        assert!(is_bitmap(&st, r), "480-dense row must flip to bitmap");
        assert_eq!(st.repr_stats().flips_to_bitmap, 1);
        assert_eq!(st.positions(r).as_ref(), reference.as_slice());
        assert_eq!(st.len(r), reference.len());

        // In-range union: pure bit sets, no reallocation.
        let arena_before = st.arena_len();
        let extra: Vec<VertexId> = (0..30).map(|v| v * 16 + 1).collect();
        st.union_in_place(r, &extra);
        reference = union(&reference, &extra);
        assert_eq!(st.arena_len(), arena_before);
        assert_eq!(st.positions(r).as_ref(), reference.as_slice());

        // Shrink below len < words: hysteresis flips the row to sparse.
        let cut: Vec<VertexId> = reference.iter().copied().skip(10).collect();
        st.difference(r, &cut);
        reference.truncate(10);
        assert!(!is_bitmap(&st, r), "10 ids cannot stay a 16-word bitmap");
        assert_eq!(st.repr_stats().flips_to_sparse, 1);
        assert_eq!(st.get(r), reference.as_slice());
        assert_eq!(st.live_len(), reference.len());
        assert_eq!(st.live_units(), reference.len());
    }

    /// A bitmap union whose ids fall outside the covered range regrows
    /// the block (staying a bitmap while dense), and a union that
    /// scatters the row over a huge range demotes it back to sparse.
    #[test]
    fn bitmap_union_regrows_or_demotes_out_of_range() {
        let mut st = PostingStore::new();
        let seed = dense(512, 512);
        let r = st.insert(&seed);
        assert!(is_bitmap(&st, r));
        let mut reference = seed;
        // Regrow: extend past both ends, still dense overall.
        let beyond: Vec<VertexId> = (0..512).collect();
        st.union_in_place(r, &beyond);
        reference = union(&reference, &beyond);
        assert!(is_bitmap(&st, r), "1024 ids over 1024 range stay bitmap");
        assert_eq!(st.positions(r).as_ref(), reference.as_slice());
        // Demote: one far-away id widens the range ~65k ids — the row is
        // no longer dense enough to keep the blocks.
        st.union_in_place(r, &[70_000]);
        reference.push(70_000);
        assert!(!is_bitmap(&st, r), "diluted row must decode to sparse");
        assert_eq!(st.repr_stats().flips_to_sparse, 1);
        assert_eq!(st.get(r), reference.as_slice());
        assert_eq!(st.live_len(), reference.len());
    }

    /// Regression test for word-granular free-list bucketing (the
    /// bitmap twin of `misfiled_free_span_is_never_handed_out_short`):
    /// a recycled block misfiled into too high a class must never be
    /// handed to a larger bitmap allocation, and genuine recycled
    /// blocks are reused block-aligned without growing the arena.
    #[test]
    fn recycled_bitmap_blocks_are_never_handed_out_undersized() {
        let mut st = PostingStore::new();
        let guard = st.insert(&dense(0, 512)); // 16-word bitmap
                                               // Plant a 16-word block misfiled into class 6 (caps 64..128): a
                                               // 64-word request falls through to it and, unclamped, would
                                               // write 64 words over the 16-word span and its neighbours.
        let offset = st.data.len().next_multiple_of(BLOCK_WORDS);
        st.data.resize(offset + BLOCK_WORDS, 0);
        st.free_blocks[6].push((offset, BLOCK_WORDS));
        let big = dense(0, 2048); // needs 64 words
        let r = st.insert(&big);
        assert!(is_bitmap(&st, r));
        assert_eq!(st.positions(r).as_ref(), big.as_slice());
        assert_eq!(st.positions(guard).as_ref(), dense(0, 512).as_slice());
        // The misfiled block was re-filed into its true class and still
        // serves a request it fits: release + same-shape insert reuses
        // it (16 words) with no arena growth.
        let arena = st.arena_len();
        let small = st.insert(&dense(1024, 384));
        assert_eq!(st.arena_len(), arena, "16-word block must be recycled");
        assert_eq!(st.positions(small).as_ref(), dense(1024, 384).as_slice());
        // Release/reinsert cycle: blocks go back to free_blocks, stay
        // aligned, and are handed out again at full size.
        st.release(r);
        let again = st.insert(&dense(8192, 2048));
        assert_eq!(st.arena_len(), arena, "64-word block must be recycled");
        assert_eq!(st.slots[again.0 as usize].offset % BLOCK_WORDS, 0);
        assert_eq!(st.positions(again).as_ref(), dense(8192, 2048).as_slice());
        assert_eq!(st.positions(guard).as_ref(), dense(0, 512).as_slice());
    }

    /// Removal-traffic extension of the churn tests above (the windowed
    /// streaming workload: rows shrink to empty and are released, new
    /// rows arrive, layouts flip): sustained difference/release/insert
    /// cycles must keep every surviving row exact, hand no recycled
    /// span or bitmap block out undersized, and stay compactable to
    /// exactly `live_units` with bounded fragmentation afterwards.
    #[test]
    fn sustained_churn_keeps_freelist_sound_and_compactable() {
        let mut st = PostingStore::new();
        let mut state = 0x5EEDu64;
        let mut xs = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Live rows alongside their reference contents.
        let mut live: Vec<(RowId, Vec<VertexId>)> = Vec::new();
        for round in 0..60 {
            // Expire back: shrink a third of the rows by a random cut;
            // rows that empty out are released (the apply_delta row-
            // removal path), exercising both span and block free-lists.
            live.retain_mut(|(r, want)| {
                if xs() % 3 != 0 {
                    return true;
                }
                let cut: Vec<VertexId> = want.iter().copied().filter(|_| xs() % 4 != 0).collect();
                let new_len = st.difference(*r, &cut);
                difference_inplace(want, &cut);
                assert_eq!(new_len, want.len());
                if want.is_empty() {
                    st.release(*r);
                    return false;
                }
                true
            });
            // Insert front: a mix of dense (bitmap) and sparse rows.
            for i in 0..2 {
                let lo = (xs() % 4096) as VertexId;
                let pos: Vec<VertexId> = if xs() % 2 == 0 {
                    dense(lo, 128 + (xs() % 512) as usize)
                } else {
                    (0..(1 + xs() % 40))
                        .map(|k| lo + (k * (1 + i)) as VertexId)
                        .collect()
                };
                let mut pos = pos;
                pos.sort_unstable();
                pos.dedup();
                let r = st.insert(&pos);
                live.push((r, pos));
            }
            // Grow a surviving row back (union after shrink re-uses the
            // slack or relocates through the free-list).
            if let Some((r, want)) = live.first_mut() {
                let grow: Vec<VertexId> = (0..8).map(|k| (xs() % 8192) as VertexId + k).collect();
                let mut grow = grow;
                grow.sort_unstable();
                grow.dedup();
                st.union_in_place(*r, &grow);
                *want = union(want, &grow);
            }
            // Every row decodes exactly — a misfiled free span or an
            // undersized recycled block would clobber a neighbour here.
            for (r, want) in &live {
                assert_eq!(
                    st.positions(*r).as_ref(),
                    want.as_slice(),
                    "row corrupted in round {round}"
                );
            }
        }
        let live_elems: usize = live.iter().map(|(_, w)| w.len()).sum();
        assert_eq!(st.live_len(), live_elems);
        assert!(st.fragmentation() >= 1.0);
        st.compact();
        assert_eq!(st.arena_len(), st.live_units(), "compaction must be exact");
        assert_eq!(st.fragmentation(), 1.0);
        for (r, want) in &live {
            assert_eq!(st.positions(*r).as_ref(), want.as_slice());
        }
        // Post-compaction the store still takes fresh churn.
        let fresh = st.insert(&dense(0, 300));
        assert_eq!(st.positions(fresh).as_ref(), dense(0, 300).as_slice());
    }

    /// Compaction with mixed layouts: bitmap blocks pack first (so they
    /// stay block-aligned), sparse rows follow exactly, both keep their
    /// representation and contents, and the arena ends at live_units.
    #[test]
    fn compact_preserves_mixed_layouts() {
        let mut st = PostingStore::new();
        let b1 = st.insert(&dense(0, 512));
        let s1 = st.insert(&[5, 100, 900]);
        let b2 = st.insert(&dense(4096, 600));
        let dead = st.insert(&dense(100_000, 256));
        st.release(dead);
        st.difference(b1, &dense(0, 100));
        assert!(st.arena_len() > st.live_units(), "fixture must fragment");
        let want_b1 = st.positions(b1).into_owned();
        let want_b2 = st.positions(b2).into_owned();
        st.compact();
        assert_eq!(st.arena_len(), st.live_units());
        assert_eq!(st.fragmentation(), 1.0);
        assert!(is_bitmap(&st, b1) && is_bitmap(&st, b2));
        assert!(!is_bitmap(&st, s1));
        assert_eq!(st.slots[b1.0 as usize].offset % BLOCK_WORDS, 0);
        assert_eq!(st.slots[b2.0 as usize].offset % BLOCK_WORDS, 0);
        assert_eq!(st.positions(b1).as_ref(), want_b1.as_slice());
        assert_eq!(st.positions(b2).as_ref(), want_b2.as_slice());
        assert_eq!(st.get(s1), &[5, 100, 900]);
        // Still fully usable post-compaction.
        st.union_in_place(b1, &[100_000]);
        let fresh = st.insert(&dense(0, 512));
        assert_eq!(st.positions(fresh).as_ref(), dense(0, 512).as_slice());
    }

    #[test]
    fn filter_missing_matches_reference_in_both_layouts() {
        let mut st = PostingStore::new();
        let bitmap = st.insert(&dense(64, 512));
        let sparse = st.insert(&[10, 20, 30]);
        let candidates = [0, 63, 64, 100, 575, 576, 20, 25];
        for row in [bitmap, sparse] {
            let have = st.positions(row).into_owned();
            let want: Vec<VertexId> = candidates
                .iter()
                .copied()
                .filter(|v| have.binary_search(v).is_err())
                .collect();
            assert_eq!(st.filter_missing(row, &candidates), want);
        }
    }
}
