//! Sorted position-set operations and the flat posting-list store.
//!
//! Inverted-database rows store their occurrence positions as sorted
//! vertex lists; gains need intersection *counts*, merges need exact
//! intersections, differences, and unions.
//!
//! Two layers live here:
//!
//! * free functions over sorted slices (`intersect`, `union`, …) — the
//!   reference set algebra, also used directly by the gain formulas;
//! * [`PostingStore`] — an arena that packs every row's positions into
//!   one contiguous `Vec<VertexId>` and hands out `(offset, len)` spans
//!   ([`RowId`]), with in-place difference/union over spans and a
//!   free-list for recycled rows. This is the merge loop's backing
//!   store: rows shrink or die in place and only union rows ever move,
//!   so steady-state mining allocates nothing per merge;
//! * [`PostingView`] — a borrowed, read-only snapshot of the arena.
//!   Gain scoring only ever *reads* rows, so the engine's parallel
//!   scorer hands each worker thread a `PostingView` and all workers
//!   share the one arena without cloning a single row.

use cspm_graph::VertexId;

/// `|a ∩ b|` for sorted slices.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `a ∩ b` for sorted slices.
pub fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Removes every element of sorted `b` from sorted `a`, in place.
pub fn difference_inplace(a: &mut Vec<VertexId>, b: &[VertexId]) {
    if b.is_empty() {
        return;
    }
    let mut j = 0;
    a.retain(|&x| {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        !(j < b.len() && b[j] == x)
    });
}

/// `a ∪ b` for sorted slices.
pub fn union(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Handle to one posting list (row) inside a [`PostingStore`].
///
/// Row ids are stable for the lifetime of the row: spans may move inside
/// the arena (union growth), but the id does not change until the row is
/// [released](PostingStore::release).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(u32);

#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: usize,
    len: usize,
    cap: usize,
}

/// A read-only view of a [`PostingStore`].
///
/// Borrowing the arena and the slot table (and nothing mutable), a view
/// is `Copy + Send + Sync`, so scoped worker threads evaluating merge
/// gains can all read the same arena concurrently — no row is cloned,
/// no lock is taken. The borrow checker guarantees the store cannot be
/// mutated while any view is alive, which is exactly the invariant the
/// parallel scorer needs: gains are only ever computed between merges,
/// when the database is immutable.
#[derive(Debug, Clone, Copy)]
pub struct PostingView<'a> {
    data: &'a [VertexId],
    slots: &'a [Slot],
}

impl<'a> PostingView<'a> {
    /// The row's positions.
    pub fn get(&self, row: RowId) -> &'a [VertexId] {
        let s = self.slots[row.0 as usize];
        &self.data[s.offset..s.offset + s.len]
    }

    /// The row's length (`fL`), without touching the arena.
    pub fn len(&self, row: RowId) -> usize {
        self.slots[row.0 as usize].len
    }

    /// Whether the row is empty.
    pub fn is_empty(&self, row: RowId) -> bool {
        self.len(row) == 0
    }

    /// `|row(a) ∩ row(b)|`.
    pub fn intersect_count(&self, a: RowId, b: RowId) -> usize {
        intersect_count(self.get(a), self.get(b))
    }
}

/// Arena-backed flat storage for sorted posting lists.
///
/// All rows share one contiguous `data` vector; each row is a
/// `(offset, len)` span with some slack capacity. The merge loop's three
/// mutations map onto the arena as:
///
/// * **difference** (`§IV-E`, shrinking a parent row) — in place, the
///   span keeps its offset and loses length;
/// * **union** (growing the `x ∪ y` row) — in place while the result
///   fits the span's capacity, otherwise the row moves to a larger span
///   and the old one joins the free-list;
/// * **release** (a parent row emptying) — the span joins the free-list
///   for reuse by later unions.
#[derive(Debug, Clone)]
pub struct PostingStore {
    data: Vec<VertexId>,
    slots: Vec<Slot>,
    /// Recycled slot ids (their spans already returned to `free_spans`).
    free_slots: Vec<u32>,
    /// Recycled `(offset, cap)` spans, segregated by power-of-two size
    /// class (`free_spans[k]` holds caps in `[2^k, 2^(k+1))`), so
    /// allocation never scans more than a bounded prefix of one class.
    free_spans: Vec<Vec<(usize, usize)>>,
    /// Σ len over live rows (for fragmentation diagnostics).
    live: usize,
    /// Scratch for relocating unions; kept to avoid re-allocation.
    scratch: Vec<VertexId>,
}

impl Default for PostingStore {
    fn default() -> Self {
        Self {
            data: Vec::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            free_spans: vec![Vec::new(); usize::BITS as usize],
            live: 0,
            scratch: Vec::new(),
        }
    }
}

/// Size class of a span capacity: `floor(log2(cap))`.
fn size_class(cap: usize) -> usize {
    debug_assert!(cap > 0);
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

impl PostingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store pre-sized for `total_positions` arena entries.
    pub fn with_capacity(total_positions: usize) -> Self {
        Self {
            data: Vec::with_capacity(total_positions),
            ..Self::default()
        }
    }

    /// Copies a sorted position list into the arena; the span is exact
    /// (no slack — build-time rows only ever shrink).
    pub fn insert(&mut self, positions: &[VertexId]) -> RowId {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be sorted"
        );
        let offset = self.alloc_span(positions.len());
        self.data[offset..offset + positions.len()].copy_from_slice(positions);
        self.live += positions.len();
        let slot = Slot {
            offset,
            len: positions.len(),
            cap: positions.len(),
        };
        match self.free_slots.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                RowId(id)
            }
            None => {
                self.slots.push(slot);
                RowId(self.slots.len() as u32 - 1)
            }
        }
    }

    /// A read-only view sharing this store's arena; see [`PostingView`].
    pub fn view(&self) -> PostingView<'_> {
        PostingView {
            data: &self.data,
            slots: &self.slots,
        }
    }

    /// The row's positions.
    pub fn get(&self, row: RowId) -> &[VertexId] {
        let s = self.slots[row.0 as usize];
        &self.data[s.offset..s.offset + s.len]
    }

    /// The row's length.
    pub fn len(&self, row: RowId) -> usize {
        self.slots[row.0 as usize].len
    }

    /// Returns the row's span to the free-list.
    pub fn release(&mut self, row: RowId) {
        let s = self.slots[row.0 as usize];
        self.live -= s.len;
        self.free_span(s.offset, s.cap);
        self.slots[row.0 as usize] = Slot {
            offset: 0,
            len: 0,
            cap: 0,
        };
        self.free_slots.push(row.0);
    }

    /// `|row(a) ∩ row(b)|`.
    pub fn intersect_count(&self, a: RowId, b: RowId) -> usize {
        intersect_count(self.get(a), self.get(b))
    }

    /// Writes `row(a) ∩ row(b)` into `out` (cleared first).
    pub fn intersect_into(&self, a: RowId, b: RowId, out: &mut Vec<VertexId>) {
        out.clear();
        let (pa, pb) = (self.get(a), self.get(b));
        let (mut i, mut j) = (0, 0);
        while i < pa.len() && j < pb.len() {
            match pa[i].cmp(&pb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(pa[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }

    /// Removes every element of sorted `other` from the row, in place
    /// (the span keeps its capacity). Returns the new length.
    pub fn difference(&mut self, row: RowId, other: &[VertexId]) -> usize {
        let s = self.slots[row.0 as usize];
        let span = &mut self.data[s.offset..s.offset + s.len];
        let mut write = 0;
        let mut j = 0;
        for read in 0..span.len() {
            let x = span[read];
            while j < other.len() && other[j] < x {
                j += 1;
            }
            if j < other.len() && other[j] == x {
                continue;
            }
            span[write] = x;
            write += 1;
        }
        self.slots[row.0 as usize].len = write;
        self.live -= s.len - write;
        write
    }

    /// Merges sorted `other` into the row (set union), in place when the
    /// result fits the span's capacity, relocating the row otherwise.
    /// Returns the new length.
    ///
    /// One comparison pass (merge into the reusable scratch buffer) plus
    /// one `memcpy` back into the arena — the same comparison work as an
    /// allocating union, without the allocation.
    pub fn union_in_place(&mut self, row: RowId, other: &[VertexId]) -> usize {
        let s = self.slots[row.0 as usize];
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.reserve(s.len + other.len());
        {
            let current = &self.data[s.offset..s.offset + s.len];
            let (mut i, mut j) = (0, 0);
            while i < current.len() && j < other.len() {
                match current[i].cmp(&other[j]) {
                    std::cmp::Ordering::Less => {
                        scratch.push(current[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        scratch.push(other[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        scratch.push(current[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            scratch.extend_from_slice(&current[i..]);
            scratch.extend_from_slice(&other[j..]);
        }
        let merged_len = scratch.len();
        if merged_len <= s.cap {
            self.data[s.offset..s.offset + merged_len].copy_from_slice(&scratch);
            self.slots[row.0 as usize].len = merged_len;
        } else {
            // Relocate with slack: union rows tend to keep growing.
            self.free_span(s.offset, s.cap);
            let cap = merged_len + merged_len / 2;
            let offset = self.alloc_span(cap);
            self.data[offset..offset + merged_len].copy_from_slice(&scratch);
            self.slots[row.0 as usize] = Slot {
                offset,
                len: merged_len,
                cap,
            };
        }
        self.scratch = scratch;
        self.live += merged_len - s.len;
        merged_len
    }

    /// Total arena length (live + slack + free), in positions.
    pub fn arena_len(&self) -> usize {
        self.data.len()
    }

    /// Σ len over live rows.
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Fragmentation pressure: `arena_len / live_len` (≥ 1.0). A ratio
    /// of 1.0 means every arena position belongs to a live row; a long
    /// shrink/grow session drifts upward as spans accumulate slack and
    /// free-list fragments. An empty store reports 1.0; an all-dead
    /// store with arena data still allocated reports `INFINITY` —
    /// every position is reclaimable, so any pressure threshold fires.
    pub fn fragmentation(&self) -> f64 {
        if self.live == 0 {
            if self.data.is_empty() {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.data.len() as f64 / self.live as f64
        }
    }

    /// Compacting rebuild: repacks every live row into a fresh arena
    /// with exact spans (no slack), in slot order, and empties the span
    /// free-list. Afterwards `arena_len() == live_len()` and
    /// [`Self::fragmentation`] is 1.0.
    ///
    /// Row ids survive compaction — only `(offset, cap)` change, never
    /// a row's identity or contents — so handles held by the inverted
    /// database stay valid. Recycled slot ids remain on the slot
    /// free-list for reuse by later inserts.
    pub fn compact(&mut self) {
        let mut data = Vec::with_capacity(self.live);
        for slot in &mut self.slots {
            let offset = data.len();
            data.extend_from_slice(&self.data[slot.offset..slot.offset + slot.len]);
            *slot = Slot {
                offset,
                len: slot.len,
                cap: slot.len,
            };
        }
        debug_assert_eq!(data.len(), self.live);
        self.data = data;
        for class in &mut self.free_spans {
            class.clear();
        }
    }

    fn free_span(&mut self, offset: usize, cap: usize) {
        if cap > 0 {
            self.free_spans[size_class(cap)].push((offset, cap));
        }
    }

    /// Bounded same-class scan before falling through to a strictly
    /// larger class (whose every span is guaranteed to fit).
    const SAME_CLASS_PROBES: usize = 8;

    /// Finds or creates a span of at least `need` capacity, splitting
    /// the chosen span when the remainder is still useful. Amortised
    /// O(1): at most [`Self::SAME_CLASS_PROBES`] candidates of `need`'s
    /// own size class are inspected, then the first non-empty larger
    /// class is popped.
    fn alloc_span(&mut self, need: usize) -> usize {
        if need == 0 {
            return 0;
        }
        let k = size_class(need);
        let same = &mut self.free_spans[k];
        for i in (same.len().saturating_sub(Self::SAME_CLASS_PROBES)..same.len()).rev() {
            if same[i].1 >= need {
                let (offset, cap) = same.swap_remove(i);
                return self.split_span(offset, cap, need);
            }
        }
        for kk in k + 1..self.free_spans.len() {
            while let Some((offset, cap)) = self.free_spans[kk].pop() {
                // Clamp: a span must never be handed out shorter than
                // requested. Classes above `need`'s own guarantee a fit
                // by the size-class invariant, but a span that was ever
                // filed one class too high (its cap is < 2^kk) would
                // silently corrupt the row copied into it. Verify the
                // fit and re-file offenders into their true class —
                // strictly below `kk` since cap < need < 2^kk, so this
                // loop terminates.
                if cap >= need {
                    return self.split_span(offset, cap, need);
                }
                self.free_span(offset, cap);
            }
        }
        let offset = self.data.len();
        self.data.resize(offset + need, 0);
        offset
    }

    fn split_span(&mut self, offset: usize, cap: usize, need: usize) -> usize {
        debug_assert!(cap >= need);
        self.free_span(offset + need, cap - need);
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_count_agree() {
        let a = vec![1, 3, 5, 7, 9];
        let b = vec![3, 4, 5, 9, 10];
        assert_eq!(intersect(&a, &b), vec![3, 5, 9]);
        assert_eq!(intersect_count(&a, &b), 3);
        assert_eq!(intersect_count(&a, &[]), 0);
    }

    #[test]
    fn difference_removes_common() {
        let mut a = vec![1, 2, 3, 4, 5];
        difference_inplace(&mut a, &[2, 4, 6]);
        assert_eq!(a, vec![1, 3, 5]);
        difference_inplace(&mut a, &[]);
        assert_eq!(a, vec![1, 3, 5]);
    }

    #[test]
    fn union_merges_without_duplicates() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[7]), vec![7]);
    }

    #[test]
    fn set_identities() {
        let a = vec![0, 2, 4, 6];
        let b = vec![1, 2, 3, 4];
        let i = intersect(&a, &b);
        let u = union(&a, &b);
        // |A| + |B| = |A ∪ B| + |A ∩ B|
        assert_eq!(a.len() + b.len(), u.len() + i.len());
    }

    #[test]
    fn store_roundtrips_rows() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 3, 5, 7]);
        let b = st.insert(&[2, 3, 5, 8]);
        assert_eq!(st.get(a), &[1, 3, 5, 7]);
        assert_eq!(st.get(b), &[2, 3, 5, 8]);
        assert_eq!(st.len(a), 4);
        assert_eq!(st.live_len(), 8);
        assert_eq!(st.intersect_count(a, b), 2);
        let mut out = Vec::new();
        st.intersect_into(a, b, &mut out);
        assert_eq!(out, vec![3, 5]);
    }

    #[test]
    fn store_difference_matches_reference() {
        let mut st = PostingStore::new();
        let r = st.insert(&[1, 2, 3, 4, 5, 9]);
        let removed = [2, 4, 6, 9];
        let mut reference = vec![1, 2, 3, 4, 5, 9];
        difference_inplace(&mut reference, &removed);
        let new_len = st.difference(r, &removed);
        assert_eq!(st.get(r), reference.as_slice());
        assert_eq!(new_len, reference.len());
        assert_eq!(st.live_len(), reference.len());
    }

    #[test]
    fn store_union_in_place_within_capacity() {
        let mut st = PostingStore::new();
        let r = st.insert(&[1, 4, 9, 12, 15, 20]);
        // Shrink first so the span has slack, then union back in.
        st.difference(r, &[4, 12, 20]);
        assert_eq!(st.get(r), &[1, 9, 15]);
        let arena_before = st.arena_len();
        let n = st.union_in_place(r, &[2, 9, 16]);
        assert_eq!(st.get(r), &[1, 2, 9, 15, 16]);
        assert_eq!(n, 5);
        // Fit inside the slack: the arena did not grow.
        assert_eq!(st.arena_len(), arena_before);
    }

    #[test]
    fn store_union_relocates_when_full() {
        let mut st = PostingStore::new();
        let r = st.insert(&[5, 10]);
        let n = st.union_in_place(r, &[1, 2, 3, 10, 11]);
        assert_eq!(n, 6);
        assert_eq!(st.get(r), &[1, 2, 3, 5, 10, 11]);
        assert_eq!(st.live_len(), 6);
    }

    #[test]
    fn view_matches_store_reads() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 3, 5, 7]);
        let b = st.insert(&[2, 3, 5, 8]);
        st.difference(a, &[5]);
        let v = st.view();
        assert_eq!(v.get(a), st.get(a));
        assert_eq!(v.get(b), st.get(b));
        assert_eq!(v.len(a), 3);
        assert!(!v.is_empty(a));
        assert_eq!(v.intersect_count(a, b), st.intersect_count(a, b));
        // Views are Copy and shareable across threads.
        let copy = v;
        std::thread::scope(|s| {
            s.spawn(move || assert_eq!(copy.get(b), &[2, 3, 5, 8]));
        });
    }

    /// Regression test for the segregated free-list clamp: a span filed
    /// one size class too high must never be handed out to a larger
    /// request (the copy into it would clobber a neighbouring row).
    /// The clamp re-files the offender instead of returning it.
    #[test]
    fn misfiled_free_span_is_never_handed_out_short() {
        let mut st = PostingStore::new();
        let guard = st.insert(&[100, 200, 300, 400, 500, 600, 700, 800]);
        // Plant a 3-cap span at the arena tail, misfiled into class 4
        // (caps 16..32) — exactly the corruption the clamp defends
        // against. A 20-element insert falls through to class 4 and,
        // unclamped, would copy 20 positions into the 3-slot span,
        // overwriting whatever follows it.
        let offset = st.data.len();
        st.data.resize(offset + 3, 0);
        st.free_spans[4].push((offset, 3));
        let big: Vec<VertexId> = (0..20).collect();
        let r = st.insert(&big);
        assert_eq!(st.get(r), big.as_slice(), "row must round-trip intact");
        assert_eq!(st.get(guard), &[100, 200, 300, 400, 500, 600, 700, 800]);
        // The misfiled span was re-filed into its true class (1) and is
        // still usable for a request it actually fits.
        let small = st.insert(&[7, 8]);
        assert_eq!(st.get(small), &[7, 8]);
        assert_eq!(st.get(r), big.as_slice());
    }

    /// Repeated difference/union shrink-grow traffic keeps every row
    /// intact while spans cycle through the free-list (the workload the
    /// ISSUE names: long dynamic-mining sessions recycling spans).
    #[test]
    fn shrink_grow_cycles_preserve_row_integrity() {
        let mut st = PostingStore::new();
        let universe: Vec<VertexId> = (0..64).collect();
        let rows: Vec<RowId> = (0..8)
            .map(|i| {
                let pos: Vec<VertexId> = (0..64).filter(|v| (v + i) % 3 != 0).collect();
                st.insert(&pos)
            })
            .collect();
        let mut expected: Vec<Vec<VertexId>> = rows.iter().map(|&r| st.get(r).to_vec()).collect();
        for round in 0..40 {
            for (i, &r) in rows.iter().enumerate() {
                let cut: Vec<VertexId> = universe
                    .iter()
                    .copied()
                    .filter(|v| (*v as usize + round + i).is_multiple_of(4))
                    .collect();
                st.difference(r, &cut);
                difference_inplace(&mut expected[i], &cut);
                let grow: Vec<VertexId> = universe
                    .iter()
                    .copied()
                    .filter(|v| (*v as usize + round) % 5 == i % 5)
                    .collect();
                st.union_in_place(r, &grow);
                expected[i] = union(&expected[i], &grow);
            }
            for (i, &r) in rows.iter().enumerate() {
                assert_eq!(st.get(r), expected[i].as_slice(), "row {i} round {round}");
            }
        }
        let live: usize = expected.iter().map(Vec::len).sum();
        assert_eq!(st.live_len(), live);
    }

    /// White-box compaction test (the ROADMAP "PostingStore compaction"
    /// item): a shrink-heavy release/re-insert session fragments the
    /// arena; `compact()` must bring `arena_len` back to exactly
    /// `live_len` while every surviving row decodes identically and
    /// stays usable for further mutation.
    #[test]
    fn compact_repacks_arena_exactly() {
        let mut st = PostingStore::new();
        let universe: Vec<VertexId> = (0..96).collect();
        let rows: Vec<RowId> = (0..12)
            .map(|i| {
                let pos: Vec<VertexId> = universe.iter().copied().filter(|v| v % 12 >= i).collect();
                st.insert(&pos)
            })
            .collect();
        // Shrink-heavy traffic: carve most positions out of every row,
        // release a third of them, grow a few back — classic long-
        // session fragmentation (slack + free spans pile up).
        for (i, &r) in rows.iter().enumerate() {
            let cut: Vec<VertexId> = universe
                .iter()
                .copied()
                .filter(|&v| !(v as usize + i).is_multiple_of(3))
                .collect();
            st.difference(r, &cut);
            if i % 3 == 0 {
                st.release(r);
            } else if i % 3 == 1 {
                st.union_in_place(r, &[200, 201, 202, 203]);
            }
        }
        let survivors: Vec<RowId> = rows
            .iter()
            .enumerate()
            .filter(|&(i, _)| i % 3 != 0)
            .map(|(_, &r)| r)
            .collect();
        let expected: Vec<Vec<VertexId>> = survivors.iter().map(|&r| st.get(r).to_vec()).collect();

        assert!(
            st.arena_len() > st.live_len(),
            "fixture must actually fragment: arena {} vs live {}",
            st.arena_len(),
            st.live_len()
        );
        assert!(st.fragmentation() > 1.0);

        st.compact();
        assert_eq!(st.arena_len(), st.live_len(), "compaction must be exact");
        assert_eq!(st.fragmentation(), 1.0);
        for (r, want) in survivors.iter().zip(&expected) {
            assert_eq!(st.get(*r), want.as_slice(), "row must decode identically");
        }
        // The store stays fully usable: grow a compacted row (forces a
        // relocation — spans now have zero slack) and insert a new one.
        let grown = union(&expected[0], &[500, 501]);
        st.union_in_place(survivors[0], &[500, 501]);
        assert_eq!(st.get(survivors[0]), grown.as_slice());
        let fresh = st.insert(&[1, 2, 3]);
        assert_eq!(st.get(fresh), &[1, 2, 3]);
        for (r, want) in survivors.iter().zip(&expected).skip(1) {
            assert_eq!(st.get(*r), want.as_slice());
        }
    }

    #[test]
    fn fragmentation_of_empty_and_all_dead_stores() {
        let mut st = PostingStore::new();
        assert_eq!(st.fragmentation(), 1.0);
        let r = st.insert(&[1, 2]);
        assert_eq!(st.fragmentation(), 1.0);
        st.release(r);
        // All-dead arena still holding data: maximal pressure, so any
        // compaction threshold fires and reclaims it.
        assert_eq!(st.fragmentation(), f64::INFINITY);
        st.compact();
        assert_eq!(st.arena_len(), 0);
        assert_eq!(st.fragmentation(), 1.0);
    }

    #[test]
    fn store_reuses_released_spans() {
        let mut st = PostingStore::new();
        let a = st.insert(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let len_after_a = st.arena_len();
        st.release(a);
        assert_eq!(st.live_len(), 0);
        let b = st.insert(&[10, 20, 30]);
        // The new row fits inside the recycled span: no arena growth.
        assert_eq!(st.arena_len(), len_after_a);
        assert_eq!(st.get(b), &[10, 20, 30]);
        // And the split remainder is still usable.
        let c = st.insert(&[7, 8, 9]);
        assert_eq!(st.arena_len(), len_after_a);
        assert_eq!(st.get(c), &[7, 8, 9]);
    }
}
