//! The mined model: ranked a-stars with their code lengths.

use cspm_graph::{AStar, AttrTable, VertexId};

use crate::inverted::{CoresetId, InvertedDb, LeafsetId};

/// One a-star in the final model `M`, with everything needed to rank and
/// apply it.
#[derive(Debug, Clone)]
pub struct MinedAStar {
    /// The pattern itself.
    pub astar: AStar,
    /// Source coreset id in the inverted database.
    pub coreset: CoresetId,
    /// Source leafset id in the inverted database.
    pub leafset: LeafsetId,
    /// Row frequency `fL`.
    pub frequency: u64,
    /// Coreset frequency `fc` (Σ fL over the coreset's rows).
    pub coreset_freq: u64,
    /// Code length `L(Scode) = L(Code_c) + L(Code_L)` (Eq. 4), with
    /// `L(Code_L) = −log2(fL/fc)` (Eq. 6).
    pub code_len: f64,
    /// Vertices where the a-star occurs.
    pub positions: Vec<VertexId>,
}

impl MinedAStar {
    /// The conditional code length `L(Code_L)` alone.
    pub fn leaf_code_len(&self) -> f64 {
        -((self.frequency as f64 / self.coreset_freq as f64).log2())
    }
}

/// The output of CSPM: a-stars ordered by ascending code length
/// ("an a-star with a shorter code length indicates that it is more
/// informative", §IV-A).
#[derive(Debug, Clone, Default)]
pub struct MinedModel {
    astars: Vec<MinedAStar>,
}

impl MinedModel {
    /// Extracts the model from a converged inverted database.
    pub fn from_db(db: &InvertedDb) -> Self {
        let mut astars = Vec::with_capacity(db.row_count());
        for (e, l, positions) in db.iter_rows() {
            let coreset = &db.coresets()[e as usize];
            let frequency = positions.len() as u64;
            let coreset_freq = db.coreset_freq(e);
            let leaf_code = -((frequency as f64 / coreset_freq as f64).log2());
            astars.push(MinedAStar {
                astar: AStar::new(coreset.items.clone(), db.leafset_items(l).to_vec()),
                coreset: e,
                leafset: l,
                frequency,
                coreset_freq,
                code_len: coreset.code_len + leaf_code,
                positions: positions.to_vec(),
            });
        }
        astars.sort_by(|a, b| {
            a.code_len
                .partial_cmp(&b.code_len)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.astar.cmp(&b.astar))
        });
        Self { astars }
    }

    /// All a-stars, most informative (shortest code) first.
    pub fn astars(&self) -> &[MinedAStar] {
        &self.astars
    }

    /// Number of a-stars in the model.
    pub fn len(&self) -> usize {
        self.astars.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.astars.is_empty()
    }

    /// A-stars whose leafset has at least `min_leaves` values — the
    /// summarising patterns created by merges.
    pub fn non_trivial(&self, min_leaves: usize) -> impl Iterator<Item = &MinedAStar> {
        self.astars
            .iter()
            .filter(move |m| m.astar.leafset().len() >= min_leaves)
    }

    /// Pretty-prints the top `k` patterns with attribute names.
    pub fn format_top(&self, attrs: &AttrTable, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (rank, m) in self.astars.iter().take(k).enumerate() {
            let _ = writeln!(
                out,
                "{:>3}. {}  fL={} fc={} L={:.3} bits",
                rank + 1,
                m.astar.display(attrs),
                m.frequency,
                m.coreset_freq,
                m.code_len
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoresetMode, GainPolicy};
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn model_extraction_is_ranked() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let model = MinedModel::from_db(&db);
        assert_eq!(model.len(), db.row_count());
        assert!(!model.is_empty());
        for w in model.astars().windows(2) {
            assert!(w[0].code_len <= w[1].code_len + 1e-12);
        }
    }

    #[test]
    fn code_lengths_decompose() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let model = MinedModel::from_db(&db);
        for m in model.astars() {
            let coreset_code = db.coresets()[m.coreset as usize].code_len;
            assert!((m.code_len - (coreset_code + m.leaf_code_len())).abs() < 1e-12);
            assert!(m.frequency <= m.coreset_freq);
        }
    }

    #[test]
    fn patterns_actually_occur_in_graph() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let model = MinedModel::from_db(&db);
        for m in model.astars() {
            for &v in &m.positions {
                assert!(
                    m.astar.matches_at(&g, v),
                    "a-star {:?} recorded at vertex {v} but does not match",
                    m.astar
                );
            }
        }
    }

    #[test]
    fn format_top_shows_k_lines() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let model = MinedModel::from_db(&db);
        let text = model.format_top(g.attrs(), 3);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("bits"));
    }
}
