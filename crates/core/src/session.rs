//! Long-lived mining sessions: the primary API of `cspm-core`.
//!
//! The one-shot entry points ([`cspm_basic`](crate::cspm_basic),
//! [`cspm_partial`](crate::cspm_partial), [`mine`](crate::mine)) build
//! an inverted database, run the merge loop once, and throw the warm
//! state away. The workloads the paper's dynamic application (§VI) and
//! this repo's roadmap care about look different: the graph *evolves*,
//! and the miner is asked again and again. A [`MiningSession`] keeps
//! the expensive state alive between calls:
//!
//! * the **current graph**, so evolution arrives as [`GraphDelta`]s —
//!   additions, edge/label/vertex removals and label changes alike —
//!   instead of full graphs;
//! * the **pristine inverted database** (post-build, pre-merge), which
//!   a delta *patches* instead of rebuilding: rows are re-derived for
//!   the delta's dirty centers only (retracted memberships cleared,
//!   surviving ones re-inserted), and the remaining per-delta work is
//!   a few linear refresh passes — ~8× cheaper than a rebuild on
//!   pokec-Small — see [`InvertedDb::apply_delta`];
//! * the **posting arena** backing those rows, which survives across
//!   calls and is compacted when patch traffic fragments it past the
//!   configured pressure ratio ([`Miner::compact_above`]).
//!
//! Warm re-mining is **bit-identical** to cold re-mining: a patched
//! database is indistinguishable from a freshly built one (same
//! numbering, same rows, same DL terms to the last bit), so the greedy
//! merge loop takes the same path. The only thing a session changes is
//! how fast the answer is produced.
//!
//! Sessions are configured through the [`Miner`] builder and observed
//! through [`ProgressObserver`] — per-iteration callbacks with
//! cooperative, [`ControlFlow`]-based cancellation:
//!
//! ```
//! use std::ops::ControlFlow;
//! use cspm_core::{IterationStat, Miner, ProgressObserver};
//! use cspm_graph::fixtures::paper_example;
//!
//! struct StopAfter(usize);
//! impl ProgressObserver for StopAfter {
//!     fn on_iteration(&mut self, _stat: &IterationStat) -> ControlFlow<()> {
//!         self.0 -= 1;
//!         if self.0 == 0 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
//!     }
//! }
//!
//! let (graph, _) = paper_example();
//! let mut session = Miner::new().threads(1).build();
//! let full = session.mine(&graph);
//! // Cancel after one merge: still a valid (partial) model, and the
//! // session stays reusable.
//! let partial = session.run_with(&mut StopAfter(1)).unwrap();
//! assert!(partial.stats.cancelled && partial.merges == 1);
//! assert_eq!(session.run_with(&mut StopAfter(usize::MAX)).unwrap().final_dl, full.final_dl);
//! ```

use std::ops::ControlFlow;
use std::time::Instant;

use cspm_graph::dynamic::GraphDelta;
use cspm_graph::{AttributedGraph, GraphError, VertexId};

use crate::config::CspmConfig;
use crate::engine::{run_loop, CspmResult, ProgressObserver, RunToCompletion, SchedulePolicy};
use crate::inverted::{InvertedDb, PatchError, PatchStats};
use crate::{CoresetMode, GainPolicy, Variant};

/// Builder for [`MiningSession`]s.
///
/// ```
/// use cspm_core::Miner;
/// use cspm_graph::fixtures::paper_example;
///
/// let (graph, _) = paper_example();
/// let mut session = Miner::new().threads(4).full_regen_cap(Some(10_000)).build();
/// let result = session.mine(&graph);
/// assert!(result.final_dl <= result.initial_dl);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Miner {
    config: CspmConfig,
    policy: SchedulePolicy,
    compact_above: f64,
    compact_after_releases: Option<u32>,
}

impl Default for Miner {
    fn default() -> Self {
        Self::new()
    }
}

impl Miner {
    /// Default arena-pressure ratio past which a session compacts its
    /// posting store after a delta: twice as much arena as live data.
    pub const DEFAULT_COMPACT_ABOVE: f64 = 2.0;

    /// Default count of *release-heavy* deltas (deltas that released at
    /// least one posting row back to the free-list) after which a
    /// session compacts regardless of the fragmentation ratio. Removal
    /// traffic frees rows scattered across the arena: the byte ratio
    /// can stay under [`Self::DEFAULT_COMPACT_ABOVE`] for a long time
    /// while the free-list keeps the arena from ever shrinking.
    pub const DEFAULT_COMPACT_AFTER_RELEASES: u32 = 8;

    /// A builder with the paper-default configuration (the same
    /// defaults as [`CspmConfig::default`], incremental scheduling).
    pub fn new() -> Self {
        Self::from_config(CspmConfig::default())
    }

    /// A builder starting from an existing configuration.
    pub fn from_config(config: CspmConfig) -> Self {
        Self {
            config,
            policy: SchedulePolicy::default(),
            compact_above: Self::DEFAULT_COMPACT_ABOVE,
            compact_after_releases: Some(Self::DEFAULT_COMPACT_AFTER_RELEASES),
        }
    }

    /// Scoring worker threads (`0` = one per core; see
    /// [`CspmConfig::threads`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Candidate-pair count past which full regeneration delegates to
    /// the incremental policy (`None` disables; see
    /// [`CspmConfig::full_regen_max_pairs`]).
    pub fn full_regen_cap(mut self, cap: Option<usize>) -> Self {
        self.config.full_regen_max_pairs = cap;
        self
    }

    /// Scheduling policy ([`SchedulePolicy::Incremental`] by default).
    pub fn policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Convenience: scheduling policy via the paper's variant names.
    pub fn variant(self, variant: Variant) -> Self {
        self.policy(variant.policy())
    }

    /// Gain accounting policy (see [`GainPolicy`]).
    pub fn gain_policy(mut self, gain_policy: GainPolicy) -> Self {
        self.config.gain_policy = gain_policy;
        self
    }

    /// Coreset formation mode. Note that only
    /// [`CoresetMode::SingleValue`] databases can absorb graph deltas
    /// in place; other modes re-build on every delta (correct, but
    /// cold).
    pub fn coreset_mode(mut self, mode: CoresetMode) -> Self {
        self.config.coreset_mode = mode;
        self
    }

    /// Optional cap on accepted merges per run.
    pub fn max_merges(mut self, cap: Option<usize>) -> Self {
        self.config.max_merges = cap;
        self
    }

    /// Record per-iteration statistics in [`RunStats`](crate::RunStats).
    pub fn collect_stats(mut self, collect: bool) -> Self {
        self.config.collect_stats = collect;
        self
    }

    /// Arena-pressure ratio (`arena_len / live_len`) past which the
    /// session compacts its posting store after absorbing a delta.
    /// Must be ≥ 1.0; pass [`f64::INFINITY`] to disable automatic
    /// compaction (manual [`MiningSession::compact_now`] still works).
    pub fn compact_above(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "a pressure ratio below 1.0 is unreachable");
        self.compact_above = ratio;
        self
    }

    /// Number of release-heavy deltas (deltas that released posting
    /// rows to the free-list) after which the session compacts even if
    /// the fragmentation ratio is still below
    /// [`compact_above`](Self::compact_above). Removal-dominated
    /// streams fragment the arena without growing it, so the ratio
    /// alone reacts late; this counter bounds how long that state can
    /// persist. `None` disables the trigger; must be ≥ 1 otherwise.
    pub fn compact_after_releases(mut self, count: Option<u32>) -> Self {
        assert!(
            count != Some(0),
            "a zero release threshold would compact on every delta; use Some(1) \
             to compact after each release-heavy delta or None to disable"
        );
        self.compact_after_releases = count;
        self
    }

    /// The configuration this builder will hand its sessions.
    pub fn config(&self) -> &CspmConfig {
        &self.config
    }

    /// Builds an (unloaded) session. Feed it a graph with
    /// [`MiningSession::mine`] or [`MiningSession::load`].
    pub fn build(self) -> MiningSession {
        MiningSession {
            config: self.config,
            policy: self.policy,
            compact_above: self.compact_above,
            compact_after_releases: self.compact_after_releases,
            release_heavy_deltas: 0,
            graph: None,
            pristine: None,
            compactions: 0,
        }
    }
}

/// Why a session call could not proceed.
#[derive(Debug)]
pub enum SessionError {
    /// The session has no graph or database yet — call
    /// [`MiningSession::mine`] or [`MiningSession::load`] first.
    Empty,
    /// The session owns a database but no graph (it was
    /// [adopted](MiningSession::adopt_db)); deltas need the graph.
    NoGraph,
    /// A delta does not apply to the session's current graph. `index`
    /// is its position in the staged batch (always 0 for the
    /// single-delta entry points), so a caller can resume from
    /// `deltas[index..]` after repairing — every delta before it **is**
    /// absorbed (see [`MiningSession::stage_deltas`]).
    Delta {
        /// Position of the rejected delta within the staged batch.
        index: usize,
        /// Why that delta did not apply.
        source: GraphError,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "session has no graph loaded"),
            Self::NoGraph => write!(f, "session adopted a bare database; deltas require a graph"),
            Self::Delta { index, source } => {
                write!(f, "delta #{index} of the batch does not apply: {source}")
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Delta { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// How a [`MiningSession::stage_delta`] call updated the session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaStats {
    /// Vertices whose stars the delta changed (the only centers the
    /// patch re-derived rows for).
    pub dirty_centers: usize,
    /// Row-level patch counters (zeroed when `rebuilt`).
    pub patch: PatchStats,
    /// `Some(reason)` when the database had to be rebuilt from scratch
    /// instead of patched — multi-value coreset modes, or a base whose
    /// coreset numbering is not canonical. A session that keeps
    /// rebuilding gets no warm-path savings; the [`PatchError`] says
    /// why.
    pub rebuilt: Option<PatchError>,
    /// Whether arena pressure triggered a compaction afterwards.
    pub compacted: bool,
    /// Posting-arena fragmentation after the patch (and compaction, if
    /// one ran): `arena_len / live_len`, 1.0 = fully compact.
    pub fragmentation: f64,
}

/// A long-lived miner: owns the current graph and the pristine
/// inverted database (rows + posting arena) across calls, absorbs
/// [`GraphDelta`]s incrementally, and re-mines warm. See the
/// [module docs](self) for the full contract; built by [`Miner`].
#[derive(Debug, Clone)]
pub struct MiningSession {
    config: CspmConfig,
    policy: SchedulePolicy,
    compact_above: f64,
    compact_after_releases: Option<u32>,
    /// Release-heavy deltas absorbed since the last compaction (or
    /// cold load — both leave the arena exactly packed).
    release_heavy_deltas: u32,
    graph: Option<AttributedGraph>,
    pristine: Option<InvertedDb>,
    compactions: u64,
}

impl MiningSession {
    /// Cold-loads `g`: replaces any retained state with a fresh
    /// inverted database for `g`. Does not mine.
    pub fn load(&mut self, g: &AttributedGraph) {
        self.load_owned(g.clone());
    }

    /// [`Self::load`] taking ownership — spares the graph clone when
    /// the caller has one to give away.
    pub fn load_owned(&mut self, g: AttributedGraph) {
        self.pristine = Some(InvertedDb::build(
            &g,
            self.config.coreset_mode,
            self.config.gain_policy,
        ));
        self.graph = Some(g);
        // A fresh build packs the arena exactly.
        self.release_heavy_deltas = 0;
    }

    /// Adopts a pre-built database as the session's pristine state.
    /// The session has no graph afterwards, so deltas are unavailable
    /// ([`SessionError::NoGraph`]) — this is the entry point the
    /// [`run_on_db`](crate::engine::run_on_db) wrapper uses.
    pub fn adopt_db(&mut self, db: InvertedDb) {
        self.pristine = Some(db);
        self.graph = None;
    }

    /// Installs previously captured warm state — a graph **and** the
    /// pristine database that corresponds to it — without rebuilding
    /// anything. This is the restore half of a durable session
    /// (`cspm-store` reads both from a snapshot file); the pair must
    /// belong together (the database built from, or patched up to,
    /// exactly this graph), which the caller asserts by construction —
    /// a mismatched pair mines the database, not the graph, and deltas
    /// will desynchronise.
    pub fn restore(&mut self, g: AttributedGraph, db: InvertedDb) {
        self.pristine = Some(db);
        self.graph = Some(g);
    }

    /// The retained pristine database, if the session is loaded — the
    /// serialisation source for durable-session checkpoints.
    pub fn pristine_db(&self) -> Option<&InvertedDb> {
        self.pristine.as_ref()
    }

    /// Whether the session holds a database to mine.
    pub fn is_loaded(&self) -> bool {
        self.pristine.is_some()
    }

    /// The session's current graph, if it owns one.
    pub fn graph(&self) -> Option<&AttributedGraph> {
        self.graph.as_ref()
    }

    /// Posting-arena pressure of the retained database:
    /// `arena_len / live_len` (1.0 when compact or unloaded).
    pub fn fragmentation(&self) -> f64 {
        self.pristine
            .as_ref()
            .map_or(1.0, |db| db.posting_store().fragmentation())
    }

    /// How many pressure-triggered (or manual) compactions this
    /// session has performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Compacts the retained posting arena unconditionally.
    pub fn compact_now(&mut self) {
        if let Some(db) = self.pristine.as_mut() {
            db.compact_postings();
            self.compactions += 1;
            self.release_heavy_deltas = 0;
        }
    }

    /// Release-heavy deltas (deltas that released posting rows back to
    /// the free-list) absorbed since the last compaction — the counter
    /// behind [`Miner::compact_after_releases`].
    pub fn release_heavy_deltas(&self) -> u32 {
        self.release_heavy_deltas
    }

    /// Estimated resident bytes of the retained graph + pristine
    /// database (0 when unloaded). This is what a serving daemon's
    /// memory budget counts; see [`crate::registry`].
    pub fn approx_bytes(&self) -> usize {
        self.graph.as_ref().map_or(0, AttributedGraph::approx_bytes)
            + self.pristine.as_ref().map_or(0, InvertedDb::approx_bytes)
    }

    /// Cold mine: loads `g` and runs the merge loop to convergence.
    /// Retains the warm state for later [`Self::apply_delta`] /
    /// [`Self::run_with`] calls.
    pub fn mine(&mut self, g: &AttributedGraph) -> CspmResult {
        self.mine_with(g, &mut RunToCompletion)
    }

    /// [`Self::mine`] with a progress observer.
    pub fn mine_with(
        &mut self,
        g: &AttributedGraph,
        observer: &mut dyn ProgressObserver,
    ) -> CspmResult {
        let started = Instant::now();
        self.load(g);
        let mut result = self.run_with(observer).expect("session was just loaded");
        // Like the one-shot entry points, a cold mine charges database
        // construction to the run's elapsed time.
        result.stats.elapsed_secs = started.elapsed().as_secs_f64();
        result
    }

    /// Absorbs `delta` into the retained graph and database **without
    /// mining**: patch rows for the delta's dirty centers, then compact
    /// the arena if pressure exceeds the configured ratio. Use this to
    /// batch several deltas before one [`Self::run_with`];
    /// [`Self::apply_delta`] is the stage-and-mine convenience.
    pub fn stage_delta(&mut self, delta: &GraphDelta) -> Result<DeltaStats, SessionError> {
        self.stage_deltas(std::slice::from_ref(delta))
    }

    /// Absorbs a whole batch of deltas with **one** database patch:
    /// every delta is applied to the session graph in place, the dirty
    /// sets are merged, and [`InvertedDb::apply_delta`] runs once
    /// over the final graph. The per-patch linear refresh passes
    /// (mapping table, code table, DL terms) are thus paid once per
    /// batch instead of once per delta. (When there is no warm state
    /// worth keeping at all — e.g. a one-shot replay of a whole
    /// snapshot sequence, as in [`mine_dynamic`](crate::mine_dynamic)
    /// — a cold [`Self::load_owned`] of the final graph is cheaper
    /// still; batching earns its keep when the session has already
    /// mined and the batch is small relative to the graph.)
    ///
    /// **Applied-prefix guarantee:** if delta `i` of the batch is
    /// rejected, deltas `0..i` remain absorbed — graph and database are
    /// re-synced to exactly that prefix before the error returns — and
    /// the error carries `i` as [`SessionError::Delta::index`], so the
    /// caller can repair `deltas[i]` and resume staging from
    /// `deltas[i..]` without replaying (or losing) the prefix. A
    /// rejected delta validates before mutating, so it is absorbed
    /// either wholly or not at all.
    pub fn stage_deltas(&mut self, deltas: &[GraphDelta]) -> Result<DeltaStats, SessionError> {
        if self.pristine.is_none() {
            return Err(SessionError::Empty);
        }
        let graph = self.graph.as_mut().ok_or(SessionError::NoGraph)?;
        // In place: the session owns its graph, so there is no reason
        // to clone it per delta. A rejected delta validates before
        // mutating, leaving the graph at the previous delta's state.
        let mut dirty: Vec<VertexId> = Vec::new();
        let mut error = None;
        for (index, delta) in deltas.iter().enumerate() {
            match delta.apply_in_place(graph) {
                Ok(d) => dirty.extend(d),
                Err(source) => {
                    // Re-sync the database with the successfully
                    // applied prefix before surfacing the error.
                    error = Some(SessionError::Delta { index, source });
                    break;
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        if dirty.is_empty() {
            // Nothing changed (empty batch, or pure no-op deltas):
            // skip the refresh passes entirely — the database already
            // matches the graph.
            return match error {
                Some(e) => Err(e),
                None => Ok(DeltaStats {
                    dirty_centers: 0,
                    patch: PatchStats::default(),
                    rebuilt: None,
                    compacted: false,
                    fragmentation: self.fragmentation(),
                }),
            };
        }
        let stats = self.absorb_dirty(dirty);
        match error {
            Some(e) => Err(e),
            None => Ok(stats),
        }
    }

    /// Patches (or, for unpatchable coreset modes, rebuilds) the
    /// retained database for the given dirty centers of the current
    /// graph, then compacts under arena pressure.
    fn absorb_dirty(&mut self, dirty: Vec<VertexId>) -> DeltaStats {
        let graph = self.graph.as_ref().expect("caller checked");
        let db = self.pristine.as_mut().expect("caller checked");
        let mut stats = DeltaStats {
            dirty_centers: dirty.len(),
            patch: PatchStats::default(),
            rebuilt: None,
            compacted: false,
            fragmentation: 1.0,
        };
        match db.apply_delta(graph, &dirty) {
            Ok(patch) => {
                stats.patch = patch;
                if patch.rows_removed > 0 {
                    self.release_heavy_deltas += 1;
                }
            }
            Err(reason) => {
                // Multi-value coresets (or a non-canonical database):
                // fall back to a cold rebuild — identical result, no
                // warm savings. The rebuild packs the arena exactly.
                *db = InvertedDb::build(graph, self.config.coreset_mode, self.config.gain_policy);
                stats.rebuilt = Some(reason);
                self.release_heavy_deltas = 0;
            }
        }
        // Two independent pressure signals: the byte ratio (additive
        // patch traffic relocates rows, growing the arena) and the
        // release counter (removal traffic frees rows without growing
        // it — the ratio reacts late, the counter does not).
        let release_pressure = self
            .compact_after_releases
            .is_some_and(|n| self.release_heavy_deltas >= n);
        if db.posting_store().fragmentation() > self.compact_above || release_pressure {
            db.compact_postings();
            self.compactions += 1;
            self.release_heavy_deltas = 0;
            stats.compacted = true;
        }
        stats.fragmentation = db.posting_store().fragmentation();
        stats
    }

    /// Warm re-mine: absorbs `delta` (see [`Self::stage_delta`]) and
    /// runs the merge loop on the patched database. Bit-identical to a
    /// cold [`Self::mine`] of the grown graph, at a fraction of the
    /// setup cost.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<CspmResult, SessionError> {
        self.apply_delta_with(delta, &mut RunToCompletion)
    }

    /// [`Self::apply_delta`] with a progress observer.
    pub fn apply_delta_with(
        &mut self,
        delta: &GraphDelta,
        observer: &mut dyn ProgressObserver,
    ) -> Result<CspmResult, SessionError> {
        let started = Instant::now();
        self.stage_delta(delta)?;
        let mut result = self.run_with(observer)?;
        result.stats.elapsed_secs = started.elapsed().as_secs_f64();
        Ok(result)
    }

    /// Runs the merge loop on (a copy of) the retained pristine
    /// database, reporting every accepted merge to `observer` and
    /// honouring its cancellation. The session keeps its state, so the
    /// call can be repeated — after a cancellation, after more deltas,
    /// or with a different observer — and a re-run from the same state
    /// returns the same result.
    pub fn run_with(
        &mut self,
        observer: &mut dyn ProgressObserver,
    ) -> Result<CspmResult, SessionError> {
        let db = self.pristine.as_ref().ok_or(SessionError::Empty)?;
        Ok(run_loop(db.clone(), self.policy, self.config, observer))
    }

    /// Runs the merge loop by **consuming** the retained database —
    /// the no-copy path for one-shot use (the free-function wrappers
    /// route through here). The session is unloaded afterwards.
    pub fn run_detached(&mut self) -> Option<CspmResult> {
        let db = self.pristine.take()?;
        self.graph = None;
        Some(run_loop(db, self.policy, self.config, &mut RunToCompletion))
    }
}

/// A resident session is exactly what [`crate::registry`]'s budget
/// wants to manage: its bytes are graph + pristine database, pressure
/// is arena fragmentation, and compaction is the session's own exact
/// arena repack (which never changes mined output).
impl crate::registry::ResidentFootprint for MiningSession {
    fn approx_bytes(&self) -> usize {
        MiningSession::approx_bytes(self)
    }

    fn fragmentation(&self) -> f64 {
        MiningSession::fragmentation(self)
    }

    fn compact(&mut self) {
        self.compact_now();
    }
}

/// An observer driven by closures, for callers who do not want a named
/// type: `FnObserver(|stat| ControlFlow::Continue(()))`.
pub struct FnObserver<F>(pub F);

impl<F: FnMut(&crate::IterationStat) -> ControlFlow<()>> ProgressObserver for FnObserver<F> {
    fn on_iteration(&mut self, stat: &crate::IterationStat) -> ControlFlow<()> {
        (self.0)(stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::dynamic::{DeltaVertex, GraphDelta};
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn builder_round_trips_config() {
        let m = Miner::new()
            .threads(3)
            .full_regen_cap(None)
            .gain_policy(GainPolicy::DataOnly)
            .max_merges(Some(7))
            .collect_stats(true)
            .variant(Variant::Basic)
            .compact_above(4.0)
            .compact_after_releases(Some(5));
        assert_eq!(m.config().threads, 3);
        assert_eq!(m.config().full_regen_max_pairs, None);
        assert_eq!(m.config().gain_policy, GainPolicy::DataOnly);
        assert_eq!(m.config().max_merges, Some(7));
        assert!(m.config().collect_stats);
        assert_eq!(m.policy, SchedulePolicy::FullRegeneration);
        assert_eq!(m.compact_above, 4.0);
        assert_eq!(m.compact_after_releases, Some(5));
        assert_eq!(
            Miner::new().compact_after_releases,
            Some(Miner::DEFAULT_COMPACT_AFTER_RELEASES)
        );
    }

    #[test]
    fn unloaded_session_reports_errors() {
        let mut s = Miner::new().build();
        assert!(!s.is_loaded());
        assert_eq!(s.fragmentation(), 1.0);
        assert!(matches!(
            s.run_with(&mut RunToCompletion),
            Err(SessionError::Empty)
        ));
        assert!(matches!(
            s.stage_delta(&GraphDelta::new()),
            Err(SessionError::Empty)
        ));
        assert!(s.run_detached().is_none());
    }

    #[test]
    fn adopted_database_mines_but_rejects_deltas() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let mut s = Miner::new().build();
        s.adopt_db(db);
        assert!(s.graph().is_none());
        assert!(matches!(
            s.stage_delta(&GraphDelta::new()),
            Err(SessionError::NoGraph)
        ));
        let res = s.run_with(&mut RunToCompletion).unwrap();
        assert!(res.final_dl <= res.initial_dl);
    }

    #[test]
    fn session_mine_matches_free_function() {
        let (g, _) = paper_example();
        let mut s = Miner::new().build();
        let session = s.mine(&g);
        let free = crate::cspm_partial(&g, CspmConfig::default());
        assert_eq!(session.final_dl, free.final_dl);
        assert_eq!(session.merges, free.merges);
        assert!(s.is_loaded(), "warm state is retained");
        // Re-running from the retained pristine state reproduces the
        // result exactly.
        let again = s.run_with(&mut RunToCompletion).unwrap();
        assert_eq!(again.final_dl, session.final_dl);
        assert_eq!(again.merges, session.merges);
    }

    #[test]
    fn apply_delta_equals_cold_mine_of_grown_graph() {
        let (g, _) = paper_example();
        let mut delta = GraphDelta::new();
        let w = delta.add_vertex(["d", "a"]);
        delta.add_edge(w, DeltaVertex::Existing(1));
        delta.add_label(2, "b");
        let grown = delta.apply(&g).unwrap().graph;

        let mut warm = Miner::new().build();
        warm.mine(&g);
        let warm_res = warm.apply_delta(&delta).unwrap();
        let mut cold = Miner::new().build();
        let cold_res = cold.mine(&grown);
        assert_eq!(warm_res.final_dl, cold_res.final_dl);
        assert_eq!(warm_res.merges, cold_res.merges);
        assert_eq!(
            warm_res.stats.total_gain_evals,
            cold_res.stats.total_gain_evals
        );
        assert_eq!(warm.graph().unwrap(), &grown);
    }

    /// Batched staging (one patch for many deltas — the mine_dynamic
    /// replay path) must land on the same state as staging one by one.
    #[test]
    fn stage_deltas_batch_equals_sequential() {
        let (g, _) = paper_example();
        let mut d1 = GraphDelta::new();
        let w = d1.add_vertex(["d", "a"]);
        d1.add_edge(w, DeltaVertex::Existing(1));
        let mut d2 = GraphDelta::new();
        d2.add_label(2, "b");
        let w2 = d2.add_vertex(["e"]);
        d2.add_edge(w2, DeltaVertex::Existing(0));

        let mut batched = Miner::new().build();
        batched.mine(&g);
        let stats = batched.stage_deltas(&[d1.clone(), d2.clone()]).unwrap();
        assert!(stats.rebuilt.is_none());

        let mut sequential = Miner::new().build();
        sequential.mine(&g);
        sequential.stage_delta(&d1).unwrap();
        sequential.stage_delta(&d2).unwrap();

        assert_eq!(batched.graph(), sequential.graph());
        let b = batched.run_with(&mut RunToCompletion).unwrap();
        let s = sequential.run_with(&mut RunToCompletion).unwrap();
        assert_eq!(b.final_dl, s.final_dl);
        assert_eq!(b.merges, s.merges);
    }

    /// A rejected delta mid-batch keeps the session consistent: the
    /// applied prefix is absorbed into the database, and the session
    /// keeps mining correctly (matching a cold mine of the prefix
    /// graph).
    #[test]
    fn failed_mid_batch_leaves_session_consistent() {
        let (g, _) = paper_example();
        let mut good = GraphDelta::new();
        let w = good.add_vertex(["d", "a"]);
        good.add_edge(w, DeltaVertex::Existing(1));
        let mut bad = GraphDelta::new();
        bad.add_edge(DeltaVertex::Existing(77), DeltaVertex::Existing(0));

        let mut s = Miner::new().build();
        s.mine(&g);
        let err = s.stage_deltas(&[good.clone(), bad]).unwrap_err();
        // The error names the rejected delta's batch index, so a caller
        // can resume from `deltas[index..]` (applied-prefix guarantee).
        assert!(matches!(err, SessionError::Delta { index: 1, .. }));
        // The good prefix is absorbed; the session graph matches it
        // and mining agrees with a cold run on that graph.
        let prefix = good.apply(&g).unwrap().graph;
        assert_eq!(s.graph().unwrap(), &prefix);
        let warm = s.run_with(&mut RunToCompletion).unwrap();
        let cold = Miner::new().build().mine(&prefix);
        assert_eq!(warm.final_dl, cold.final_dl);
        assert_eq!(warm.merges, cold.merges);
    }

    /// A base graph whose interner carried an unused attribute value
    /// builds a database with non-canonical coreset numbering; the
    /// patch refuses it and the session falls back to a rebuild —
    /// staying bit-identical to a cold mine instead of silently
    /// mining a corrupted model.
    #[test]
    fn desynced_base_numbering_rebuilds_instead_of_corrupting() {
        use cspm_graph::{AttrTable, AttributedGraph};
        let mut attrs = AttrTable::new();
        let (a, _b, c) = (attrs.intern("a"), attrs.intern("b"), attrs.intern("c"));
        let labels = vec![vec![a], vec![c], vec![a, c]];
        let g = AttributedGraph::from_edge_list(labels, attrs, [(0u32, 1u32), (1, 2)]).unwrap();

        let mut s = Miner::new().build();
        s.mine(&g);
        // The delta attaches the formerly unused value "b", making the
        // grown graph look healthy — the corruption trigger.
        let mut delta = GraphDelta::new();
        delta.add_label(0, "b");
        let stats = s.stage_delta(&delta).unwrap();
        assert!(
            matches!(stats.rebuilt, Some(PatchError::NonCanonicalCoresets(_))),
            "desynced numbering must force a rebuild, got {:?}",
            stats.rebuilt
        );

        let grown = delta.apply(&g).unwrap().graph;
        let warm = s.run_with(&mut RunToCompletion).unwrap();
        let cold = Miner::new().build().mine(&grown);
        assert_eq!(warm.final_dl.to_bits(), cold.final_dl.to_bits());
        assert_eq!(warm.merges, cold.merges);
    }

    #[test]
    fn multi_value_sessions_rebuild_on_delta() {
        let (g, _) = paper_example();
        let mut s = Miner::new().coreset_mode(CoresetMode::Slim).build();
        s.mine(&g);
        let mut delta = GraphDelta::new();
        delta.add_label(2, "b");
        let stats = s.stage_delta(&delta).unwrap();
        assert!(
            matches!(stats.rebuilt, Some(PatchError::UnsupportedCoresetMode)),
            "multi-value coresets cannot be patched, got {:?}",
            stats.rebuilt
        );
        let res = s.run_with(&mut RunToCompletion).unwrap();
        let mut cold = Miner::new().coreset_mode(CoresetMode::Slim).build();
        let cold_res = cold.mine(s.graph().unwrap());
        assert_eq!(res.final_dl, cold_res.final_dl);
    }

    /// Two interleaved planted label families: enough structure for
    /// several independent merges.
    fn multi_merge_graph() -> AttributedGraph {
        let mut b = cspm_graph::GraphBuilder::new();
        let mut prev = None;
        for i in 0..12 {
            let hub = b.add_vertex([format!("core{}", i % 2)]);
            let u = b.add_vertex([format!("p{}", i % 2)]);
            let w = b.add_vertex([format!("q{}", i % 2)]);
            b.add_edge(hub, u).unwrap();
            b.add_edge(hub, w).unwrap();
            if let Some(p) = prev {
                b.add_edge(p, hub).unwrap();
            }
            prev = Some(hub);
        }
        b.build().unwrap()
    }

    #[test]
    fn cancellation_leaves_session_reusable() {
        let g = multi_merge_graph();
        let mut s = Miner::new().build();
        let full = s.mine(&g);
        assert!(full.merges >= 2, "fixture must merge more than once");
        let mut seen = 0usize;
        let cancelled = s
            .run_with(&mut FnObserver(|_stat: &crate::IterationStat| {
                seen += 1;
                ControlFlow::Break(())
            }))
            .unwrap();
        assert_eq!(seen, 1);
        assert!(cancelled.stats.cancelled);
        assert_eq!(cancelled.merges, 1);
        assert!(cancelled.final_dl <= cancelled.initial_dl);
        assert!(cancelled.final_dl >= full.final_dl);
        // The session still holds the pristine state: the next run is
        // complete and identical to the original.
        let rerun = s.run_with(&mut RunToCompletion).unwrap();
        assert!(!rerun.stats.cancelled);
        assert_eq!(rerun.final_dl, full.final_dl);
        assert_eq!(rerun.merges, full.merges);
    }

    #[test]
    fn observer_sees_monotone_dl_trace() {
        let (g, _) = paper_example();
        let mut s = Miner::new().build();
        s.load(&g);
        let mut last = f64::INFINITY;
        let res = s
            .run_with(&mut FnObserver(|stat: &crate::IterationStat| {
                assert!(stat.dl_after < last + 1e-9);
                assert!(stat.accepted_gain > 0.0);
                last = stat.dl_after;
                ControlFlow::Continue(())
            }))
            .unwrap();
        assert!(res.merges >= 1);
        assert!((last - res.final_dl).abs() < 1e-9);
    }

    #[test]
    fn pressure_triggers_compaction() {
        let (g, _) = paper_example();
        // Threshold 1.0 + ε: any fragmentation at all triggers.
        let mut s = Miner::new().compact_above(1.0 + 1e-9).build();
        s.mine(&g);
        let mut delta = GraphDelta::new();
        let w = delta.add_vertex(["a", "b", "c"]);
        delta.add_edge(w, DeltaVertex::Existing(0));
        delta.add_edge(w, DeltaVertex::Existing(4));
        let stats = s.stage_delta(&delta).unwrap();
        // Patching relocated rows inside the arena, so pressure rose
        // above 1.0 and the session compacted back to exactly 1.0.
        assert!(stats.compacted, "patch traffic must trigger compaction");
        assert_eq!(stats.fragmentation, 1.0);
        assert_eq!(s.fragmentation(), 1.0);
        assert_eq!(s.compactions(), 1);
        // Compaction must not perturb the mining result.
        let res = s.run_with(&mut RunToCompletion).unwrap();
        let cold = Miner::new().build().mine(s.graph().unwrap());
        assert_eq!(res.final_dl, cold.final_dl);
        assert_eq!(res.merges, cold.merges);
    }

    /// A backbone path labelled "a" with `k` pair gadgets hanging off
    /// it: gadget `i` is an edge between fresh vertices labelled
    /// `ga{i}` / `gb{i}`. Removing a gadget's edge empties the two
    /// posting rows that pair uniquely owns — release traffic that
    /// barely moves the arena's byte ratio.
    fn gadget_graph(k: usize) -> (AttributedGraph, Vec<(u32, u32)>) {
        let mut b = cspm_graph::GraphBuilder::new();
        let mut prev = None;
        for _ in 0..4 {
            let v = b.add_vertex(["a"]);
            if let Some(p) = prev {
                b.add_edge(p, v).unwrap();
            }
            prev = Some(v);
        }
        let spine = prev.unwrap();
        let mut gadgets = Vec::new();
        for i in 0..k {
            let u = b.add_vertex([format!("ga{i}")]);
            let w = b.add_vertex([format!("gb{i}")]);
            b.add_edge(u, w).unwrap();
            b.add_edge(u, spine).unwrap();
            gadgets.push((u, w));
        }
        (b.build().unwrap(), gadgets)
    }

    /// Satellite of the PR 9 follow-on: removal traffic that releases
    /// rows without pushing the byte ratio past `compact_above` must
    /// still compact once the configured count of release-heavy deltas
    /// accumulates.
    #[test]
    fn release_heavy_deltas_trigger_compaction() {
        let (g, gadgets) = gadget_graph(6);
        // The byte-ratio trigger is effectively disabled; only the
        // release counter can fire.
        let mut s = Miner::new()
            .compact_above(1e9)
            .compact_after_releases(Some(3))
            .build();
        s.mine(&g);
        let mut compacted_at = None;
        for (i, &(u, w)) in gadgets.iter().enumerate() {
            let mut d = GraphDelta::new();
            d.remove_edge(u, w);
            let stats = s.stage_delta(&d).unwrap();
            assert!(stats.rebuilt.is_none(), "edge removal patches in place");
            assert!(
                stats.patch.rows_removed > 0,
                "gadget removal must release its pair rows"
            );
            if stats.compacted {
                compacted_at = Some(i);
                break;
            }
        }
        // The third release-heavy delta (index 2) trips the counter.
        assert_eq!(compacted_at, Some(2));
        assert_eq!(s.release_heavy_deltas(), 0, "counter resets on compaction");
        assert_eq!(s.compactions(), 1);
        // Compaction never changes mined output: the session still
        // agrees with a cold mine of its current graph.
        let warm = s.run_with(&mut RunToCompletion).unwrap();
        let cold = Miner::new().build().mine(s.graph().unwrap());
        assert_eq!(warm.final_dl.to_bits(), cold.final_dl.to_bits());
        assert_eq!(warm.merges, cold.merges);
    }

    /// The pre-fix behaviour, pinned: with the release trigger
    /// disabled, the same removal traffic leaves the arena fragmented
    /// indefinitely (the ratio alone never fires).
    #[test]
    fn release_trigger_disabled_leaves_arena_fragmented() {
        let (g, gadgets) = gadget_graph(6);
        let mut s = Miner::new()
            .compact_above(1e9)
            .compact_after_releases(None)
            .build();
        s.mine(&g);
        let mut last = None;
        for &(u, w) in &gadgets {
            let mut d = GraphDelta::new();
            d.remove_edge(u, w);
            let stats = s.stage_delta(&d).unwrap();
            assert!(!stats.compacted);
            last = Some(stats);
        }
        assert!(s.release_heavy_deltas() >= gadgets.len() as u32);
        assert!(
            last.unwrap().fragmentation > 1.0,
            "released rows must leave dead arena bytes behind"
        );
        assert_eq!(s.compactions(), 0);
    }

    #[test]
    fn manual_compaction_counts() {
        let (g, _) = paper_example();
        let mut s = Miner::new().compact_above(f64::INFINITY).build();
        s.mine(&g);
        s.compact_now();
        assert_eq!(s.compactions(), 1);
        assert_eq!(s.fragmentation(), 1.0);
    }
}
