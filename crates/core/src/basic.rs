//! CSPM-Basic: Algorithm 1 + Algorithm 2 of the paper.
//!
//! A thin façade over the unified [`engine`](crate::engine): Basic is
//! the engine's [`SchedulePolicy::FullRegeneration`] policy — every
//! iteration regenerates the full candidate list (all leafset pairs
//! sharing a coreset), picks the pair with the maximum positive gain,
//! merges it, and repeats until no pair improves compression. Sweeps
//! are pruned by the Algorithm 2 upper bound and fanned out across the
//! configured worker threads; past
//! [`CspmConfig::full_regen_max_pairs`] initial candidate pairs the run
//! delegates to the incremental policy (the sweeps are O(pairs ×
//! merges) — see the engine docs).

use cspm_graph::AttributedGraph;

use crate::config::CspmConfig;
use crate::engine::{mine_with_policy, CspmResult, SchedulePolicy};

/// Runs CSPM-Basic on an attributed graph.
///
/// One-shot wrapper over a [`MiningSession`](crate::MiningSession)
/// with [`SchedulePolicy::FullRegeneration`]; keep a session of your
/// own (via [`Miner`](crate::Miner)) when the graph evolves or you
/// want progress/cancellation hooks — see the
/// [session docs](crate::session).
pub fn cspm_basic(g: &AttributedGraph, config: CspmConfig) -> CspmResult {
    mine_with_policy(g, SchedulePolicy::FullRegeneration, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GainPolicy;
    use cspm_graph::fixtures::paper_example;
    use cspm_graph::GraphBuilder;

    #[test]
    fn converges_on_paper_example() {
        let (g, at) = paper_example();
        let res = cspm_basic(
            &g,
            CspmConfig {
                gain_policy: GainPolicy::DataOnly,
                ..CspmConfig::instrumented()
            },
        );
        assert!(res.final_dl <= res.initial_dl + 1e-9);
        // §IV-E: merging {b} and {c} compresses the example database, so
        // at least one merge happens and a {b,c} leafset pattern exists.
        assert!(res.merges >= 1);
        let has_bc = res
            .model
            .astars()
            .iter()
            .any(|m| m.astar.leafset() == [at.b.min(at.c), at.b.max(at.c)]);
        assert!(has_bc, "expected a ({{a}},{{b,c}})-style pattern");
    }

    #[test]
    fn dl_trace_is_monotone_decreasing() {
        let (g, _) = paper_example();
        let res = cspm_basic(&g, CspmConfig::instrumented());
        let mut prev = res.initial_dl;
        for it in &res.stats.iterations {
            assert!(it.dl_after < prev + 1e-9, "DL must never increase");
            assert!(it.accepted_gain > 0.0);
            assert!(it.update_ratio() <= 1.0);
            prev = it.dl_after;
        }
        assert!((prev - res.final_dl).abs() < 1e-9);
    }

    /// Planted-pattern graph: hub vertices labelled "core" whose leaves
    /// carry l0 and l1 together; CSPM must merge {l0} and {l1}.
    #[test]
    fn discovers_planted_leafset() {
        let mut b = GraphBuilder::new();
        let mut prev_hub = None;
        for h in 0..12 {
            let hub = b.add_vertex(["core"]);
            let u = b.add_vertex(["l0"]);
            let w = b.add_vertex(["l1"]);
            b.add_edge(hub, u).unwrap();
            b.add_edge(hub, w).unwrap();
            if let Some(p) = prev_hub {
                b.add_edge(p, hub).unwrap();
            }
            prev_hub = Some(hub);
            let _ = h;
        }
        let g = b.build().unwrap();
        let res = cspm_basic(&g, CspmConfig::default());
        assert!(res.merges >= 1);
        let l0 = g.attrs().get("l0").unwrap();
        let l1 = g.attrs().get("l1").unwrap();
        // The planted correlation must surface: some mined leafset carries
        // l0 and l1 together (further merges may grow it, e.g. adding the
        // hub's own "core" value seen through hub–hub edges).
        let planted = res
            .model
            .astars()
            .iter()
            .find(|m| m.astar.leafset().contains(&l0) && m.astar.leafset().contains(&l1));
        assert!(planted.is_some(), "planted {{l0,l1}} correlation not found");
        // A merged (multi-leaf) pattern should rank among the most
        // informative entries of the model.
        let rank = res
            .model
            .astars()
            .iter()
            .position(|m| m.astar.leafset().len() >= 2)
            .unwrap();
        assert!(rank < 10, "planted pattern ranked too low: {rank}");
    }

    #[test]
    fn max_merges_cap_is_respected() {
        let (g, _) = paper_example();
        let res = cspm_basic(
            &g,
            CspmConfig {
                max_merges: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(res.merges, 0);
        assert!((res.final_dl - res.initial_dl).abs() < 1e-12);
    }
}
