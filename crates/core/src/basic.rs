//! CSPM-Basic: Algorithm 1 + Algorithm 2 of the paper.
//!
//! Every iteration regenerates the full candidate list (all leafset pairs
//! sharing a coreset), picks the pair with the maximum positive gain,
//! merges it, and repeats until no pair improves compression.

use std::time::Instant;

use cspm_graph::AttributedGraph;

use crate::config::{CspmConfig, IterationStat, RunStats};
use crate::inverted::{InvertedDb, LeafsetId};
use crate::model::MinedModel;

/// Result of a CSPM run (either variant).
#[derive(Debug, Clone)]
pub struct CspmResult {
    /// The mined model, ranked by ascending code length.
    pub model: MinedModel,
    /// The converged inverted database.
    pub db: InvertedDb,
    /// Total DL before any merge (singleton-leafset model).
    pub initial_dl: f64,
    /// Total DL after convergence.
    pub final_dl: f64,
    /// Number of accepted merges.
    pub merges: usize,
    /// Run statistics.
    pub stats: RunStats,
}

impl CspmResult {
    /// Compression ratio `final/initial` (lower = better).
    pub fn compression_ratio(&self) -> f64 {
        if self.initial_dl == 0.0 {
            1.0
        } else {
            self.final_dl / self.initial_dl
        }
    }
}

/// Runs CSPM-Basic on an attributed graph.
pub fn cspm_basic(g: &AttributedGraph, config: CspmConfig) -> CspmResult {
    let started = Instant::now();
    let mut db = InvertedDb::build(g, config.coreset_mode, config.gain_policy);
    let initial_dl = db.total_dl();
    let mut stats = RunStats::default();
    let mut merges = 0usize;

    loop {
        if config.max_merges.is_some_and(|m| merges >= m) {
            break;
        }
        // Algorithm 2: compute the gain of every sharing pair and keep
        // the positive ones; then pop the best (Algorithm 1 line 8).
        let pairs = db.sharing_pairs();
        let gain_evals = pairs.len() as u64;
        stats.total_gain_evals += gain_evals;
        let Some((x, y, gain)) = best_pair(&db, &pairs) else { break };
        let outcome = db.merge(x, y);
        debug_assert!(outcome.merged_any);
        merges += 1;
        if config.collect_stats {
            let n = db.live_leafset_count() as u64;
            stats.iterations.push(IterationStat {
                gain_evals,
                possible_pairs: n * n.saturating_sub(1) / 2,
                accepted_gain: gain,
                dl_after: db.total_dl(),
                data_dl_after: db.data_cost(),
            });
        }
    }

    stats.elapsed_secs = started.elapsed().as_secs_f64();
    CspmResult {
        model: MinedModel::from_db(&db),
        initial_dl,
        final_dl: db.total_dl(),
        merges,
        stats,
        db,
    }
}

/// Candidate sweeps beyond this size are evaluated across threads.
const PARALLEL_THRESHOLD: usize = 8_192;

/// The pair with the maximum positive gain, ties broken towards the
/// smallest `(x, y)` — identical selection in the sequential and
/// parallel paths, so CSPM-Basic stays deterministic.
fn best_pair(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    if pairs.len() >= PARALLEL_THRESHOLD {
        best_pair_parallel(db, pairs)
    } else {
        best_pair_sequential(db, pairs)
    }
}

fn better(
    current: Option<(LeafsetId, LeafsetId, f64)>,
    candidate: (LeafsetId, LeafsetId, f64),
) -> Option<(LeafsetId, LeafsetId, f64)> {
    match current {
        None => Some(candidate),
        Some((cx, cy, cg)) => {
            let replace = candidate.2 > cg
                || (candidate.2 == cg && (candidate.0, candidate.1) < (cx, cy));
            Some(if replace { candidate } else { (cx, cy, cg) })
        }
    }
}

fn best_pair_sequential(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let mut best = None;
    for &(x, y) in pairs {
        let gain = db.pair_gain(x, y);
        if gain > 1e-9 {
            best = better(best, (x, y, gain));
        }
    }
    best
}

/// Parallel candidate sweep (a shared-memory step towards the paper's
/// future-work item (3), a distributed CSPM): the inverted database is
/// read-only during gain evaluation, so chunks of the pair list are
/// scored on worker threads and the per-thread winners reduced with the
/// same tie-breaking as the sequential sweep.
fn best_pair_parallel(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
        .max(1);
    if n_threads == 1 {
        return best_pair_sequential(db, pairs);
    }
    let chunk = pairs.len().div_ceil(n_threads);
    let locals = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| scope.spawn(move |_| best_pair_sequential(db, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gain worker must not panic"))
            .collect::<Vec<_>>()
    })
    .expect("scoped threads never outlive the scope");
    locals
        .into_iter()
        .flatten()
        .fold(None, |acc, cand| better(acc, cand))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GainPolicy;
    use cspm_graph::fixtures::paper_example;
    use cspm_graph::GraphBuilder;

    #[test]
    fn converges_on_paper_example() {
        let (g, at) = paper_example();
        let res = cspm_basic(&g, CspmConfig { gain_policy: GainPolicy::DataOnly, ..CspmConfig::instrumented() });
        assert!(res.final_dl <= res.initial_dl + 1e-9);
        // §IV-E: merging {b} and {c} compresses the example database, so
        // at least one merge happens and a {b,c} leafset pattern exists.
        assert!(res.merges >= 1);
        let has_bc = res
            .model
            .astars()
            .iter()
            .any(|m| m.astar.leafset() == [at.b.min(at.c), at.b.max(at.c)]);
        assert!(has_bc, "expected a ({{a}},{{b,c}})-style pattern");
    }

    #[test]
    fn dl_trace_is_monotone_decreasing() {
        let (g, _) = paper_example();
        let res = cspm_basic(&g, CspmConfig::instrumented());
        let mut prev = res.initial_dl;
        for it in &res.stats.iterations {
            assert!(it.dl_after < prev + 1e-9, "DL must never increase");
            assert!(it.accepted_gain > 0.0);
            assert!(it.update_ratio() <= 1.0);
            prev = it.dl_after;
        }
        assert!((prev - res.final_dl).abs() < 1e-9);
    }

    /// Planted-pattern graph: hub vertices labelled "core" whose leaves
    /// carry l0 and l1 together; CSPM must merge {l0} and {l1}.
    #[test]
    fn discovers_planted_leafset() {
        let mut b = GraphBuilder::new();
        let mut prev_hub = None;
        for h in 0..12 {
            let hub = b.add_vertex(["core"]);
            let u = b.add_vertex(["l0"]);
            let w = b.add_vertex(["l1"]);
            b.add_edge(hub, u).unwrap();
            b.add_edge(hub, w).unwrap();
            if let Some(p) = prev_hub {
                b.add_edge(p, hub).unwrap();
            }
            prev_hub = Some(hub);
            let _ = h;
        }
        let g = b.build().unwrap();
        let res = cspm_basic(&g, CspmConfig::default());
        assert!(res.merges >= 1);
        let l0 = g.attrs().get("l0").unwrap();
        let l1 = g.attrs().get("l1").unwrap();
        // The planted correlation must surface: some mined leafset carries
        // l0 and l1 together (further merges may grow it, e.g. adding the
        // hub's own "core" value seen through hub–hub edges).
        let planted = res
            .model
            .astars()
            .iter()
            .find(|m| {
                m.astar.leafset().contains(&l0) && m.astar.leafset().contains(&l1)
            });
        assert!(planted.is_some(), "planted {{l0,l1}} correlation not found");
        // A merged (multi-leaf) pattern should rank among the most
        // informative entries of the model.
        let rank = res
            .model
            .astars()
            .iter()
            .position(|m| m.astar.leafset().len() >= 2)
            .unwrap();
        assert!(rank < 10, "planted pattern ranked too low: {rank}");
    }

    #[test]
    fn max_merges_cap_is_respected() {
        let (g, _) = paper_example();
        let res = cspm_basic(&g, CspmConfig { max_merges: Some(0), ..Default::default() });
        assert_eq!(res.merges, 0);
        assert!((res.final_dl - res.initial_dl).abs() < 1e-12);
    }

    #[test]
    fn parallel_sweep_matches_sequential_selection() {
        use crate::inverted::InvertedDb;
        use crate::config::CoresetMode;
        let d = cspm_graph::fixtures::labelled_path(60, 5);
        let db = InvertedDb::build(&d, CoresetMode::SingleValue, GainPolicy::Total);
        let pairs = db.sharing_pairs();
        assert!(!pairs.is_empty());
        let seq = super::best_pair_sequential(&db, &pairs);
        let par = super::best_pair_parallel(&db, &pairs);
        assert_eq!(seq.map(|(x, y, _)| (x, y)), par.map(|(x, y, _)| (x, y)));
        if let (Some(s), Some(p)) = (seq, par) {
            assert!((s.2 - p.2).abs() < 1e-12);
        }
    }

    #[test]
    fn tie_breaking_prefers_smallest_pair() {
        assert_eq!(super::better(None, (3, 4, 1.0)), Some((3, 4, 1.0)));
        assert_eq!(super::better(Some((3, 4, 1.0)), (1, 2, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(super::better(Some((1, 2, 1.0)), (3, 4, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(super::better(Some((1, 2, 1.0)), (3, 4, 2.0)), Some((3, 4, 2.0)));
    }
}
