//! The unified mining engine: one greedy merge loop that both CSPM
//! variants (and dynamic mining, the CLI, and the benchmarks) compile
//! down to.
//!
//! # Mapping back to the paper
//!
//! The paper presents CSPM twice: Algorithm 1 ("CSPM-Basic") recomputes
//! every candidate gain after each merge (its candidate generation is
//! Algorithm 2), while Algorithm 3 ("CSPM-Partial", §V) keeps the
//! candidate set warm across merges and repairs only the entries a merge
//! could have changed (its update step is Algorithm 4, driven by the
//! `rdict` relation index). Both are the *same* greedy loop over the
//! inverted database of §IV-B — pick the best positive-gain pair (Eq.
//! 9), apply the merge of §IV-E, repeat — differing only in how the
//! candidate pool is maintained. This module implements that loop once:
//!
//! * [`CandidateScheduler`] — a gain-ordered priority queue over leafset
//!   pairs with the per-leafset partner index (`rdict`) of §V, shared by
//!   both policies;
//! * [`SchedulePolicy::FullRegeneration`] — Algorithm 1: the scheduler
//!   is cleared and reseeded from every sharing pair after each merge
//!   (large sweeps are evaluated across threads);
//! * [`SchedulePolicy::Incremental`] — Algorithm 3: popped gains are
//!   lazily revalidated (recomputed once before use, preserving the
//!   monotone-DL invariant), the new pattern is evaluated against
//!   `rdict[x] ∩ rdict[y]`, and pairs of partly-merged parents are
//!   re-scored — exactly the three update rules of Algorithm 4.
//!
//! The merge arithmetic itself lives in [`InvertedDb`]
//! over the flat [`PostingStore`](crate::positions::PostingStore) arena,
//! so the hot path of §IV-E runs over contiguous `(offset, len)` slices
//! rather than per-row heap allocations.
//!
//! # Parallel candidate scoring
//!
//! Between merges the database is immutable, and every candidate score
//! is a pure function of it — so both policies evaluate their candidate
//! batches across a `std::thread::scope` worker pool. Workers share the
//! posting arena read-only through [`GainView`] snapshots (no row is
//! cloned); batches are split into contiguous chunks and results are
//! reduced deterministically — per-pair gains are reassembled in input
//! order, and the full-regeneration sweep reduces per-chunk winners by
//! best gain with ties broken towards the smallest candidate pair id.
//! Mining output is therefore **bit-identical at every thread count**.
//!
//! Two knobs on [`CspmConfig`] control scheduling (both tune *speed*,
//! never *what* is mined):
//!
//! * [`CspmConfig::threads`] — scoring worker count (`0` = one per
//!   available core, capped at [`CspmConfig::MAX_AUTO_THREADS`]);
//! * [`CspmConfig::full_regen_max_pairs`] — Algorithm 1's sweeps are
//!   O(pairs × merges); past this many initial candidate pairs a
//!   FullRegeneration run delegates to the incremental policy (recorded
//!   in [`RunStats::delegated`](crate::RunStats)). `None` disables
//!   delegation.
//!
//! Candidate generation additionally applies the pruning bound of the
//! paper's Algorithm 2 ([`GainView::pair_gain_upper_bound`]): pairs
//! whose cheap length-only upper bound is non-positive are dismissed
//! before their exact gain — and before they ever enter the queue.

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};
use std::ops::ControlFlow;
use std::time::Instant;

use cspm_graph::AttributedGraph;
use cspm_mdl::OrdF64;

use crate::config::{CspmConfig, IterationStat, RunStats};
use crate::inverted::{GainView, InvertedDb, LeafsetId};
use crate::model::MinedModel;

/// Gains this close to zero are treated as "no improvement".
const GAIN_EPS: f64 = 1e-9;

/// Hook into the merge loop: called after every accepted merge with
/// that iteration's [`IterationStat`], and in control of whether the
/// loop keeps going.
///
/// Returning [`ControlFlow::Break`] cancels **cooperatively**: the
/// current merge is already applied (the database never observes a
/// half-merge), the loop stops before the next one, and the returned
/// [`CspmResult`] is a valid intermediate model — total DL is monotone,
/// so it is simply the model after as many merges as were allowed. The
/// run is marked in [`RunStats::cancelled`].
///
/// Observers are how long-lived sessions surface progress (see
/// [`MiningSession::run_with`](crate::MiningSession::run_with)); the
/// one-shot entry points run with a no-op observer.
pub trait ProgressObserver {
    /// One accepted merge happened; `stat` describes it. Return
    /// [`ControlFlow::Continue`] to keep mining or
    /// [`ControlFlow::Break`] to stop after this merge.
    ///
    /// The observer is consulted *before* the scheduler upkeep that
    /// prepares the next iteration (so cancelling skips that work);
    /// `stat.gain_evals` here counts the evaluations spent reaching
    /// this merge, while the per-iteration records in
    /// [`RunStats::iterations`](crate::RunStats) additionally include
    /// the upkeep evaluations, as they always have.
    fn on_iteration(&mut self, stat: &IterationStat) -> ControlFlow<()>;

    /// A recoverable anomaly outside the merge loop — e.g. a durable
    /// session truncating a torn WAL tail or falling back from a
    /// corrupt snapshot during recovery. Purely informational: the
    /// operation already degraded gracefully. Default: ignored.
    fn on_warning(&mut self, message: &str) {
        let _ = message;
    }
}

/// The observer the plain entry points use: never cancels.
pub(crate) struct RunToCompletion;

impl ProgressObserver for RunToCompletion {
    fn on_iteration(&mut self, _stat: &IterationStat) -> ControlFlow<()> {
        ControlFlow::Continue(())
    }
}

/// How the engine maintains its candidate pool between merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Algorithm 1: regenerate every candidate gain after each merge.
    FullRegeneration,
    /// Algorithm 3 (§V): keep candidates warm, repair incrementally,
    /// revalidate lazily on pop. The default, as in the paper's
    /// applications.
    #[default]
    Incremental,
}

/// Result of a CSPM run (either variant).
#[derive(Debug, Clone)]
pub struct CspmResult {
    /// The mined model, ranked by ascending code length.
    pub model: MinedModel,
    /// The converged inverted database.
    pub db: InvertedDb,
    /// Total DL before any merge (singleton-leafset model).
    pub initial_dl: f64,
    /// Total DL after convergence.
    pub final_dl: f64,
    /// Number of accepted merges.
    pub merges: usize,
    /// Run statistics.
    pub stats: RunStats,
}

impl CspmResult {
    /// Compression ratio `final/initial` (lower = better).
    pub fn compression_ratio(&self) -> f64 {
        if self.initial_dl == 0.0 {
            1.0
        } else {
            self.final_dl / self.initial_dl
        }
    }
}

/// Gain-ordered candidate pool with per-leafset partner indexing.
///
/// Generalises the paper's `rdict` (§V): pairs are kept in a total order
/// `(gain, smallest-pair-first)` so [`Self::pop_max`] is deterministic
/// under gain ties, and every leafset knows its current partners so
/// merge updates touch only the affected entries.
#[derive(Debug, Default, Clone)]
pub struct CandidateScheduler {
    gains: HashMap<(LeafsetId, LeafsetId), f64>,
    order: BTreeSet<(OrdF64, Reverse<LeafsetId>, Reverse<LeafsetId>)>,
    /// `rdict`: leafset → related leafsets (partners in stored pairs).
    rdict: HashMap<LeafsetId, BTreeSet<LeafsetId>>,
}

impl CandidateScheduler {
    fn key(x: LeafsetId, y: LeafsetId) -> (LeafsetId, LeafsetId) {
        (x.min(y), x.max(y))
    }

    /// Inserts or updates a pair's stored gain.
    pub fn upsert(&mut self, x: LeafsetId, y: LeafsetId, gain: f64) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.insert(key, gain) {
            self.order
                .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
        }
        self.order
            .insert((OrdF64(gain), Reverse(key.0), Reverse(key.1)));
        self.rdict.entry(x).or_default().insert(y);
        self.rdict.entry(y).or_default().insert(x);
    }

    /// Drops one pair, if stored.
    pub fn remove_pair(&mut self, x: LeafsetId, y: LeafsetId) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.remove(&key) {
            self.order
                .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
        }
        self.unrelate(x, y);
        self.unrelate(y, x);
    }

    fn unrelate(&mut self, a: LeafsetId, b: LeafsetId) {
        if let Some(s) = self.rdict.get_mut(&a) {
            s.remove(&b);
            if s.is_empty() {
                self.rdict.remove(&a);
            }
        }
    }

    /// Removes every pair involving `l` (Algorithm 4, step 1).
    pub fn remove_leafset(&mut self, l: LeafsetId) {
        if let Some(partners) = self.rdict.remove(&l) {
            for p in partners {
                let key = Self::key(l, p);
                if let Some(old) = self.gains.remove(&key) {
                    self.order
                        .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
                }
                self.unrelate(p, l);
            }
        }
    }

    /// Pops the stored pair with the maximum gain; gain ties break
    /// towards the smallest `(x, y)`.
    pub fn pop_max(&mut self) -> Option<(LeafsetId, LeafsetId, f64)> {
        let &(OrdF64(gain), Reverse(x), Reverse(y)) = self.order.last()?;
        self.remove_pair(x, y);
        Some((x, y, gain))
    }

    /// Current partners of `l` (`rdict[l]`).
    pub fn related(&self, l: LeafsetId) -> BTreeSet<LeafsetId> {
        self.rdict.get(&l).cloned().unwrap_or_default()
    }

    /// Whether no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Drops every stored pair.
    pub fn clear(&mut self) {
        self.gains.clear();
        self.order.clear();
        self.rdict.clear();
    }
}

/// Runs the engine on an attributed graph.
///
/// A thin wrapper over a one-shot [`MiningSession`](crate::MiningSession)
/// — equivalent to `Miner::from_config(config).policy(policy).build()`
/// followed by [`mine`](crate::MiningSession::mine), minus the state
/// retention. Keep the session instead when you expect graph deltas or
/// want progress callbacks.
pub fn mine_with_policy(
    g: &AttributedGraph,
    policy: SchedulePolicy,
    config: CspmConfig,
) -> CspmResult {
    let started = Instant::now();
    let db = InvertedDb::build(g, config.coreset_mode, config.gain_policy);
    let mut result = run_on_db(db, policy, config);
    result.stats.elapsed_secs = started.elapsed().as_secs_f64();
    result
}

/// Runs the greedy merge loop on a pre-built inverted database — the
/// shared core of CSPM-Basic, CSPM-Partial, dynamic mining and the
/// session API. Exposed so benchmarks can time the merge loop apart
/// from database construction.
///
/// A thin wrapper over a one-shot session adopting `db` (see
/// [`MiningSession::adopt_db`](crate::MiningSession::adopt_db)); unlike
/// a retained session it consumes the database and keeps nothing warm.
pub fn run_on_db(db: InvertedDb, policy: SchedulePolicy, config: CspmConfig) -> CspmResult {
    let mut session = crate::session::Miner::from_config(config)
        .policy(policy)
        .build();
    session.adopt_db(db);
    session.run_detached().expect("session was just loaded")
}

/// The merge loop itself (Algorithm 1 / Algorithm 3), with a progress
/// observer threaded through; every public mining entry point funnels
/// here.
pub(crate) fn run_loop(
    mut db: InvertedDb,
    policy: SchedulePolicy,
    config: CspmConfig,
    observer: &mut dyn ProgressObserver,
) -> CspmResult {
    let started = Instant::now();
    let initial_dl = db.total_dl();
    let mut stats = RunStats::default();
    let threads = resolve_threads(config.threads);
    let mut merges = 0usize;
    let mut scheduler = CandidateScheduler::default();
    let cap_reached = |merges: usize| config.max_merges.is_some_and(|m| merges >= m);

    // Algorithm 1 line 5 / Algorithm 3 lines 5–6: the initial candidate
    // pool. FullRegeneration only ever needs the front of the queue —
    // everything else is regenerated after the next merge anyway. A
    // pre-satisfied merge cap skips the sweep entirely.
    let mut policy = policy;
    if !cap_reached(merges) {
        let pairs = db.sharing_pairs();
        // Scale escape hatch: full regeneration re-sweeps every pair
        // after every merge, O(pairs × merges). Past the configured
        // threshold the whole run delegates to the incremental policy,
        // which maintains the same greedy queue at a fraction of the
        // evaluations.
        if policy == SchedulePolicy::FullRegeneration
            && config
                .full_regen_max_pairs
                .is_some_and(|cap| pairs.len() > cap)
        {
            policy = SchedulePolicy::Incremental;
            stats.delegated = true;
        }
        stats.total_gain_evals += seed_pairs(
            &db,
            &pairs,
            &mut scheduler,
            policy,
            threads,
            &mut stats.pruned_pairs,
        );
    }

    while !cap_reached(merges) {
        let Some((x, y, gain, mut gain_evals)) =
            pop_next_positive(&mut scheduler, &db, policy, &mut stats)
        else {
            break;
        };
        // Capture relations before any removal (the new pattern inherits
        // candidate partners from both parents).
        let (rel_x, rel_y) = match policy {
            SchedulePolicy::Incremental => (scheduler.related(x), scheduler.related(y)),
            SchedulePolicy::FullRegeneration => Default::default(),
        };
        let outcome = db.merge(x, y);
        debug_assert!(outcome.merged_any);
        merges += 1;

        // Consult the observer *before* the post-merge scheduler
        // upkeep: everything below this point only prepares the next
        // iteration (a full regeneration sweep, or the Algorithm 4
        // update batch) and would be wasted work on a cancellation.
        // The stat therefore counts the evals spent reaching this
        // merge; the recorded per-iteration stats additionally include
        // the upkeep evals, as they always have.
        let live = db.live_leafset_count() as u64;
        let mut stat = IterationStat {
            gain_evals,
            possible_pairs: live * live.saturating_sub(1) / 2,
            accepted_gain: gain,
            dl_after: db.total_dl(),
            data_dl_after: db.data_cost(),
        };
        if observer.on_iteration(&stat).is_break() {
            stats.total_gain_evals += gain_evals;
            if config.collect_stats {
                stats.iterations.push(stat);
            }
            stats.cancelled = true;
            break;
        }

        match policy {
            SchedulePolicy::FullRegeneration => {
                scheduler.clear();
                // Skip the regeneration sweep after the final permitted
                // merge — the loop is about to break on the cap anyway.
                if !cap_reached(merges) {
                    let pairs = db.sharing_pairs();
                    gain_evals += seed_pairs(
                        &db,
                        &pairs,
                        &mut scheduler,
                        policy,
                        threads,
                        &mut stats.pruned_pairs,
                    );
                }
            }
            SchedulePolicy::Incremental => {
                let n = outcome.new_leafset;
                // (1) Remove totally merged leafsets from the pool.
                if outcome.x_removed {
                    scheduler.remove_leafset(x);
                }
                if outcome.y_removed {
                    scheduler.remove_leafset(y);
                }
                // Algorithm 4's remaining update rules form one batch of
                // independent read-only scores against the post-merge
                // database, evaluated across the worker pool and applied
                // in sequential order (bit-identical to the serial path):
                // (2) pairs of the new leafset with rdict[x] ∩ rdict[y],
                // (3) re-scores of pairs involving a partly merged
                // parent (frequencies only shrink; gains may flip
                // negative). The two groups never overlap: group (2)
                // partners exclude both parents, so neither group edits
                // the other's rdict entries and the update set can be
                // snapshotted up front.
                let mut updates: Vec<(LeafsetId, LeafsetId)> = Vec::new();
                for &rel in rel_x.intersection(&rel_y) {
                    if rel == n || !db.is_live(rel) || !db.is_live(n) {
                        continue;
                    }
                    updates.push((rel, n));
                }
                let fresh_pairs = updates.len();
                for (parent, removed) in [(x, outcome.x_removed), (y, outcome.y_removed)] {
                    if removed {
                        continue;
                    }
                    for rel in scheduler.related(parent) {
                        updates.push((parent, rel));
                    }
                }
                gain_evals += updates.len() as u64;
                let (gains, pruned) = score_pairs(&db, &updates, threads);
                stats.pruned_pairs += pruned;
                for (i, (&(a, b), &gain)) in updates.iter().zip(&gains).enumerate() {
                    if gain > GAIN_EPS {
                        scheduler.upsert(a, b, gain);
                    } else if i >= fresh_pairs {
                        // Rule (3) drops influenced pairs that went
                        // non-positive; rule (2) pairs were never stored.
                        scheduler.remove_pair(a, b);
                    }
                }
            }
        }

        stats.total_gain_evals += gain_evals;
        if config.collect_stats {
            stat.gain_evals = gain_evals;
            stats.iterations.push(stat);
        }
    }

    stats.elapsed_secs = started.elapsed().as_secs_f64();
    stats.posting = db.posting_store().repr_stats();
    // The engine's single telemetry seam: once per run, never per merge.
    crate::metrics::record_run(merges, &stats);
    CspmResult {
        model: MinedModel::from_db(&db),
        initial_dl,
        final_dl: db.total_dl(),
        merges,
        stats,
        db,
    }
}

/// Pops scheduler entries until one whose validated gain is positive,
/// returning it together with the revalidation evals spent on the
/// accepted entry (evals spent on discarded stale entries are charged
/// to `stats.total_gain_evals` directly, as before).
///
/// `FullRegeneration` trusts stored gains — its queue is regenerated
/// from scratch after every merge, so entries are exact by
/// construction. `Incremental` lazily revalidates every pop: untouched
/// pairs go stale when a shared coreset's total frequency changes, and
/// a stale entry whose true gain flipped non-positive is dropped here —
/// it is never applied, which is what keeps the total DL monotone.
fn pop_next_positive(
    scheduler: &mut CandidateScheduler,
    db: &InvertedDb,
    policy: SchedulePolicy,
    stats: &mut RunStats,
) -> Option<(LeafsetId, LeafsetId, f64, u64)> {
    while let Some((x, y, stored)) = scheduler.pop_max() {
        let (gain, evals) = match policy {
            SchedulePolicy::FullRegeneration => (stored, 0),
            SchedulePolicy::Incremental => (db.pair_gain(x, y), 1),
        };
        if gain > GAIN_EPS {
            return Some((x, y, gain, evals));
        }
        stats.total_gain_evals += evals;
    }
    None
}

/// Resolves [`CspmConfig::threads`]: `0` means one worker per available
/// core, capped at [`CspmConfig::MAX_AUTO_THREADS`].
fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, CspmConfig::MAX_AUTO_THREADS)
    }
}

/// Fills the scheduler from the given sharing pairs. Returns the number
/// of gain evaluations charged. Under `FullRegeneration` only the best
/// pair is retained (Algorithm 2 reduced on the fly); under
/// `Incremental` every positive pair is stored.
fn seed_pairs(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
    scheduler: &mut CandidateScheduler,
    policy: SchedulePolicy,
    threads: usize,
    pruned: &mut u64,
) -> u64 {
    let evals = pairs.len() as u64;
    match policy {
        SchedulePolicy::FullRegeneration => {
            if let Some((x, y, gain)) = best_pair(db, pairs, threads) {
                scheduler.upsert(x, y, gain);
            }
        }
        SchedulePolicy::Incremental => {
            let (gains, p) = score_pairs(db, pairs, threads);
            *pruned += p;
            for (&(x, y), &gain) in pairs.iter().zip(&gains) {
                if gain > GAIN_EPS {
                    scheduler.upsert(x, y, gain);
                }
            }
        }
    }
    evals
}

/// Batches below this size are scored inline — spawning workers costs
/// more than the evaluation itself.
const PARALLEL_SCORE_THRESHOLD: usize = 64;

/// Scores every pair against the current (immutable) database state,
/// fanning out to scoped worker threads for large batches. Returns the
/// per-pair gains in input order plus the number of pairs answered by
/// the Algorithm 2 upper bound without an exact evaluation.
///
/// Deterministic at every thread count: each gain is a pure function of
/// the database, chunks are contiguous, and results are reassembled in
/// input order — the output vector is bit-identical to the sequential
/// path regardless of partitioning.
fn score_pairs(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
    threads: usize,
) -> (Vec<f64>, u64) {
    if threads <= 1 || pairs.len() < PARALLEL_SCORE_THRESHOLD {
        return score_chunk(db.gain_view(), pairs);
    }
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                let view = db.gain_view();
                scope.spawn(move || score_chunk(view, slice))
            })
            .collect();
        let mut gains = Vec::with_capacity(pairs.len());
        let mut pruned = 0u64;
        for h in handles {
            let (g, p) = h.join().expect("gain worker must not panic");
            gains.extend_from_slice(&g);
            pruned += p;
        }
        (gains, pruned)
    })
}

/// Sequential scoring of one contiguous chunk through a read-only view.
/// Pairs dismissed by the pruning bound score as 0 ("no improvement") —
/// the bound guarantees their true gain is ≤ [`GAIN_EPS`], so the
/// scheduler state after applying the results is identical either way.
fn score_chunk(view: GainView<'_>, pairs: &[(LeafsetId, LeafsetId)]) -> (Vec<f64>, u64) {
    let mut pruned = 0u64;
    let mut scratch = Vec::new();
    let gains = pairs
        .iter()
        .map(
            |&(x, y)| match view.gain_pruned(x, y, GAIN_EPS, &mut scratch) {
                Some(gain) => gain,
                None => {
                    pruned += 1;
                    0.0
                }
            },
        )
        .collect();
    (gains, pruned)
}

/// Candidate sweeps beyond this size are evaluated across threads.
const PARALLEL_THRESHOLD: usize = 8_192;

/// The pair with the maximum positive gain, ties broken towards the
/// smallest `(x, y)` — identical selection in the sequential and
/// parallel paths, so full-regeneration mining stays deterministic.
fn best_pair(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
    threads: usize,
) -> Option<(LeafsetId, LeafsetId, f64)> {
    if threads > 1 && pairs.len() >= PARALLEL_THRESHOLD {
        best_pair_parallel(db, pairs, threads)
    } else {
        best_pair_sequential(db.gain_view(), pairs)
    }
}

fn better(
    current: Option<(LeafsetId, LeafsetId, f64)>,
    candidate: (LeafsetId, LeafsetId, f64),
) -> Option<(LeafsetId, LeafsetId, f64)> {
    match current {
        None => Some(candidate),
        Some((cx, cy, cg)) => {
            let replace =
                candidate.2 > cg || (candidate.2 == cg && (candidate.0, candidate.1) < (cx, cy));
            Some(if replace { candidate } else { (cx, cy, cg) })
        }
    }
}

fn best_pair_sequential(
    view: GainView<'_>,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let mut best: Option<(LeafsetId, LeafsetId, f64)> = None;
    let mut scratch = Vec::new();
    for &(x, y) in pairs {
        // No Algorithm 2 bound here: the sweep retains only its best
        // pair, which the bound can never prune, and paying it for
        // every candidate measurably slows the sweep down. Queue-entry
        // scoring (score_chunk) is where the bound earns its keep.
        let gain = view.gain_with(x, y, &mut scratch);
        if gain > GAIN_EPS {
            best = better(best, (x, y, gain));
        }
    }
    best
}

/// Parallel candidate sweep (a shared-memory step towards the paper's
/// future-work item (3), a distributed CSPM): the inverted database is
/// read-only during gain evaluation, so chunks of the pair list are
/// scored on scoped worker threads and the per-thread winners reduced
/// with the same tie-breaking as the sequential sweep.
fn best_pair_parallel(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
    threads: usize,
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let chunk = pairs.len().div_ceil(threads);
    let locals = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                let view = db.gain_view();
                scope.spawn(move || best_pair_sequential(view, slice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gain worker must not panic"))
            .collect::<Vec<_>>()
    });
    locals.into_iter().flatten().fold(None, better)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoresetMode, GainPolicy};
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn scheduler_invariants() {
        let mut c = CandidateScheduler::default();
        c.upsert(1, 2, 3.0);
        c.upsert(2, 3, 5.0);
        c.upsert(1, 3, 4.0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop_max(), Some((2, 3, 5.0)));
        c.upsert(1, 2, 10.0); // update overwrites
        assert_eq!(c.pop_max(), Some((1, 2, 10.0)));
        c.remove_leafset(3);
        assert!(c.is_empty());
        c.upsert(4, 5, 1.0);
        c.clear();
        assert!(c.is_empty() && c.related(4).is_empty());
    }

    #[test]
    fn pop_ties_break_towards_smallest_pair() {
        let mut c = CandidateScheduler::default();
        c.upsert(7, 9, 2.0);
        c.upsert(1, 4, 2.0);
        c.upsert(1, 3, 2.0);
        assert_eq!(c.pop_max(), Some((1, 3, 2.0)));
        assert_eq!(c.pop_max(), Some((1, 4, 2.0)));
        assert_eq!(c.pop_max(), Some((7, 9, 2.0)));
        assert_eq!(c.pop_max(), None);
    }

    #[test]
    fn policies_agree_on_paper_example() {
        // Under DataOnly pricing the two policies take identical greedy
        // paths on the paper example. (Under Total, Incremental may
        // legitimately stop earlier: Algorithm 3 only considers new
        // pairs from rdict[x] ∩ rdict[y], and a pair whose model cost
        // made it unprofitable before a merge is never revisited — the
        // trade-off §V accepts for its speed.)
        let (g, _) = paper_example();
        let cfg = CspmConfig {
            gain_policy: GainPolicy::DataOnly,
            ..Default::default()
        };
        let full = mine_with_policy(&g, SchedulePolicy::FullRegeneration, cfg);
        let inc = mine_with_policy(&g, SchedulePolicy::Incremental, cfg);
        assert!((full.final_dl - inc.final_dl).abs() < 1e-6);
        assert_eq!(full.merges, inc.merges);
        assert!(full.final_dl <= full.initial_dl);
    }

    #[test]
    fn both_policies_are_sound_under_total_pricing() {
        let (g, _) = paper_example();
        for policy in [
            SchedulePolicy::FullRegeneration,
            SchedulePolicy::Incremental,
        ] {
            let res = mine_with_policy(&g, policy, CspmConfig::instrumented());
            assert!(res.final_dl <= res.initial_dl + 1e-9);
            let mut prev = res.initial_dl;
            for it in &res.stats.iterations {
                assert!(it.dl_after < prev + 1e-9, "total DL must be monotone");
                prev = it.dl_after;
            }
        }
    }

    #[test]
    fn run_on_db_matches_mine_with_policy() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let via_db = run_on_db(db, SchedulePolicy::Incremental, CspmConfig::default());
        let via_graph = mine_with_policy(&g, SchedulePolicy::Incremental, CspmConfig::default());
        assert_eq!(via_db.merges, via_graph.merges);
        assert!((via_db.final_dl - via_graph.final_dl).abs() < 1e-12);
    }

    #[test]
    fn parallel_sweep_matches_sequential_selection() {
        let d = cspm_graph::fixtures::labelled_path(60, 5);
        let db = InvertedDb::build(&d, CoresetMode::SingleValue, GainPolicy::Total);
        let pairs = db.sharing_pairs();
        assert!(!pairs.is_empty());
        let seq = best_pair_sequential(db.gain_view(), &pairs);
        for threads in [2, 4, 8] {
            let par = best_pair_parallel(&db, &pairs, threads);
            assert_eq!(seq.map(|(x, y, _)| (x, y)), par.map(|(x, y, _)| (x, y)));
            if let (Some(s), Some(p)) = (seq, par) {
                assert!((s.2 - p.2).abs() < 1e-12);
            }
        }
    }

    /// A connected graph with `k` interleaved label families, dense
    /// enough in distinct leafset pairs to exercise the parallel
    /// scoring fan-out.
    fn many_label_graph(n: usize, k: usize) -> cspm_graph::AttributedGraph {
        let mut b = cspm_graph::GraphBuilder::new();
        for i in 0..n {
            b.add_vertex([format!("a{}", i % k), format!("b{}", (i * 7 + 3) % k)]);
        }
        for i in 1..n {
            b.add_edge(i as u32 - 1, i as u32).unwrap();
        }
        for i in 0..n {
            let j = (i * 13 + 5) % n;
            if i != j {
                let _ = b.add_edge(i as u32, j as u32);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn score_pairs_is_identical_at_every_thread_count() {
        let d = many_label_graph(240, 16);
        let db = InvertedDb::build(&d, CoresetMode::SingleValue, GainPolicy::Total);
        let pairs = db.sharing_pairs();
        assert!(
            pairs.len() >= PARALLEL_SCORE_THRESHOLD,
            "need a batch large enough to fan out ({} pairs)",
            pairs.len()
        );
        let (seq, seq_pruned) = score_chunk(db.gain_view(), &pairs);
        for threads in [1, 2, 4, 8] {
            let (par, par_pruned) = score_pairs(&db, &pairs, threads);
            assert_eq!(seq, par, "gains must be bit-identical at {threads} threads");
            assert_eq!(seq_pruned, par_pruned);
        }
    }

    #[test]
    fn pruned_pairs_truly_have_no_positive_gain() {
        // The pruning bound may only dismiss pairs whose exact gain is
        // non-positive; anything else would change the mining path.
        let d = many_label_graph(240, 16);
        let db = InvertedDb::build(&d, CoresetMode::SingleValue, GainPolicy::Total);
        let view = db.gain_view();
        for &(x, y) in db.sharing_pairs().iter() {
            if view.pair_gain_upper_bound(x, y) <= GAIN_EPS {
                assert!(view.pair_gain(x, y) <= GAIN_EPS);
            }
        }
    }

    /// Under Total pricing the Algorithm 2 bound must actually dismiss
    /// pairs whose union row would cost more ST bits than the data side
    /// can possibly save. Constructed instance: a tiny-overlap pair
    /// (`rx` row of length 1, globally rare `ry`) under a small "hub"
    /// coreset, padded with an off-coreset chain that inflates `ry`'s
    /// standard code without growing the hub coreset's frequency.
    #[test]
    fn pruning_bound_dismisses_uneconomic_pairs() {
        let mut b = cspm_graph::GraphBuilder::new();
        let hubs: Vec<u32> = (0..4).map(|_| b.add_vertex(["hub"])).collect();
        for w in hubs.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let u = b.add_vertex(["rx"]);
        b.add_edge(u, hubs[0]).unwrap();
        let v1 = b.add_vertex(["ry"]);
        let v2 = b.add_vertex(["ry"]);
        b.add_edge(v1, hubs[0]).unwrap();
        b.add_edge(v1, hubs[1]).unwrap();
        b.add_edge(v2, hubs[2]).unwrap();
        b.add_edge(v2, hubs[3]).unwrap();
        // Padding chain: boosts every rare value's ST code length while
        // touching the hub coreset through a single bridge edge.
        let pads: Vec<u32> = (0..100).map(|_| b.add_vertex(["pad"])).collect();
        for w in pads.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        b.add_edge(pads[0], hubs[3]).unwrap();
        let g = b.build().unwrap();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let view = db.gain_view();
        let rx = g.attrs().get("rx").unwrap();
        let ry = g.attrs().get("ry").unwrap();
        let find = |a| {
            db.live_leafsets()
                .into_iter()
                .find(|&l| db.leafset_items(l) == [a])
                .expect("singleton leafset")
        };
        let (lx, ly) = (find(rx), find(ry));
        let ub = view.pair_gain_upper_bound(lx, ly);
        assert!(ub <= GAIN_EPS, "bound should dismiss (rx, ry), got {ub}");
        assert!(view.pair_gain(lx, ly) <= GAIN_EPS, "and the prune is sound");
    }

    /// A stale queue entry whose gain flipped non-positive must never be
    /// applied. Incremental revalidates on pop and drops it here;
    /// FullRegeneration never sees one (its queue is rebuilt from exact
    /// gains after every merge — `seed_pairs` only stores fresh values).
    #[test]
    fn stale_flipped_entry_is_never_popped_as_positive() {
        let (g, _) = paper_example();
        let mut db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        // Stale the pool: merge the globally best pair directly, behind
        // the scheduler's back.
        let pairs = db.sharing_pairs();
        let (bx, by, _) = best_pair_sequential(db.gain_view(), &pairs).expect("a positive pair");
        db.merge(bx, by);
        // Poison the queue with entries whose *stored* gain is huge but
        // whose true post-merge gain is non-positive.
        let mut scheduler = CandidateScheduler::default();
        let mut poisoned = 0u64;
        for (x, y) in db.sharing_pairs() {
            if db.pair_gain(x, y) <= GAIN_EPS {
                scheduler.upsert(x, y, 1e6);
                poisoned += 1;
            }
        }
        assert!(poisoned > 0, "fixture must yield stale candidates");
        let mut stats = RunStats::default();
        let popped =
            pop_next_positive(&mut scheduler, &db, SchedulePolicy::Incremental, &mut stats);
        assert!(
            popped.is_none(),
            "revalidation let a stale entry through: {popped:?}"
        );
        assert!(scheduler.is_empty(), "all poisoned entries were drained");
        assert_eq!(stats.total_gain_evals, poisoned, "one revalidation each");
    }

    #[test]
    fn full_regeneration_delegates_past_pair_threshold() {
        let (g, _) = paper_example();
        let strict = CspmConfig {
            full_regen_max_pairs: Some(0), // everything is "too large"
            ..Default::default()
        };
        let res = mine_with_policy(&g, SchedulePolicy::FullRegeneration, strict);
        assert!(res.stats.delegated, "run must record the delegation");
        // The delegated run is exactly the incremental run.
        let inc = mine_with_policy(&g, SchedulePolicy::Incremental, CspmConfig::default());
        assert_eq!(res.final_dl, inc.final_dl);
        assert_eq!(res.merges, inc.merges);
        // Delegation disabled: the policy is honoured no matter the size.
        let honoured = CspmConfig {
            full_regen_max_pairs: None,
            ..Default::default()
        };
        let res = mine_with_policy(&g, SchedulePolicy::FullRegeneration, honoured);
        assert!(!res.stats.delegated);
    }

    #[test]
    fn mining_is_bit_identical_across_thread_counts() {
        let (g, _) = paper_example();
        for policy in [
            SchedulePolicy::FullRegeneration,
            SchedulePolicy::Incremental,
        ] {
            let base = mine_with_policy(&g, policy, CspmConfig::default().with_threads(1));
            for threads in [2, 4, 8] {
                let run = mine_with_policy(&g, policy, CspmConfig::default().with_threads(threads));
                assert_eq!(
                    base.final_dl, run.final_dl,
                    "{policy:?} @ {threads} threads"
                );
                assert_eq!(base.merges, run.merges);
                assert_eq!(base.stats.total_gain_evals, run.stats.total_gain_evals);
                assert_eq!(base.stats.pruned_pairs, run.stats.pruned_pairs);
            }
        }
    }

    #[test]
    fn tie_breaking_prefers_smallest_pair() {
        assert_eq!(better(None, (3, 4, 1.0)), Some((3, 4, 1.0)));
        assert_eq!(better(Some((3, 4, 1.0)), (1, 2, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(better(Some((1, 2, 1.0)), (3, 4, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(better(Some((1, 2, 1.0)), (3, 4, 2.0)), Some((3, 4, 2.0)));
    }
}
