//! The unified mining engine: one greedy merge loop that both CSPM
//! variants (and dynamic mining, the CLI, and the benchmarks) compile
//! down to.
//!
//! # Mapping back to the paper
//!
//! The paper presents CSPM twice: Algorithm 1 ("CSPM-Basic") recomputes
//! every candidate gain after each merge (its candidate generation is
//! Algorithm 2), while Algorithm 3 ("CSPM-Partial", §V) keeps the
//! candidate set warm across merges and repairs only the entries a merge
//! could have changed (its update step is Algorithm 4, driven by the
//! `rdict` relation index). Both are the *same* greedy loop over the
//! inverted database of §IV-B — pick the best positive-gain pair (Eq.
//! 9), apply the merge of §IV-E, repeat — differing only in how the
//! candidate pool is maintained. This module implements that loop once:
//!
//! * [`CandidateScheduler`] — a gain-ordered priority queue over leafset
//!   pairs with the per-leafset partner index (`rdict`) of §V, shared by
//!   both policies;
//! * [`SchedulePolicy::FullRegeneration`] — Algorithm 1: the scheduler
//!   is cleared and reseeded from every sharing pair after each merge
//!   (large sweeps are evaluated across threads);
//! * [`SchedulePolicy::Incremental`] — Algorithm 3: popped gains are
//!   lazily revalidated (recomputed once before use, preserving the
//!   monotone-DL invariant), the new pattern is evaluated against
//!   `rdict[x] ∩ rdict[y]`, and pairs of partly-merged parents are
//!   re-scored — exactly the three update rules of Algorithm 4.
//!
//! The merge arithmetic itself lives in [`InvertedDb`](crate::InvertedDb)
//! over the flat [`PostingStore`](crate::positions::PostingStore) arena,
//! so the hot path of §IV-E runs over contiguous `(offset, len)` slices
//! rather than per-row heap allocations.

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};
use std::time::Instant;

use cspm_graph::AttributedGraph;
use cspm_mdl::OrdF64;

use crate::config::{CspmConfig, IterationStat, RunStats};
use crate::inverted::{InvertedDb, LeafsetId};
use crate::model::MinedModel;

/// Gains this close to zero are treated as "no improvement".
const GAIN_EPS: f64 = 1e-9;

/// How the engine maintains its candidate pool between merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Algorithm 1: regenerate every candidate gain after each merge.
    FullRegeneration,
    /// Algorithm 3 (§V): keep candidates warm, repair incrementally,
    /// revalidate lazily on pop. The default, as in the paper's
    /// applications.
    #[default]
    Incremental,
}

/// Result of a CSPM run (either variant).
#[derive(Debug, Clone)]
pub struct CspmResult {
    /// The mined model, ranked by ascending code length.
    pub model: MinedModel,
    /// The converged inverted database.
    pub db: InvertedDb,
    /// Total DL before any merge (singleton-leafset model).
    pub initial_dl: f64,
    /// Total DL after convergence.
    pub final_dl: f64,
    /// Number of accepted merges.
    pub merges: usize,
    /// Run statistics.
    pub stats: RunStats,
}

impl CspmResult {
    /// Compression ratio `final/initial` (lower = better).
    pub fn compression_ratio(&self) -> f64 {
        if self.initial_dl == 0.0 {
            1.0
        } else {
            self.final_dl / self.initial_dl
        }
    }
}

/// Gain-ordered candidate pool with per-leafset partner indexing.
///
/// Generalises the paper's `rdict` (§V): pairs are kept in a total order
/// `(gain, smallest-pair-first)` so [`Self::pop_max`] is deterministic
/// under gain ties, and every leafset knows its current partners so
/// merge updates touch only the affected entries.
#[derive(Debug, Default, Clone)]
pub struct CandidateScheduler {
    gains: HashMap<(LeafsetId, LeafsetId), f64>,
    order: BTreeSet<(OrdF64, Reverse<LeafsetId>, Reverse<LeafsetId>)>,
    /// `rdict`: leafset → related leafsets (partners in stored pairs).
    rdict: HashMap<LeafsetId, BTreeSet<LeafsetId>>,
}

impl CandidateScheduler {
    fn key(x: LeafsetId, y: LeafsetId) -> (LeafsetId, LeafsetId) {
        (x.min(y), x.max(y))
    }

    /// Inserts or updates a pair's stored gain.
    pub fn upsert(&mut self, x: LeafsetId, y: LeafsetId, gain: f64) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.insert(key, gain) {
            self.order
                .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
        }
        self.order
            .insert((OrdF64(gain), Reverse(key.0), Reverse(key.1)));
        self.rdict.entry(x).or_default().insert(y);
        self.rdict.entry(y).or_default().insert(x);
    }

    /// Drops one pair, if stored.
    pub fn remove_pair(&mut self, x: LeafsetId, y: LeafsetId) {
        let key = Self::key(x, y);
        if let Some(old) = self.gains.remove(&key) {
            self.order
                .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
        }
        self.unrelate(x, y);
        self.unrelate(y, x);
    }

    fn unrelate(&mut self, a: LeafsetId, b: LeafsetId) {
        if let Some(s) = self.rdict.get_mut(&a) {
            s.remove(&b);
            if s.is_empty() {
                self.rdict.remove(&a);
            }
        }
    }

    /// Removes every pair involving `l` (Algorithm 4, step 1).
    pub fn remove_leafset(&mut self, l: LeafsetId) {
        if let Some(partners) = self.rdict.remove(&l) {
            for p in partners {
                let key = Self::key(l, p);
                if let Some(old) = self.gains.remove(&key) {
                    self.order
                        .remove(&(OrdF64(old), Reverse(key.0), Reverse(key.1)));
                }
                self.unrelate(p, l);
            }
        }
    }

    /// Pops the stored pair with the maximum gain; gain ties break
    /// towards the smallest `(x, y)`.
    pub fn pop_max(&mut self) -> Option<(LeafsetId, LeafsetId, f64)> {
        let &(OrdF64(gain), Reverse(x), Reverse(y)) = self.order.last()?;
        self.remove_pair(x, y);
        Some((x, y, gain))
    }

    /// Current partners of `l` (`rdict[l]`).
    pub fn related(&self, l: LeafsetId) -> BTreeSet<LeafsetId> {
        self.rdict.get(&l).cloned().unwrap_or_default()
    }

    /// Whether no pair is stored.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Drops every stored pair.
    pub fn clear(&mut self) {
        self.gains.clear();
        self.order.clear();
        self.rdict.clear();
    }
}

/// Runs the engine on an attributed graph.
pub fn mine_with_policy(
    g: &AttributedGraph,
    policy: SchedulePolicy,
    config: CspmConfig,
) -> CspmResult {
    let started = Instant::now();
    let db = InvertedDb::build(g, config.coreset_mode, config.gain_policy);
    let mut result = run_on_db(db, policy, config);
    result.stats.elapsed_secs = started.elapsed().as_secs_f64();
    result
}

/// Runs the greedy merge loop on a pre-built inverted database — the
/// shared core of CSPM-Basic, CSPM-Partial, and dynamic mining. Exposed
/// so benchmarks can time the merge loop apart from database
/// construction.
pub fn run_on_db(mut db: InvertedDb, policy: SchedulePolicy, config: CspmConfig) -> CspmResult {
    let started = Instant::now();
    let initial_dl = db.total_dl();
    let mut stats = RunStats::default();
    let mut merges = 0usize;
    let mut scheduler = CandidateScheduler::default();
    let cap_reached = |merges: usize| config.max_merges.is_some_and(|m| merges >= m);

    // Algorithm 1 line 5 / Algorithm 3 lines 5–6: the initial candidate
    // pool. FullRegeneration only ever needs the front of the queue —
    // everything else is regenerated after the next merge anyway. A
    // pre-satisfied merge cap skips the sweep entirely.
    if !cap_reached(merges) {
        stats.total_gain_evals += seed(&db, &mut scheduler, policy);
    }

    while !scheduler.is_empty() {
        if cap_reached(merges) {
            break;
        }
        let Some((x, y, stored)) = scheduler.pop_max() else {
            break;
        };
        let mut gain_evals = 0u64;
        let gain = match policy {
            // Freshly regenerated this round: the stored gain is exact.
            SchedulePolicy::FullRegeneration => stored,
            // Lazy revalidation: untouched pairs can go stale when a
            // shared coreset's total frequency changes; recompute once
            // before committing (preserves the monotone-DL invariant).
            SchedulePolicy::Incremental => {
                gain_evals += 1;
                db.pair_gain(x, y)
            }
        };
        if gain <= GAIN_EPS {
            stats.total_gain_evals += gain_evals;
            continue;
        }
        // Capture relations before any removal (the new pattern inherits
        // candidate partners from both parents).
        let (rel_x, rel_y) = match policy {
            SchedulePolicy::Incremental => (scheduler.related(x), scheduler.related(y)),
            SchedulePolicy::FullRegeneration => Default::default(),
        };
        let outcome = db.merge(x, y);
        debug_assert!(outcome.merged_any);
        merges += 1;

        match policy {
            SchedulePolicy::FullRegeneration => {
                scheduler.clear();
                // Skip the regeneration sweep after the final permitted
                // merge — the loop is about to break on the cap anyway.
                if !cap_reached(merges) {
                    gain_evals += seed(&db, &mut scheduler, policy);
                }
            }
            SchedulePolicy::Incremental => {
                let n = outcome.new_leafset;
                // (1) Remove totally merged leafsets from the pool.
                if outcome.x_removed {
                    scheduler.remove_leafset(x);
                }
                if outcome.y_removed {
                    scheduler.remove_leafset(y);
                }
                // (2) Add pairs with the new leafset: rdict[x] ∩ rdict[y].
                for &rel in rel_x.intersection(&rel_y) {
                    if rel == n || !db.is_live(rel) || !db.is_live(n) {
                        continue;
                    }
                    gain_evals += 1;
                    let gain = db.pair_gain(rel, n);
                    if gain > GAIN_EPS {
                        scheduler.upsert(rel, n, gain);
                    }
                }
                // (3) Update influenced pairs: partners of partly merged
                // parents (frequencies only shrink; gains may flip
                // negative).
                for (parent, removed) in [(x, outcome.x_removed), (y, outcome.y_removed)] {
                    if removed {
                        continue;
                    }
                    for rel in scheduler.related(parent) {
                        gain_evals += 1;
                        let gain = db.pair_gain(parent, rel);
                        if gain > GAIN_EPS {
                            scheduler.upsert(parent, rel, gain);
                        } else {
                            scheduler.remove_pair(parent, rel);
                        }
                    }
                }
            }
        }

        stats.total_gain_evals += gain_evals;
        if config.collect_stats {
            let live = db.live_leafset_count() as u64;
            stats.iterations.push(IterationStat {
                gain_evals,
                possible_pairs: live * live.saturating_sub(1) / 2,
                accepted_gain: gain,
                dl_after: db.total_dl(),
                data_dl_after: db.data_cost(),
            });
        }
    }

    stats.elapsed_secs = started.elapsed().as_secs_f64();
    CspmResult {
        model: MinedModel::from_db(&db),
        initial_dl,
        final_dl: db.total_dl(),
        merges,
        stats,
        db,
    }
}

/// (Re)fills the scheduler from the database's sharing pairs. Returns
/// the number of gain evaluations spent. Under `FullRegeneration` only
/// the best pair is retained (Algorithm 2 reduced on the fly); under
/// `Incremental` every positive pair is stored.
fn seed(db: &InvertedDb, scheduler: &mut CandidateScheduler, policy: SchedulePolicy) -> u64 {
    let pairs = db.sharing_pairs();
    let evals = pairs.len() as u64;
    match policy {
        SchedulePolicy::FullRegeneration => {
            if let Some((x, y, gain)) = best_pair(db, &pairs) {
                scheduler.upsert(x, y, gain);
            }
        }
        SchedulePolicy::Incremental => {
            for (x, y) in pairs {
                let gain = db.pair_gain(x, y);
                if gain > GAIN_EPS {
                    scheduler.upsert(x, y, gain);
                }
            }
        }
    }
    evals
}

/// Candidate sweeps beyond this size are evaluated across threads.
const PARALLEL_THRESHOLD: usize = 8_192;

/// The pair with the maximum positive gain, ties broken towards the
/// smallest `(x, y)` — identical selection in the sequential and
/// parallel paths, so full-regeneration mining stays deterministic.
fn best_pair(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    if pairs.len() >= PARALLEL_THRESHOLD {
        best_pair_parallel(db, pairs)
    } else {
        best_pair_sequential(db, pairs)
    }
}

fn better(
    current: Option<(LeafsetId, LeafsetId, f64)>,
    candidate: (LeafsetId, LeafsetId, f64),
) -> Option<(LeafsetId, LeafsetId, f64)> {
    match current {
        None => Some(candidate),
        Some((cx, cy, cg)) => {
            let replace =
                candidate.2 > cg || (candidate.2 == cg && (candidate.0, candidate.1) < (cx, cy));
            Some(if replace { candidate } else { (cx, cy, cg) })
        }
    }
}

fn best_pair_sequential(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let mut best = None;
    for &(x, y) in pairs {
        let gain = db.pair_gain(x, y);
        if gain > GAIN_EPS {
            best = better(best, (x, y, gain));
        }
    }
    best
}

/// Parallel candidate sweep (a shared-memory step towards the paper's
/// future-work item (3), a distributed CSPM): the inverted database is
/// read-only during gain evaluation, so chunks of the pair list are
/// scored on scoped worker threads and the per-thread winners reduced
/// with the same tie-breaking as the sequential sweep.
fn best_pair_parallel(
    db: &InvertedDb,
    pairs: &[(LeafsetId, LeafsetId)],
) -> Option<(LeafsetId, LeafsetId, f64)> {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    if n_threads == 1 {
        return best_pair_sequential(db, pairs);
    }
    let chunk = pairs.len().div_ceil(n_threads);
    let locals = std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| scope.spawn(move || best_pair_sequential(db, slice)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gain worker must not panic"))
            .collect::<Vec<_>>()
    });
    locals.into_iter().flatten().fold(None, better)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoresetMode, GainPolicy};
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn scheduler_invariants() {
        let mut c = CandidateScheduler::default();
        c.upsert(1, 2, 3.0);
        c.upsert(2, 3, 5.0);
        c.upsert(1, 3, 4.0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.pop_max(), Some((2, 3, 5.0)));
        c.upsert(1, 2, 10.0); // update overwrites
        assert_eq!(c.pop_max(), Some((1, 2, 10.0)));
        c.remove_leafset(3);
        assert!(c.is_empty());
        c.upsert(4, 5, 1.0);
        c.clear();
        assert!(c.is_empty() && c.related(4).is_empty());
    }

    #[test]
    fn pop_ties_break_towards_smallest_pair() {
        let mut c = CandidateScheduler::default();
        c.upsert(7, 9, 2.0);
        c.upsert(1, 4, 2.0);
        c.upsert(1, 3, 2.0);
        assert_eq!(c.pop_max(), Some((1, 3, 2.0)));
        assert_eq!(c.pop_max(), Some((1, 4, 2.0)));
        assert_eq!(c.pop_max(), Some((7, 9, 2.0)));
        assert_eq!(c.pop_max(), None);
    }

    #[test]
    fn policies_agree_on_paper_example() {
        // Under DataOnly pricing the two policies take identical greedy
        // paths on the paper example. (Under Total, Incremental may
        // legitimately stop earlier: Algorithm 3 only considers new
        // pairs from rdict[x] ∩ rdict[y], and a pair whose model cost
        // made it unprofitable before a merge is never revisited — the
        // trade-off §V accepts for its speed.)
        let (g, _) = paper_example();
        let cfg = CspmConfig {
            gain_policy: GainPolicy::DataOnly,
            ..Default::default()
        };
        let full = mine_with_policy(&g, SchedulePolicy::FullRegeneration, cfg);
        let inc = mine_with_policy(&g, SchedulePolicy::Incremental, cfg);
        assert!((full.final_dl - inc.final_dl).abs() < 1e-6);
        assert_eq!(full.merges, inc.merges);
        assert!(full.final_dl <= full.initial_dl);
    }

    #[test]
    fn both_policies_are_sound_under_total_pricing() {
        let (g, _) = paper_example();
        for policy in [
            SchedulePolicy::FullRegeneration,
            SchedulePolicy::Incremental,
        ] {
            let res = mine_with_policy(&g, policy, CspmConfig::instrumented());
            assert!(res.final_dl <= res.initial_dl + 1e-9);
            let mut prev = res.initial_dl;
            for it in &res.stats.iterations {
                assert!(it.dl_after < prev + 1e-9, "total DL must be monotone");
                prev = it.dl_after;
            }
        }
    }

    #[test]
    fn run_on_db_matches_mine_with_policy() {
        let (g, _) = paper_example();
        let db = InvertedDb::build(&g, CoresetMode::SingleValue, GainPolicy::Total);
        let via_db = run_on_db(db, SchedulePolicy::Incremental, CspmConfig::default());
        let via_graph = mine_with_policy(&g, SchedulePolicy::Incremental, CspmConfig::default());
        assert_eq!(via_db.merges, via_graph.merges);
        assert!((via_db.final_dl - via_graph.final_dl).abs() < 1e-12);
    }

    #[test]
    fn parallel_sweep_matches_sequential_selection() {
        let d = cspm_graph::fixtures::labelled_path(60, 5);
        let db = InvertedDb::build(&d, CoresetMode::SingleValue, GainPolicy::Total);
        let pairs = db.sharing_pairs();
        assert!(!pairs.is_empty());
        let seq = best_pair_sequential(&db, &pairs);
        let par = best_pair_parallel(&db, &pairs);
        assert_eq!(seq.map(|(x, y, _)| (x, y)), par.map(|(x, y, _)| (x, y)));
        if let (Some(s), Some(p)) = (seq, par) {
            assert!((s.2 - p.2).abs() < 1e-12);
        }
    }

    #[test]
    fn tie_breaking_prefers_smallest_pair() {
        assert_eq!(better(None, (3, 4, 1.0)), Some((3, 4, 1.0)));
        assert_eq!(better(Some((3, 4, 1.0)), (1, 2, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(better(Some((1, 2, 1.0)), (3, 4, 1.0)), Some((1, 2, 1.0)));
        assert_eq!(better(Some((1, 2, 1.0)), (3, 4, 2.0)), Some((3, 4, 2.0)));
    }
}
