//! Mining dynamic attributed graphs (future-work item (2) of the
//! paper): a-stars over a sequence of snapshots.
//!
//! Dynamic mining dispatches through the same unified engine, so the
//! scheduling knobs of [`CspmConfig`] — scoring `threads` and the
//! full-regeneration delegation threshold — apply here unchanged, and
//! results stay bit-identical at any thread count.
//!
//! Since the session redesign, [`mine_dynamic`] is itself a thin
//! wrapper over a [`MiningSession`](crate::MiningSession): the
//! sequence is replayed snapshot by snapshot as
//! [`GraphDelta`](cspm_graph::dynamic::GraphDelta)s
//! ([`SnapshotSequence::replay`]) and mined once through a session.
//! The mined model is bit-identical to running CSPM on
//! [`SnapshotSequence::union_graph`] directly. A one-shot call has no
//! retained model to keep warm — callers who keep mining as snapshots
//! *arrive* should hold a session of their own and feed it deltas
//! ([`MiningSession::apply_delta`](crate::MiningSession::apply_delta));
//! that is the warm path whose equivalence this function's replay
//! semantics guarantee.

use std::time::Instant;

use cspm_graph::dynamic::SnapshotSequence;
use cspm_graph::VertexId;

use crate::config::CspmConfig;
use crate::engine::CspmResult;
use crate::session::Miner;
use crate::Variant;

/// A mined a-star with its occurrences resolved to `(snapshot, vertex)`
/// coordinates.
#[derive(Debug, Clone)]
pub struct TemporalOccurrences {
    /// Index into the result model's a-star list.
    pub astar_index: usize,
    /// `(snapshot, local vertex)` occurrence coordinates.
    pub occurrences: Vec<(usize, VertexId)>,
    /// Number of distinct snapshots the pattern occurs in.
    pub snapshot_support: usize,
}

/// Result of mining a snapshot sequence.
#[derive(Debug, Clone)]
pub struct DynamicResult {
    /// The ordinary mining result over the union graph.
    pub result: CspmResult,
    /// Per-pattern temporal occurrence records, aligned with
    /// `result.model.astars()`.
    pub temporal: Vec<TemporalOccurrences>,
}

/// Mines a snapshot sequence by replaying it, snapshot by snapshot, as
/// graph deltas into one [`MiningSession`](crate::MiningSession), then
/// mapping the positions of every mined a-star back to
/// `(snapshot, vertex)` coordinates. Equivalent to (and bit-identical
/// with) mining [`SnapshotSequence::union_graph`] in one shot.
pub fn mine_dynamic(seq: &SnapshotSequence, variant: Variant, config: CspmConfig) -> DynamicResult {
    let mut session = Miner::from_config(config).variant(variant).build();
    let result = match seq.replay() {
        // `session.mine` charges database construction + merge loop to
        // `elapsed_secs`; building the (empty) union graph happens
        // before its timer, preserving the RunStats contract that
        // graph construction is excluded.
        None => session.mine(&seq.union_graph()),
        Some((mut graph, deltas)) => {
            // Assemble the union by replaying each snapshot as a graph
            // delta — O(snapshot) apiece, linear in the union overall —
            // *outside* the timer: `RunStats::elapsed_secs` excludes
            // graph construction, like every other entry point.
            for delta in &deltas {
                delta
                    .apply_in_place(&mut graph)
                    .expect("replayed snapshot deltas always apply");
            }
            let started = Instant::now();
            session.load_owned(graph);
            let mut r = session
                .run_detached()
                .expect("session was loaded with the replayed union");
            r.stats.elapsed_secs = started.elapsed().as_secs_f64();
            r
        }
    };
    let temporal = result
        .model
        .astars()
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let occurrences: Vec<(usize, VertexId)> =
                m.positions.iter().filter_map(|&v| seq.locate(v)).collect();
            let mut snapshots: Vec<usize> = occurrences.iter().map(|&(s, _)| s).collect();
            snapshots.sort_unstable();
            snapshots.dedup();
            TemporalOccurrences {
                astar_index: i,
                snapshot_support: snapshots.len(),
                occurrences,
            }
        })
        .collect();
    DynamicResult { result, temporal }
}

impl DynamicResult {
    /// Patterns recurring in at least `min_snapshots` distinct snapshots
    /// — persistent temporal structure rather than one-off events.
    pub fn persistent(&self, min_snapshots: usize) -> impl Iterator<Item = &TemporalOccurrences> {
        self.temporal
            .iter()
            .filter(move |t| t.snapshot_support >= min_snapshots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::GraphBuilder;

    /// Three snapshots, each containing the hub pattern core->{p,q}.
    fn recurring_sequence() -> SnapshotSequence {
        (0..3)
            .map(|_| {
                let mut b = GraphBuilder::new();
                for _ in 0..6 {
                    let hub = b.add_vertex(["core"]);
                    let u = b.add_vertex(["p"]);
                    let w = b.add_vertex(["q"]);
                    b.add_edge(hub, u).unwrap();
                    b.add_edge(hub, w).unwrap();
                }
                // chain hubs for connectivity
                for h in 1..6 {
                    b.add_edge((h - 1) * 3, h * 3).unwrap();
                }
                b.build().unwrap()
            })
            .collect()
    }

    #[test]
    fn recurring_pattern_has_full_snapshot_support() {
        let seq = recurring_sequence();
        let dyn_res = mine_dynamic(&seq, Variant::Partial, CspmConfig::default());
        assert!(dyn_res.result.merges >= 1);
        // The merged {p,q} pattern must recur in all 3 snapshots.
        let model = &dyn_res.result.model;
        let idx = model
            .astars()
            .iter()
            .position(|m| m.astar.leafset().len() >= 2)
            .expect("merged pattern exists");
        let t = &dyn_res.temporal[idx];
        assert_eq!(t.snapshot_support, 3);
        assert_eq!(t.occurrences.len(), model.astars()[idx].positions.len());
        assert!(dyn_res.persistent(3).count() >= 1);
    }

    #[test]
    fn dynamic_mining_is_deterministic_across_thread_counts() {
        let seq = recurring_sequence();
        let base = mine_dynamic(
            &seq,
            Variant::Partial,
            CspmConfig::default().with_threads(1),
        );
        for threads in [2, 8] {
            let run = mine_dynamic(
                &seq,
                Variant::Partial,
                CspmConfig::default().with_threads(threads),
            );
            assert_eq!(base.result.final_dl, run.result.final_dl);
            assert_eq!(base.result.merges, run.result.merges);
            assert_eq!(base.temporal.len(), run.temporal.len());
        }
    }

    /// The session-replay implementation must be indistinguishable
    /// from mining the union graph in one shot — same DL, same merges,
    /// same evaluation counts.
    #[test]
    fn delta_replay_matches_union_graph_mining() {
        let seq = recurring_sequence();
        for variant in [Variant::Basic, Variant::Partial] {
            let replayed = mine_dynamic(&seq, variant, CspmConfig::default());
            let direct = crate::engine::mine_with_policy(
                &seq.union_graph(),
                variant.policy(),
                CspmConfig::default(),
            );
            assert_eq!(replayed.result.final_dl, direct.final_dl);
            assert_eq!(replayed.result.merges, direct.merges);
            assert_eq!(
                replayed.result.stats.total_gain_evals,
                direct.stats.total_gain_evals
            );
        }
    }

    #[test]
    fn empty_sequence_mines_empty_model() {
        let seq = SnapshotSequence::new();
        let res = mine_dynamic(&seq, Variant::Partial, CspmConfig::default());
        assert_eq!(res.result.merges, 0);
        assert!(res.temporal.is_empty());
    }

    #[test]
    fn occurrences_map_back_to_local_vertices() {
        let seq = recurring_sequence();
        let dyn_res = mine_dynamic(&seq, Variant::Basic, CspmConfig::default());
        for t in &dyn_res.temporal {
            for &(s, v) in &t.occurrences {
                assert!(s < seq.len());
                assert!((v as usize) < seq.snapshots()[s].vertex_count());
            }
        }
    }
}
