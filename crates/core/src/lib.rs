//! CSPM — Compressing Star Pattern Miner.
//!
//! The paper's primary contribution (Liu et al., ICDE 2022): a
//! parameter-free algorithm that mines *attribute-stars* from an
//! attributed graph by greedily merging leafsets in an inverted database
//! so as to minimise the description length under a conditional-entropy
//! code (§IV), with the partial-update optimization of §V.
//!
//! # Quick example
//!
//! ```
//! use cspm_core::{cspm_partial, CspmConfig};
//! use cspm_graph::fixtures::paper_example;
//!
//! let (graph, _) = paper_example();
//! let result = cspm_partial(&graph, CspmConfig::default());
//! assert!(result.final_dl <= result.initial_dl);
//! for pattern in result.model.astars().iter().take(3) {
//!     println!("{} ({:.2} bits)", pattern.astar.display(graph.attrs()), pattern.code_len);
//! }
//! ```

mod basic;
mod config;
mod decode;
mod dynamic;
mod inverted;
mod model;
mod partial;
mod positions;
mod stats;

pub use basic::{cspm_basic, CspmResult};
pub use config::{CoresetMode, CspmConfig, GainPolicy, IterationStat, RunStats};
pub use decode::{decode_neighborhood, true_neighborhood, verify_lossless, LossError};
pub use dynamic::{mine_dynamic, DynamicResult, TemporalOccurrences};
pub use inverted::{Coreset, CoresetId, InvertedDb, LeafsetId, MergeOutcome};
pub use model::{MinedAStar, MinedModel};
pub use partial::cspm_partial;
pub use stats::ModelSummary;

use cspm_graph::AttributedGraph;

/// Which CSPM variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// CSPM-Basic (Algorithm 1): full candidate regeneration each
    /// iteration.
    Basic,
    /// CSPM-Partial (Algorithm 3): partial candidate updates via `rdict`.
    /// The default, as in the paper's applications ("CSPM-Partial is
    /// adopted for the two applications owing to its efficiency").
    #[default]
    Partial,
}

/// High-level entry point: runs the selected variant.
pub fn mine(g: &AttributedGraph, variant: Variant, config: CspmConfig) -> CspmResult {
    match variant {
        Variant::Basic => cspm_basic(g, config),
        Variant::Partial => cspm_partial(g, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn mine_dispatches_both_variants() {
        let (g, _) = paper_example();
        let b = mine(&g, Variant::Basic, CspmConfig::default());
        let p = mine(&g, Variant::Partial, CspmConfig::default());
        assert!(b.final_dl <= b.initial_dl);
        assert!(p.final_dl <= p.initial_dl);
        assert_eq!(Variant::default(), Variant::Partial);
    }
}
