//! CSPM — Compressing Star Pattern Miner.
//!
//! The paper's primary contribution (Liu et al., ICDE 2022): a
//! parameter-free algorithm that mines *attribute-stars* from an
//! attributed graph by greedily merging leafsets in an inverted database
//! so as to minimise the description length under a conditional-entropy
//! code (§IV), with the partial-update optimization of §V.
//!
//! # Architecture
//!
//! Everything dispatches through one [`engine`]:
//!
//! | Layer | Module | Role |
//! |---|---|---|
//! | storage | [`positions`] | sorted-slice set algebra + the flat [`PostingStore`] arena backing every row (+ [`PostingView`], its shared read-only snapshot) |
//! | database | [`InvertedDb`] | §IV-B rows over the arena, exact DL bookkeeping, the §IV-E merge; [`GainView`] scores candidates read-only (exact gain + the Algorithm 2 pruning bound) |
//! | engine | [`engine`] | the greedy merge loop + [`CandidateScheduler`]; Algorithm 1 and Algorithm 3 are its two [`SchedulePolicy`] values; candidate batches are scored across a scoped worker pool, deterministically at every thread count |
//! | façade | [`cspm_basic`] / [`cspm_partial`] / [`mine`] / [`mine_dynamic`] | thin entry points selecting a policy |
//!
//! Scheduling is tuned by two [`CspmConfig`] knobs — `threads` (scoring
//! worker count, `0` = auto) and `full_regen_max_pairs` (candidate-pair
//! threshold past which [`SchedulePolicy::FullRegeneration`] delegates
//! to the incremental policy). Both change only how fast the model is
//! found, never which model; see the [`engine`] docs for the
//! determinism guarantees.
//!
//! # Quick example
//!
//! ```
//! use cspm_core::{cspm_partial, CspmConfig};
//! use cspm_graph::fixtures::paper_example;
//!
//! let (graph, _) = paper_example();
//! let result = cspm_partial(&graph, CspmConfig::default());
//! assert!(result.final_dl <= result.initial_dl);
//! for pattern in result.model.astars().iter().take(3) {
//!     println!("{} ({:.2} bits)", pattern.astar.display(graph.attrs()), pattern.code_len);
//! }
//! ```

mod basic;
mod config;
mod decode;
mod dynamic;
pub mod engine;
mod inverted;
mod model;
mod partial;
pub mod positions;
mod stats;

pub use basic::cspm_basic;
pub use config::{CoresetMode, CspmConfig, GainPolicy, IterationStat, RunStats};
pub use decode::{decode_neighborhood, true_neighborhood, verify_lossless, LossError};
pub use dynamic::{mine_dynamic, DynamicResult, TemporalOccurrences};
pub use engine::{CandidateScheduler, CspmResult, SchedulePolicy};
pub use inverted::{Coreset, CoresetId, GainView, InvertedDb, LeafsetId, MergeOutcome};
pub use model::{MinedAStar, MinedModel};
pub use partial::cspm_partial;
pub use positions::{PostingStore, PostingView, RowId};
pub use stats::ModelSummary;

use cspm_graph::AttributedGraph;

/// Which CSPM variant to run. Both variants are scheduling policies of
/// the same [`engine`]; see [`SchedulePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// CSPM-Basic (Algorithm 1): full candidate regeneration each
    /// iteration.
    Basic,
    /// CSPM-Partial (Algorithm 3): partial candidate updates via `rdict`.
    /// The default, as in the paper's applications ("CSPM-Partial is
    /// adopted for the two applications owing to its efficiency").
    #[default]
    Partial,
}

impl Variant {
    /// The engine scheduling policy this variant compiles down to.
    pub fn policy(self) -> SchedulePolicy {
        match self {
            Variant::Basic => SchedulePolicy::FullRegeneration,
            Variant::Partial => SchedulePolicy::Incremental,
        }
    }
}

/// High-level entry point: runs the selected variant through the
/// unified [`engine`].
pub fn mine(g: &AttributedGraph, variant: Variant, config: CspmConfig) -> CspmResult {
    engine::mine_with_policy(g, variant.policy(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn mine_dispatches_both_variants() {
        let (g, _) = paper_example();
        let b = mine(&g, Variant::Basic, CspmConfig::default());
        let p = mine(&g, Variant::Partial, CspmConfig::default());
        assert!(b.final_dl <= b.initial_dl);
        assert!(p.final_dl <= p.initial_dl);
        assert_eq!(Variant::default(), Variant::Partial);
    }
}
