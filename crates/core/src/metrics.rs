//! Engine metrics, registered once against the process-wide
//! [`cspm_telemetry::global`] registry.
//!
//! The merge loop is the hottest code in the workspace, so it is
//! instrumented at exactly one seam: [`record_run`] fires once per
//! completed run with the [`RunStats`] the engine already collects —
//! a handful of relaxed atomic adds per *mine*, never per merge. That
//! is what keeps the telemetry subsystem inside the `bench_compare`
//! merge-loop gate with room to spare.

use std::sync::OnceLock;

use cspm_telemetry::{global, Counter, Gauge, Histogram, TIME_BUCKETS};

use crate::config::RunStats;

pub(crate) struct EngineMetrics {
    runs: Counter,
    merges: Counter,
    gain_evals: Counter,
    pruned_pairs: Counter,
    cancelled: Counter,
    delegated: Counter,
    mine_seconds: Histogram,
    sparse_rows: Gauge,
    bitmap_rows: Gauge,
    flips_to_bitmap: Gauge,
    flips_to_sparse: Gauge,
}

pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        EngineMetrics {
            runs: r.counter("cspm_engine_runs_total", "Completed merge-loop runs."),
            merges: r.counter("cspm_engine_merges_total", "Accepted merges across runs."),
            gain_evals: r.counter(
                "cspm_engine_gain_evals_total",
                "Candidate pair-gain evaluations across runs.",
            ),
            pruned_pairs: r.counter(
                "cspm_engine_pruned_pairs_total",
                "Candidate pairs dismissed by the Algorithm 2 upper bound.",
            ),
            cancelled: r.counter(
                "cspm_engine_cancelled_total",
                "Runs cancelled cooperatively by a progress observer.",
            ),
            delegated: r.counter(
                "cspm_engine_delegated_total",
                "FullRegeneration runs delegated to the incremental policy.",
            ),
            mine_seconds: r.histogram(
                "cspm_engine_mine_seconds",
                "Merge-loop wall time per run (excludes graph construction).",
                &TIME_BUCKETS,
            ),
            sparse_rows: r.gauge_with(
                "cspm_engine_posting_rows",
                "Posting-row representation mix after the most recent run.",
                &[("repr", "sparse")],
            ),
            bitmap_rows: r.gauge_with(
                "cspm_engine_posting_rows",
                "Posting-row representation mix after the most recent run.",
                &[("repr", "bitmap")],
            ),
            flips_to_bitmap: r.gauge_with(
                "cspm_engine_posting_flips",
                "Adaptive representation flips reported by the most recent run's store.",
                &[("dir", "to_bitmap")],
            ),
            flips_to_sparse: r.gauge_with(
                "cspm_engine_posting_flips",
                "Adaptive representation flips reported by the most recent run's store.",
                &[("dir", "to_sparse")],
            ),
        }
    })
}

/// Records one finished merge-loop run. Counters accumulate across
/// runs; the posting-representation numbers are gauges because
/// [`RunStats::posting`] snapshots the (session-lifetime) store state
/// at run end — re-adding them per warm run would double count.
pub(crate) fn record_run(merges: usize, stats: &RunStats) {
    let m = engine_metrics();
    m.runs.inc();
    m.merges.add(merges as u64);
    m.gain_evals.add(stats.total_gain_evals);
    m.pruned_pairs.add(stats.pruned_pairs);
    if stats.cancelled {
        m.cancelled.inc();
    }
    if stats.delegated {
        m.delegated.inc();
    }
    m.mine_seconds.observe(stats.elapsed_secs);
    m.sparse_rows.set(stats.posting.sparse_rows as u64);
    m.bitmap_rows.set(stats.posting.bitmap_rows as u64);
    m.flips_to_bitmap.set(stats.posting.flips_to_bitmap);
    m.flips_to_sparse.set(stats.posting.flips_to_sparse);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspm_graph::fixtures::paper_example;

    #[test]
    fn a_run_moves_the_engine_counters() {
        let before = engine_metrics().runs.get();
        let merges_before = engine_metrics().merges.get();
        let (g, _) = paper_example();
        let result = crate::mine(&g, crate::Variant::Partial, crate::CspmConfig::default());
        assert!(result.merges > 0);
        let m = engine_metrics();
        assert!(m.runs.get() > before);
        assert!(m.merges.get() >= merges_before + result.merges as u64);
        assert!(m.mine_seconds.count() > 0);
    }
}
